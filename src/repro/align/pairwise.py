"""Full pairwise local alignment with traceback.

The search engines rank by score alone; this module produces the
human-readable alignment for the answers a user actually inspects.
The matrix is filled with the same vectorised row recurrence as the
scanning kernel, and the traceback walks standard linear-gap moves
(for linear penalties the closed-form row values satisfy the textbook
cell recurrence, so local neighbour checks reconstruct a valid path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.scoring import ScoringScheme
from repro.errors import AlignmentError
from repro.sequences import alphabet
from repro.sequences.alphabet import NUM_BASES

#: Refuse matrices above this many cells — traceback is for inspecting
#: answers, not for scanning collections.
MAX_TRACEBACK_CELLS = 64_000_000


@dataclass(frozen=True)
class Alignment:
    """A scored local alignment between a query and a target.

    Coordinates are half-open, zero-based over the *original* coded
    sequences.  The aligned strings contain ``-`` for gaps.
    """

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int
    aligned_query: str
    aligned_target: str

    @property
    def length(self) -> int:
        """Number of alignment columns (including gaps)."""
        return len(self.aligned_query)

    @property
    def matches(self) -> int:
        """Number of identical aligned pairs."""
        return sum(
            1
            for first, second in zip(self.aligned_query, self.aligned_target)
            if first == second and first != "-"
        )

    @property
    def identity(self) -> float:
        """Matches over alignment columns."""
        if not self.length:
            return 0.0
        return self.matches / self.length

    @property
    def gaps(self) -> int:
        """Total gap characters across both rows."""
        return self.aligned_query.count("-") + self.aligned_target.count("-")

    def midline(self) -> str:
        """A ``|``/space midline for pretty-printing."""
        return "".join(
            "|" if first == second and first != "-" else " "
            for first, second in zip(self.aligned_query, self.aligned_target)
        )

    def pretty(self, width: int = 60) -> str:
        """A BLAST-style text rendering of the alignment."""
        lines = [
            f"score={self.score} identity={self.identity:.1%} "
            f"query[{self.query_start}:{self.query_end}] "
            f"target[{self.target_start}:{self.target_end}]"
        ]
        midline = self.midline()
        for start in range(0, self.length, width):
            stop = start + width
            lines.append(f"Q {self.aligned_query[start:stop]}")
            lines.append(f"  {midline[start:stop]}")
            lines.append(f"T {self.aligned_target[start:stop]}")
        return "\n".join(lines)


def _fill_matrix(
    query: np.ndarray, target: np.ndarray, scheme: ScoringScheme
) -> np.ndarray:
    rows = np.minimum(query, NUM_BASES).astype(np.int64)
    profile = scheme.target_profile(target)
    height = query.shape[0] + 1
    width = target.shape[0] + 1
    matrix = np.zeros((height, width), dtype=np.int32)
    gap = np.int32(scheme.gap)
    # Row temporaries use int64: the gap ramp can exceed int32 for wide
    # matrices with heavy gap penalties; cell values themselves are
    # small and store back into the int32 matrix safely.
    gap_ramp = scheme.gap * np.arange(width - 1, dtype=np.int64)
    for row_index in range(1, height):
        previous = matrix[row_index - 1]
        candidate = np.maximum(
            previous[:-1] + profile[rows[row_index - 1]],
            previous[1:] + gap,
        ).astype(np.int64)
        np.maximum(candidate, 0, out=candidate)
        chain = candidate - gap_ramp
        np.maximum.accumulate(chain, out=chain)
        chain[1:] = chain[:-1] + gap_ramp[1:]
        chain[0] = 0
        np.maximum(candidate, chain, out=candidate)
        matrix[row_index, 1:] = candidate
    return matrix


def local_align(
    query: np.ndarray, target: np.ndarray, scheme: ScoringScheme | None = None
) -> Alignment:
    """Optimal local alignment (score and path) of two coded sequences.

    Raises:
        AlignmentError: if the DP matrix would exceed
            :data:`MAX_TRACEBACK_CELLS`.
    """
    if scheme is None:
        scheme = ScoringScheme()
    query = np.asarray(query, dtype=np.uint8)
    target = np.asarray(target, dtype=np.uint8)
    cells = (query.shape[0] + 1) * (target.shape[0] + 1)
    if cells > MAX_TRACEBACK_CELLS:
        raise AlignmentError(
            f"traceback matrix of {cells} cells exceeds the "
            f"{MAX_TRACEBACK_CELLS} limit; use the scanning kernel for scores"
        )
    if not query.shape[0] or not target.shape[0]:
        return Alignment(0, 0, 0, 0, 0, "", "")
    matrix = _fill_matrix(query, target, scheme)
    best = int(matrix.max(initial=0))
    if best == 0:
        return Alignment(0, 0, 0, 0, 0, "", "")
    row, column = np.unravel_index(int(np.argmax(matrix)), matrix.shape)
    row, column = int(row), int(column)
    end_row, end_column = row, column

    query_parts: list[str] = []
    target_parts: list[str] = []
    while row > 0 and column > 0 and matrix[row, column] > 0:
        here = int(matrix[row, column])
        pair_score = scheme.score_pair(
            int(query[row - 1]), int(target[column - 1])
        )
        if here == int(matrix[row - 1, column - 1]) + pair_score:
            query_parts.append(alphabet.decode(query[row - 1 : row]))
            target_parts.append(alphabet.decode(target[column - 1 : column]))
            row -= 1
            column -= 1
        elif here == int(matrix[row - 1, column]) + scheme.gap:
            query_parts.append(alphabet.decode(query[row - 1 : row]))
            target_parts.append("-")
            row -= 1
        elif here == int(matrix[row, column - 1]) + scheme.gap:
            query_parts.append("-")
            target_parts.append(alphabet.decode(target[column - 1 : column]))
            column -= 1
        else:  # pragma: no cover - would indicate a recurrence bug
            raise AlignmentError("traceback found no consistent move")
    return Alignment(
        score=best,
        query_start=row,
        query_end=end_row,
        target_start=column,
        target_end=end_column,
        aligned_query="".join(reversed(query_parts)),
        aligned_target="".join(reversed(target_parts)),
    )

"""Local alignment: scoring, vectorised/banded/reference DP, traceback."""

from repro.align.banded import banded_local_score
from repro.align.extension import UngappedExtension, extend_seed
from repro.align.kernel import (
    TargetImage,
    best_local_score,
    column_best_scores,
    segment_best_scores,
)
from repro.align.pairwise import MAX_TRACEBACK_CELLS, Alignment, local_align
from repro.align.reference import gotoh_score, smith_waterman_score
from repro.align.scoring import (
    SENTINEL_CODE,
    SENTINEL_SCORE,
    AffineScoringScheme,
    ScoringScheme,
)
from repro.align.statistics import (
    GumbelParameters,
    annotate_evalues,
    calibrate_gapped,
    ungapped_lambda,
)

__all__ = [
    "MAX_TRACEBACK_CELLS",
    "SENTINEL_CODE",
    "SENTINEL_SCORE",
    "AffineScoringScheme",
    "Alignment",
    "GumbelParameters",
    "ScoringScheme",
    "TargetImage",
    "UngappedExtension",
    "annotate_evalues",
    "banded_local_score",
    "best_local_score",
    "calibrate_gapped",
    "column_best_scores",
    "extend_seed",
    "gotoh_score",
    "local_align",
    "segment_best_scores",
    "smith_waterman_score",
    "ungapped_lambda",
]

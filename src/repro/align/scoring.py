"""Alignment scoring schemes.

Nucleotide local alignment in the paper's era used simple
match/mismatch scores with a linear gap penalty; that scheme is what
every search engine in this package shares, so the partitioned and
exhaustive engines are directly comparable.  An affine (Gotoh) scheme
is provided for the reference aligner as an extension.

Wildcards never match anything — including themselves — which is the
conservative treatment for uncalled bases.  A *sentinel* code far
outside the alphabet carries a score so negative that no alignment can
cross it; the exhaustive scanner uses runs of sentinels to separate
concatenated sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError
from repro.sequences.alphabet import NUM_BASES, WILDCARD_MIN_CODE

#: Code used to separate sequences in concatenated scans.  Outside the
#: IUPAC range, so it can never appear in real data.
SENTINEL_CODE = 200

#: Score assigned to any pairing that involves a sentinel.  Deadly but
#: far from the int32 boundary, so row arithmetic cannot overflow.
SENTINEL_SCORE = -(1 << 24)


@dataclass(frozen=True)
class ScoringScheme:
    """Match/mismatch/linear-gap local alignment scores.

    Attributes:
        match: score for an identical base pair (> 0).
        mismatch: score for a differing pair (< 0).
        gap: per-base insertion/deletion penalty (< 0).
        transition: optional milder score for transition mismatches
            (A<->G, C<->T), which occur far more often in real
            evolution than transversions.  ``None`` scores every
            mismatch alike.
    """

    match: int = 1
    mismatch: int = -1
    gap: int = -2
    transition: int | None = None

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise AlignmentError(f"match score must be positive, got {self.match}")
        if self.mismatch >= 0:
            raise AlignmentError(
                f"mismatch score must be negative, got {self.mismatch}"
            )
        if self.gap >= 0:
            raise AlignmentError(f"gap penalty must be negative, got {self.gap}")
        if self.transition is not None and not (
            self.mismatch <= self.transition < self.match
        ):
            raise AlignmentError(
                f"transition score must lie in [{self.mismatch}, "
                f"{self.match}), got {self.transition}"
            )

    def _is_transition(self, first: int, second: int) -> bool:
        # Purines (A=0, G=2) share even codes; pyrimidines (C=1, T=3)
        # share odd codes — a differing same-parity pair is a transition.
        return first != second and (first & 1) == (second & 1)

    def score_pair(self, first: int, second: int) -> int:
        """Score one pair of codes (wildcards and sentinels included)."""
        if first == SENTINEL_CODE or second == SENTINEL_CODE:
            return SENTINEL_SCORE
        if first >= WILDCARD_MIN_CODE or second >= WILDCARD_MIN_CODE:
            return self.mismatch
        if first == second:
            return self.match
        if self.transition is not None and self._is_transition(first, second):
            return self.transition
        return self.mismatch

    def target_profile(self, target: np.ndarray) -> np.ndarray:
        """Per-base score rows against a target sequence.

        Returns an int32 array of shape ``(NUM_BASES + 1, len(target))``:
        row ``c`` (c < 4) is the score of aligning base ``c`` against
        each target position; the last row is the wildcard-query row.
        Sentinel positions score :data:`SENTINEL_SCORE` in every row.
        """
        target = np.asarray(target)
        profile = np.full(
            (NUM_BASES + 1, target.shape[0]), self.mismatch, dtype=np.int32
        )
        concrete = target < WILDCARD_MIN_CODE
        if self.transition is not None:
            for code in range(NUM_BASES):
                partner = code ^ 2  # the other base of the same parity
                profile[code, concrete & (target == partner)] = self.transition
        for code in range(NUM_BASES):
            profile[code, concrete & (target == code)] = self.match
        profile[:, target == SENTINEL_CODE] = SENTINEL_SCORE
        return profile

    def profile_row(self, profile: np.ndarray, query_code: int) -> np.ndarray:
        """The profile row for one query code (wildcards share a row)."""
        if query_code == SENTINEL_CODE:
            raise AlignmentError("query sequences cannot contain sentinels")
        row = min(int(query_code), NUM_BASES)
        return profile[row]

    def max_alignment_score(self, query_length: int) -> int:
        """Upper bound on any local score for a query of this length."""
        return query_length * self.match

    def sentinel_run_length(self, query_length: int) -> int:
        """Sentinel run long enough that gaps cannot bridge two sequences.

        A horizontal gap chain crossing ``r`` sentinel columns costs at
        least ``r * |gap|``; choosing r so this exceeds the maximum
        possible score makes boundary-crossing alignments impossible.
        """
        bound = self.max_alignment_score(query_length)
        return bound // abs(self.gap) + 2


@dataclass(frozen=True)
class AffineScoringScheme:
    """Match/mismatch with affine (open + extend) gap costs.

    Used by the reference Gotoh aligner; an extension beyond the 1996
    system's linear-gap fine search.
    """

    match: int = 1
    mismatch: int = -1
    gap_open: int = -3
    gap_extend: int = -1

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise AlignmentError(f"match score must be positive, got {self.match}")
        if self.mismatch >= 0:
            raise AlignmentError(
                f"mismatch score must be negative, got {self.mismatch}"
            )
        if self.gap_open >= 0 or self.gap_extend >= 0:
            raise AlignmentError(
                "gap open/extend penalties must be negative, got "
                f"{self.gap_open}/{self.gap_extend}"
            )

    def score_pair(self, first: int, second: int) -> int:
        """Score one pair of codes (same wildcard rule as linear)."""
        if first == SENTINEL_CODE or second == SENTINEL_CODE:
            return SENTINEL_SCORE
        if first >= WILDCARD_MIN_CODE or second >= WILDCARD_MIN_CODE:
            return self.mismatch
        return self.match if first == second else self.mismatch

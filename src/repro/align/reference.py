"""Scalar reference aligners.

Straight-from-the-textbook dynamic programming, kept deliberately
simple: these are the oracles the vectorised kernel and the banded
aligner are property-tested against, not production paths.
"""

from __future__ import annotations

from repro.align.scoring import AffineScoringScheme, ScoringScheme


def smith_waterman_score(query, target, scheme: ScoringScheme) -> int:
    """Best local-alignment score with linear gap penalties.

    Args:
        query, target: code arrays (anything indexable of ints).
        scheme: the linear scoring scheme.

    Returns:
        The maximum cell of the Smith-Waterman matrix (>= 0).
    """
    query = list(int(code) for code in query)
    target = list(int(code) for code in target)
    previous = [0] * (len(target) + 1)
    best = 0
    for query_code in query:
        current = [0] * (len(target) + 1)
        for column in range(1, len(target) + 1):
            score = scheme.score_pair(query_code, target[column - 1])
            value = max(
                0,
                previous[column - 1] + score,
                previous[column] + scheme.gap,
                current[column - 1] + scheme.gap,
            )
            current[column] = value
            if value > best:
                best = value
        previous = current
    return best


def gotoh_score(query, target, scheme: AffineScoringScheme) -> int:
    """Best local-alignment score with affine gap penalties (Gotoh).

    Three-state DP: H (match/mismatch), E (gap in query), F (gap in
    target).  ``gap_open`` is charged on the first base of a gap,
    ``gap_extend`` on each subsequent one.
    """
    query = list(int(code) for code in query)
    target = list(int(code) for code in target)
    width = len(target) + 1
    minus_inf = -(1 << 30)
    h_previous = [0] * width
    e_previous = [minus_inf] * width
    best = 0
    for query_code in query:
        h_current = [0] * width
        e_current = [minus_inf] * width
        f_value = minus_inf
        for column in range(1, width):
            e_current[column] = max(
                h_previous[column] + scheme.gap_open,
                e_previous[column] + scheme.gap_extend,
            )
            f_value = max(
                h_current[column - 1] + scheme.gap_open,
                f_value + scheme.gap_extend,
            )
            score = scheme.score_pair(query_code, target[column - 1])
            value = max(
                0,
                h_previous[column - 1] + score,
                e_current[column],
                f_value,
            )
            h_current[column] = value
            if value > best:
                best = value
        h_previous = h_current
        e_previous = e_current
    return best

"""Ungapped seed extension with an X-drop cut-off.

The BLAST-style baseline extends every exact seed hit along its
diagonal in both directions, giving up once the running score falls
more than ``x_drop`` below the best seen.  Both directions are a
cumulative-sum/cumulative-max pass, so extension is vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.scoring import ScoringScheme
from repro.errors import AlignmentError
from repro.sequences.alphabet import WILDCARD_MIN_CODE


@dataclass(frozen=True)
class UngappedExtension:
    """An extended diagonal segment (an HSP in BLAST terms)."""

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int

    @property
    def length(self) -> int:
        return self.query_end - self.query_start

    @property
    def diagonal(self) -> int:
        return self.target_start - self.query_start


def _pair_scores(
    query: np.ndarray, target: np.ndarray, scheme: ScoringScheme
) -> np.ndarray:
    """Substitution scores of aligned pairs (equal-length arrays)."""
    concrete = (query < WILDCARD_MIN_CODE) & (target < WILDCARD_MIN_CODE)
    match = concrete & (query == target)
    scores = np.where(match, scheme.match, scheme.mismatch).astype(np.int64)
    if scheme.transition is not None:
        transition = concrete & ~match & ((query & 1) == (target & 1))
        scores[transition] = scheme.transition
    return scores


def _best_prefix(scores: np.ndarray, x_drop: int) -> tuple[int, int]:
    """Best prefix sum before the score drops ``x_drop`` below its peak.

    Returns:
        (best prefix score, number of positions taken); both 0 when no
        positive prefix exists before the drop cut-off.
    """
    if not scores.shape[0]:
        return 0, 0
    totals = np.cumsum(scores)
    # The running peak includes the empty prefix (the seed end itself),
    # so an immediate dip below -x_drop stops the extension at once.
    peaks = np.maximum(np.maximum.accumulate(totals), 0)
    dropped = np.flatnonzero(peaks - totals > x_drop)
    limit = int(dropped[0]) if dropped.shape[0] else scores.shape[0]
    if not limit:
        return 0, 0
    best_slot = int(np.argmax(totals[:limit]))
    best = int(totals[best_slot])
    if best <= 0:
        return 0, 0
    return best, best_slot + 1


def extend_seed(
    query: np.ndarray,
    target: np.ndarray,
    query_start: int,
    target_start: int,
    seed_length: int,
    scheme: ScoringScheme,
    x_drop: int = 10,
) -> UngappedExtension:
    """Extend an exact seed along its diagonal in both directions.

    Args:
        query, target: coded sequences.
        query_start, target_start: seed start coordinates.
        seed_length: length of the (assumed exact) seed.
        scheme: linear scoring (only match/mismatch are used).
        x_drop: give up when the score falls this far below its peak.

    Raises:
        AlignmentError: if the seed coordinates fall outside either
            sequence or ``x_drop`` is negative.
    """
    query = np.asarray(query)
    target = np.asarray(target)
    if x_drop < 0:
        raise AlignmentError(f"x_drop must be >= 0, got {x_drop}")
    if (
        query_start < 0
        or target_start < 0
        or query_start + seed_length > query.shape[0]
        or target_start + seed_length > target.shape[0]
    ):
        raise AlignmentError(
            f"seed q[{query_start}:+{seed_length}] t[{target_start}:+{seed_length}] "
            "outside the sequences"
        )

    seed_score = int(
        _pair_scores(
            query[query_start : query_start + seed_length],
            target[target_start : target_start + seed_length],
            scheme,
        ).sum()
    )

    right_length = min(
        query.shape[0] - query_start - seed_length,
        target.shape[0] - target_start - seed_length,
    )
    right_scores = _pair_scores(
        query[query_start + seed_length : query_start + seed_length + right_length],
        target[
            target_start + seed_length : target_start + seed_length + right_length
        ],
        scheme,
    )
    right_gain, right_taken = _best_prefix(right_scores, x_drop)

    left_length = min(query_start, target_start)
    left_scores = _pair_scores(
        query[query_start - left_length : query_start][::-1],
        target[target_start - left_length : target_start][::-1],
        scheme,
    )
    left_gain, left_taken = _best_prefix(left_scores, x_drop)

    return UngappedExtension(
        score=seed_score + right_gain + left_gain,
        query_start=query_start - left_taken,
        query_end=query_start + seed_length + right_taken,
        target_start=target_start - left_taken,
        target_end=target_start + seed_length + right_taken,
    )

"""Alignment-score significance (Karlin-Altschul / Gumbel statistics).

Raw local-alignment scores are not comparable across queries or
collections; search tools report *E-values*: the number of alignments
of at least that score expected by chance,

    E = K * m * n * exp(-lambda * S)

for query length m and searched length n.  For ungapped scoring the
Karlin-Altschul parameter ``lambda`` is the root of

    sum_ij  p_i p_j exp(lambda * s(i, j)) = 1

which this module solves exactly; for gapped scoring no closed form
exists, so the parameters are calibrated empirically by fitting a
Gumbel distribution to the scores of random alignments — the same
procedure BLAST's published parameter tables come from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.align.kernel import best_local_score
from repro.align.scoring import ScoringScheme
from repro.errors import AlignmentError

#: Euler-Mascheroni constant (method-of-moments Gumbel fit).
_EULER_GAMMA = 0.5772156649015329


def ungapped_lambda(
    scheme: ScoringScheme, gc_content: float = 0.5
) -> float:
    """The Karlin-Altschul lambda for ungapped match/mismatch scoring.

    Args:
        scheme: only ``match`` and ``mismatch`` are used.
        gc_content: background composition (A/T share ``1 - gc``).

    Returns:
        The unique positive root of the Karlin-Altschul equation.

    Raises:
        AlignmentError: if the expected pair score is non-negative
            (no positive root exists; local statistics break down).
    """
    if not 0.0 < gc_content < 1.0:
        raise AlignmentError(f"gc_content must lie in (0, 1), got {gc_content}")
    at_half = (1.0 - gc_content) / 2.0
    gc_half = gc_content / 2.0
    probabilities = np.array([at_half, gc_half, gc_half, at_half])
    match_mass = float((probabilities**2).sum())
    mismatch_mass = 1.0 - match_mass

    expected = match_mass * scheme.match + mismatch_mass * scheme.mismatch
    if expected >= 0.0:
        raise AlignmentError(
            "expected pair score must be negative for local-alignment "
            f"statistics, got {expected:.3f}"
        )

    def karlin_sum(lam: float) -> float:
        return (
            match_mass * math.exp(lam * scheme.match)
            + mismatch_mass * math.exp(lam * scheme.mismatch)
            - 1.0
        )

    low, high = 1e-9, 1.0
    while karlin_sum(high) < 0.0:
        high *= 2.0
        if high > 1e3:  # pragma: no cover - unreachable for valid schemes
            raise AlignmentError("failed to bracket lambda")
    for _ in range(100):
        middle = (low + high) / 2.0
        if karlin_sum(middle) < 0.0:
            low = middle
        else:
            high = middle
    return (low + high) / 2.0


@dataclass(frozen=True)
class GumbelParameters:
    """Fitted extreme-value parameters for one scoring configuration.

    Attributes:
        lam: the scale parameter (lambda).
        k: the Karlin-Altschul prefactor.
    """

    lam: float
    k: float

    def evalue(self, score: int, query_length: int, searched_length: int) -> float:
        """Expected chance alignments scoring >= ``score``."""
        return (
            self.k
            * query_length
            * searched_length
            * math.exp(-self.lam * score)
        )

    def pvalue(self, score: int, query_length: int, searched_length: int) -> float:
        """Probability of at least one chance alignment >= ``score``."""
        return -math.expm1(-self.evalue(score, query_length, searched_length))

    def bit_score(self, score: int) -> float:
        """The normalised (scheme-independent) score in bits."""
        return (self.lam * score - math.log(self.k)) / math.log(2.0)


def calibrate_gapped(
    scheme: ScoringScheme,
    query_length: int = 150,
    target_length: int = 600,
    samples: int = 60,
    gc_content: float = 0.5,
    seed: int = 0,
) -> GumbelParameters:
    """Fit Gumbel parameters for gapped scoring on random sequences.

    Aligns ``samples`` random query/target pairs and fits the score
    distribution by the method of moments:

        lambda = pi / (sigma * sqrt(6)),
        mu     = mean - gamma / lambda,
        K      = exp(lambda * mu) / (m * n).

    Raises:
        AlignmentError: if the sample is too small or degenerate.
    """
    if samples < 10:
        raise AlignmentError(f"need at least 10 samples, got {samples}")
    if query_length < 10 or target_length < 10:
        raise AlignmentError("calibration sequences must have >= 10 bases")
    rng = np.random.default_rng(seed)
    at_half = (1.0 - gc_content) / 2.0
    gc_half = gc_content / 2.0
    probabilities = [at_half, gc_half, gc_half, at_half]

    scores = np.empty(samples, dtype=np.float64)
    for sample in range(samples):
        query = rng.choice(4, size=query_length, p=probabilities).astype(
            np.uint8
        )
        target = rng.choice(4, size=target_length, p=probabilities).astype(
            np.uint8
        )
        scores[sample] = best_local_score(query, target, scheme)

    sigma = float(scores.std(ddof=1))
    if sigma <= 0.0:
        raise AlignmentError("degenerate calibration sample (zero variance)")
    lam = math.pi / (sigma * math.sqrt(6.0))
    mu = float(scores.mean()) - _EULER_GAMMA / lam
    k = math.exp(lam * mu) / (query_length * target_length)
    return GumbelParameters(lam=lam, k=k)


def annotate_evalues(
    hits,
    parameters: GumbelParameters,
    query_length: int,
    collection_bases: int,
) -> list[tuple[object, float]]:
    """Pair each search hit with its collection-wide E-value.

    The searched length is the whole collection: an exhaustive scan and
    a partitioned scan answer the same statistical question.
    """
    return [
        (
            hit,
            parameters.evalue(hit.score, query_length, collection_bases),
        )
        for hit in hits
    ]

"""Banded Smith-Waterman around a known diagonal.

When a seed hit pins the alignment near diagonal ``d = j - i``, the DP
only needs the cells within a band ``|j - i - d| <= half_width``.  The
band is stored per-row as a fixed-width array indexed by the offset
``o = j - i - d + half_width``, under which the diagonal move keeps the
same offset, the vertical move reads offset ``o + 1`` of the previous
row, and the horizontal move is the usual in-row closure.  Used by the
BLAST-like baseline's gapped stage.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import SENTINEL_SCORE, ScoringScheme
from repro.errors import AlignmentError
from repro.sequences.alphabet import NUM_BASES


def banded_local_score(
    query: np.ndarray,
    target: np.ndarray,
    diagonal: int,
    half_width: int,
    scheme: ScoringScheme,
) -> int:
    """Best local score restricted to a diagonal band.

    Args:
        query, target: coded sequences.
        diagonal: the band centre, as ``target_pos - query_pos``.
        half_width: how far the band extends either side of the centre.
        scheme: linear-gap scoring.

    Returns:
        The best in-band Smith-Waterman cell (>= 0).  A band that never
        intersects the DP matrix scores 0.

    Raises:
        AlignmentError: if ``half_width`` is negative.
    """
    if half_width < 0:
        raise AlignmentError(f"half_width must be >= 0, got {half_width}")
    query = np.asarray(query)
    target = np.asarray(target)
    query_length = int(query.shape[0])
    target_length = int(target.shape[0])
    if not query_length or not target_length:
        return 0

    width = 2 * half_width + 1
    profile = scheme.target_profile(target)
    rows = np.minimum(query, NUM_BASES).astype(np.int64)

    gap = np.int32(scheme.gap)
    gap_ramp = scheme.gap * np.arange(width, dtype=np.int32)
    previous = np.zeros(width + 1, dtype=np.int32)
    best = 0
    scores = np.empty(width, dtype=np.int32)
    chain = np.empty(width, dtype=np.int32)
    for row_index in range(query_length):
        # Columns this row's band covers: j = row_index + diagonal - w + o.
        first_column = row_index + diagonal - half_width
        columns = first_column + np.arange(width, dtype=np.int64)
        valid = (columns >= 0) & (columns < target_length)
        scores.fill(SENTINEL_SCORE)
        if valid.any():
            scores[valid] = profile[rows[row_index], columns[valid]]

        candidate = np.maximum(previous[:-1] + scores, previous[1:] + gap)
        np.maximum(candidate, 0, out=candidate)
        candidate[~valid] = 0
        np.subtract(candidate, gap_ramp, out=chain)
        np.maximum.accumulate(chain, out=chain)
        chain[1:] = chain[:-1] + gap_ramp[1:]
        chain[0] = 0
        np.maximum(candidate, chain, out=candidate)
        candidate[~valid] = 0

        previous[:-1] = candidate
        previous[-1] = 0
        row_best = int(candidate.max(initial=0))
        if row_best > best:
            best = row_best
    return best

"""Vectorised Smith-Waterman (linear gaps), row-wise over the target.

The dependence structure of the linear-gap recurrence lets the whole
row be computed with numpy primitives.  For row ``i`` let

    T[j] = max(0, H[i-1, j-1] + s(q_i, t_j), H[i-1, j] + g)

(the diagonal and vertical moves).  A horizontal gap chain entering
column ``j`` must start at some ``T[k]`` with ``k < j`` and costs
``g * (j - k)``, so

    H[i, j] = max(T[j],  g*j + max_{k<j} (T[k] - g*k))

and the inner maximum is a running prefix maximum — one call to
``np.maximum.accumulate``.  (Chains starting from H rather than T add
nothing: H is itself the closure of T under chaining, and chains
telescope.)  Each query row therefore costs a handful of vector
operations over the target, which is what makes a pure-Python
exhaustive Smith-Waterman scan of a megabase collection feasible — the
substitution DESIGN.md records for the paper's C implementation.

Scanning a whole collection uses a :class:`TargetImage`: the sequences
concatenated with *sentinel runs* between them.  Sentinel positions
score so negatively that no alignment can touch one, and the runs are
long enough (see ``ScoringScheme.sentinel_run_length``) that no gap
chain can bridge two sequences.  Per-sequence best scores then fall
out of a segmented maximum over the column-best array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence as TypingSequence

import numpy as np

from repro.align.scoring import SENTINEL_CODE, ScoringScheme
from repro.errors import AlignmentError
from repro.sequences.alphabet import NUM_BASES


def _query_rows(query: np.ndarray) -> np.ndarray:
    """Map query codes onto profile row indices (wildcards share one)."""
    query = np.asarray(query)
    if query.size and int(query.max(initial=0)) >= SENTINEL_CODE:
        raise AlignmentError("query sequences cannot contain sentinels")
    return np.minimum(query, NUM_BASES).astype(np.int64)


def column_best_scores(
    query: np.ndarray, profile: np.ndarray, scheme: ScoringScheme
) -> np.ndarray:
    """Best Smith-Waterman cell in every target column.

    Args:
        query: coded query (no sentinels).
        profile: target profile from ``ScoringScheme.target_profile``.
        scheme: the same scheme the profile was built with.

    Returns:
        ``col_best`` with ``col_best[j] = max_i H[i, j]`` — int32, or
        int64 when the target is long enough that the gap ramp would
        overflow 32 bits.
    """
    target_length = profile.shape[1]
    rows = _query_rows(query)
    # The horizontal-gap ramp reaches |gap| * target_length; switch to
    # 64-bit cells when that would overflow int32.
    wide = abs(scheme.gap) * (target_length + 1) >= 2**31 - 2**20
    cell_dtype = np.int64 if wide else np.int32
    col_best = np.zeros(target_length, dtype=cell_dtype)
    if not rows.shape[0] or not target_length:
        return col_best

    gap = cell_dtype(scheme.gap)
    gap_ramp = scheme.gap * np.arange(target_length, dtype=cell_dtype)
    previous = np.zeros(target_length + 1, dtype=cell_dtype)
    candidate = np.empty(target_length, dtype=cell_dtype)
    chain = np.empty(target_length, dtype=cell_dtype)
    for row in rows:
        scores = profile[row]
        np.add(previous[:-1], scores, out=candidate)
        np.maximum(candidate, previous[1:] + gap, out=candidate)
        np.maximum(candidate, 0, out=candidate)
        # Horizontal-gap closure via prefix maximum (see module docs).
        np.subtract(candidate, gap_ramp, out=chain)
        np.maximum.accumulate(chain, out=chain)
        chain[1:] = chain[:-1] + gap_ramp[1:]
        chain[0] = 0
        np.maximum(candidate, chain, out=candidate)
        previous[1:] = candidate
        np.maximum(col_best, candidate, out=col_best)
    return col_best


def best_local_score(
    query: np.ndarray, target: np.ndarray, scheme: ScoringScheme
) -> int:
    """Best local-alignment score between two coded sequences."""
    profile = scheme.target_profile(np.asarray(target))
    col_best = column_best_scores(np.asarray(query), profile, scheme)
    return int(col_best.max(initial=0))


@dataclass
class TargetImage:
    """A collection concatenated for whole-collection scanning.

    Attributes:
        codes: concatenated codes with sentinel runs between sequences.
        starts: per-sequence start offset in ``codes``.
        lengths: per-sequence length.
        max_query_length: largest query the sentinel runs protect against.
        profile: cached score profile (built lazily per scheme).
    """

    codes: np.ndarray
    starts: np.ndarray
    lengths: np.ndarray
    max_query_length: int
    _profiles: dict[ScoringScheme, np.ndarray] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        sequence_codes: TypingSequence[np.ndarray],
        scheme: ScoringScheme,
        max_query_length: int,
    ) -> "TargetImage":
        """Concatenate a collection with safe sentinel separation.

        Raises:
            AlignmentError: if the collection is empty or the query
                bound is not positive.
        """
        if not sequence_codes:
            raise AlignmentError("cannot build a target image of nothing")
        if max_query_length <= 0:
            raise AlignmentError(
                f"max_query_length must be positive, got {max_query_length}"
            )
        run = scheme.sentinel_run_length(max_query_length)
        sentinel = np.full(run, SENTINEL_CODE, dtype=np.uint8)
        pieces: list[np.ndarray] = []
        starts = np.empty(len(sequence_codes), dtype=np.int64)
        lengths = np.empty(len(sequence_codes), dtype=np.int64)
        cursor = 0
        for ordinal, codes in enumerate(sequence_codes):
            codes = np.asarray(codes, dtype=np.uint8)
            starts[ordinal] = cursor
            lengths[ordinal] = codes.shape[0]
            pieces.append(codes)
            pieces.append(sentinel)
            cursor += codes.shape[0] + run
        return cls(np.concatenate(pieces), starts, lengths, max_query_length)

    def profile_for(self, scheme: ScoringScheme) -> np.ndarray:
        """The (cached) score profile of the concatenated target."""
        profile = self._profiles.get(scheme)
        if profile is None:
            profile = scheme.target_profile(self.codes)
            self._profiles[scheme] = profile
        return profile

    @property
    def num_sequences(self) -> int:
        return int(self.starts.shape[0])


def segment_best_scores(
    query: np.ndarray, image: TargetImage, scheme: ScoringScheme
) -> np.ndarray:
    """Best local score of ``query`` against every sequence in an image.

    Raises:
        AlignmentError: if the query exceeds the image's query bound
            (the sentinel runs would no longer be safe).
    """
    query = np.asarray(query)
    if query.shape[0] > image.max_query_length:
        raise AlignmentError(
            f"query length {query.shape[0]} exceeds the image bound "
            f"{image.max_query_length}; rebuild the image"
        )
    col_best = column_best_scores(query, image.profile_for(scheme), scheme)
    # Segmented max over [start, start + length) for each sequence.  The
    # flattened bound list alternates segment/gap; keep the even slots.
    bounds = np.empty(2 * image.num_sequences, dtype=np.int64)
    bounds[0::2] = image.starts
    bounds[1::2] = image.starts + image.lengths
    empty = image.lengths == 0
    results = np.zeros(image.num_sequences, dtype=np.int64)
    if bool(empty.all()):
        return results
    # reduceat cannot handle zero-width segments; give them width 1 and
    # zero the result afterwards (sentinel columns never score > 0).
    safe_bounds = bounds.copy()
    safe_bounds[1::2] = np.maximum(safe_bounds[1::2], safe_bounds[0::2] + 1)
    segment_max = np.maximum.reduceat(col_best, safe_bounds[:-1])[0::2]
    results[:] = segment_max
    results[empty] = 0
    return results

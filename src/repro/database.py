"""A persistent nucleotide database: shards of index + store + engine.

:class:`Database` is the convenience layer a downstream user adopts:
it owns a directory holding one or more *shards* — each an on-disk
index and sequence store over a contiguous ordinal range — opens them
memory-mapped, and hands out ready-made search engines.

    from repro import Database, read_fasta

    Database.create(read_fasta("genbank.fasta"), "genbank.db",
                    shards=4, workers=4)
    with Database.open("genbank.db") as db:
        report = db.search(query, top_k=10)
        print(db.alignment(query, report.best().ordinal).pretty())

A database built with ``shards=1`` (the default) is byte-identical to
the classic single-index layout, so existing databases open unchanged;
``shards=N`` builds the shards in parallel worker processes and
queries fan out across them with globally merged, score-identical
results (see :mod:`repro.sharding` and ``docs/ARCHITECTURE.md``).

Durability: every file is written atomically (temp + fsync + rename)
and manifests — written last, innermost first — record CRC32 digests
of the index and store files, so an interrupted build is never
mistaken for a valid database and silent file damage is detectable.
:meth:`open` accepts a ``verify`` mode and an ``on_corruption``
policy; :meth:`verify` audits a directory without fully opening it and
:meth:`repair` rebuilds each shard's index from its surviving store.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from repro.coarse_backends.signature import SignatureIndex

import numpy as np

from repro.align.pairwise import Alignment, local_align
from repro.align.scoring import ScoringScheme
from repro.align.statistics import GumbelParameters, calibrate_gapped
from repro.coarse_backends import get_backend
from repro.coarse_backends.base import (
    ARTIFACT_NAMES,
    DEFAULT_BACKEND,
    artifact_name,
    coarse_from_manifest,
    coarse_section,
)
from repro.errors import (
    CorruptionError,
    IndexFormatError,
    IndexParameterError,
    SearchError,
)
from repro.index.atomic import file_crc32
from repro.index.builder import IndexParameters
from repro.index.storage import DiskIndex
from repro.index.store import (
    LiveSequenceView,
    SequenceSource,
    SequenceStore,
    write_store,
)
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    coalesce,
)
from repro.lsm.manifest import (
    LSM_DIRECTORY_PREFIXES,
    LiveState,
    live_state_from_manifest,
    make_live_manifest,
)
from repro.lsm.mutate import append_delta, compact_database, tombstone
from repro.search.deadline import Deadline
from repro.search.engine import CORRUPTION_POLICIES, PartitionedSearchEngine
from repro.search.resilience import ShardResilience
from repro.search.results import SearchReport
from repro.sequences.record import Sequence
from repro.sharding.build import build_sharded_database
from repro.sharding.engine import ShardedSearchEngine, ShardedSequenceSource
from repro.sharding.manifest import (
    INDEX_NAME as _INDEX_NAME,
    MANIFEST_NAME as _MANIFEST_NAME,
    STORE_NAME as _STORE_NAME,
    ShardLayoutEntry,
    layout_from_manifest,
    make_manifest as _make_manifest,
    make_sharded_manifest,
    write_manifest,
)
from repro.sharding.planner import plan_shards, shard_of

#: Verification modes accepted by :meth:`Database.open`.
VERIFY_MODES = ("lazy", "full")

_LOG = logging.getLogger(__name__)


def _write_manifest(directory: Path, manifest: dict) -> None:
    write_manifest(directory, manifest)


@dataclass
class VerificationReport:
    """Outcome of a database integrity audit.

    Attributes:
        path: the audited directory.
        issues: detected damage — anything here means the database is
            not fully intact.
        notes: non-fatal observations (e.g. format v1 files that carry
            no integrity data).
    """

    path: Path
    issues: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        state = "intact" if self.ok else f"{len(self.issues)} problem(s)"
        return f"{self.path}: {state}"


@dataclass(frozen=True)
class AutoCompactPolicy:
    """When a mutation should fold the LSM structure back down.

    Passed to :meth:`Database.add_records` / :meth:`Database.delete`;
    evaluated strictly *after* the mutation's manifest swap commits, so
    the trigger runs on the mutation path, never the query path, and a
    crash between commit and compaction loses nothing.

    Attributes:
        max_delta_shards: compact once more than this many delta shards
            have accumulated.
        max_tombstone_ratio: compact once tombstoned records exceed
            this fraction of the stored collection.

    Raises:
        IndexParameterError: if ``max_delta_shards`` < 1 or
            ``max_tombstone_ratio`` is outside (0, 1].
    """

    max_delta_shards: int = 4
    max_tombstone_ratio: float = 0.25

    def __post_init__(self) -> None:
        if self.max_delta_shards < 1:
            raise IndexParameterError(
                f"max_delta_shards must be >= 1, got {self.max_delta_shards}"
            )
        if not 0.0 < self.max_tombstone_ratio <= 1.0:
            raise IndexParameterError(
                "max_tombstone_ratio must lie in (0, 1], got "
                f"{self.max_tombstone_ratio}"
            )

    def should_compact(
        self, delta_shards: int, tombstones: int, stored: int
    ) -> bool:
        """Whether the thresholds are exceeded for the given state."""
        if delta_shards > self.max_delta_shards:
            return True
        return bool(
            stored and tombstones / stored > self.max_tombstone_ratio
        )


@dataclass
class ShardHandle:
    """One opened shard: its directory, ordinal base, and readers.

    ``index`` is whichever coarse reader the database's backend opens —
    a :class:`~repro.index.storage.DiskIndex` for the default
    ``inverted`` backend, a
    :class:`~repro.coarse_backends.signature.SignatureIndex` for
    ``signature`` — and ``None`` when it was unreadable and the
    ``"fallback"`` policy degraded the shard to exhaustive scanning.
    """

    name: str
    path: Path
    base: int
    index: DiskIndex | SignatureIndex | None
    store: SequenceStore

    @property
    def degraded(self) -> bool:
        return self.index is None

    def close(self) -> None:
        if self.index is not None:
            self.index.close()
        self.store.close()


class Database:
    """A directory-backed searchable nucleotide collection.

    Create with :meth:`create`, open with :meth:`open` (also a context
    manager).  The default engine settings can be overridden per call.

    A database opened with ``on_corruption="fallback"`` any of whose
    shard indexes is unreadable runs *degraded*: :attr:`degraded` is
    true and every query is answered by an exhaustive scan of the
    sequence stores.
    """

    #: Engines retained per database; the least recently used engine is
    #: dropped when a new configuration would exceed this.
    ENGINE_CACHE_LIMIT = 8

    def __init__(
        self,
        path: Path,
        shards: list[ShardHandle],
        manifest: dict,
        on_corruption: str = "raise",
        live: LiveState | None = None,
    ) -> None:
        if not shards:
            raise IndexFormatError(f"{path}: database has no shards")
        self.path = path
        self.manifest = manifest
        self.on_corruption = on_corruption
        self.live = live
        self.coarse = coarse_from_manifest(manifest)
        self._shards = shards
        self._bases = [shard.base for shard in shards]
        self._tombstones = np.asarray(
            live.tombstones if live is not None else (), dtype=np.int64
        )
        if len(shards) == 1:
            stored: SequenceSource = shards[0].store
        else:
            stored = ShardedSequenceSource(
                [shard.store for shard in shards]
            )
        self._stored_source = stored
        self._source: SequenceSource = (
            LiveSequenceView(stored, self._tombstones.tolist())
            if self._tombstones.size
            else stored
        )
        self._dead_bases = sum(
            self._stored_length(int(ordinal))
            for ordinal in self._tombstones
        )
        self._engines: "OrderedDict[tuple, object]" = OrderedDict()
        # Concurrent server requests share one database: the engine
        # cache's get/build/evict must be atomic or two threads race to
        # build (and evict) the same configuration.  Reentrant because
        # significance calibration can re-enter via instrumented spans.
        self._engine_lock = threading.RLock()
        self._exhaustive: dict[ScoringScheme, object] = {}
        self._significance: GumbelParameters | None = None
        self._instruments = NULL_INSTRUMENTS

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        sequences: Iterable[Sequence],
        path: str | Path,
        params: IndexParameters | None = None,
        coding: str = "direct",
        shards: int = 1,
        workers: int = 1,
        coarse_backend: str = DEFAULT_BACKEND,
        coarse_params: dict | None = None,
    ) -> "Database":
        """Build and persist a database directory, then open it.

        All files are written atomically and each manifest lands after
        the files it covers (the top-level manifest last), so an
        interrupted build leaves a directory :meth:`open` will reject
        rather than a silently half-written database.

        Args:
            sequences: the collection (any iterable of records).
            path: directory to create (must not already contain a
                database).
            params: index shape (defaults to overlapping length-8
                intervals).
            coding: sequence-store payload coding, "direct" or "raw".
            shards: contiguous ordinal ranges to split the collection
                into; 1 (the default) writes the classic byte-identical
                single-index layout.  Clamped to the collection size.
            workers: shard-build processes; with ``shards=N`` and
                ``workers=M`` up to ``min(N, M)`` shards build
                concurrently.  Ignored for single-shard builds.
            coarse_backend: which coarse artifact each shard builds —
                ``"inverted"`` (the default posting-list index) or
                ``"signature"`` (the bit-sliced signature index; see
                :mod:`repro.coarse_backends`).  Recorded in the
                manifest and honoured by every later mutation.
            coarse_params: backend-specific knobs (for ``signature``:
                ``false_positive_rate``, ``hashes``,
                ``docs_per_block``).

        Raises:
            IndexFormatError: if the directory already holds a database
                or ``coarse_backend`` is unknown.
            IndexParameterError: if ``shards`` or ``workers`` < 1, or
                ``coarse_params`` are invalid for the backend.
        """
        if shards < 1:
            raise IndexParameterError(f"shards must be >= 1, got {shards}")
        if workers < 1:
            raise IndexParameterError(f"workers must be >= 1, got {workers}")
        coarse = coarse_section(coarse_backend, coarse_params)
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        manifest_path = directory / _MANIFEST_NAME
        if manifest_path.exists():
            raise IndexFormatError(f"{directory} already holds a database")
        records = list(sequences)
        params = params or IndexParameters()
        if shards > 1 and shards > len(records):
            _LOG.warning(
                "%s: %d shards requested for %d sequences; clamping",
                directory,
                shards,
                len(records),
            )
        if shards > 1 and min(shards, len(records)) > 1:
            plan = plan_shards(len(records), shards)
            build_sharded_database(
                directory, records, plan, params, coding, workers,
                coarse=coarse,
            )
            return cls.open(directory)
        backend = get_backend(coarse["backend"])
        index_bytes = backend.build_artifact(
            directory, records, params, coarse["params"]
        )
        store_bytes = write_store(records, directory / _STORE_NAME, coding)
        manifest = _make_manifest(
            directory,
            len(records),
            int(sum(len(record) for record in records)),
            coding,
            params,
            index_bytes,
            store_bytes,
            coarse=coarse,
        )
        _write_manifest(directory, manifest)
        return cls.open(directory)

    @classmethod
    def open(
        cls,
        path: str | Path,
        verify: str = "lazy",
        on_corruption: str = "raise",
    ) -> "Database":
        """Open an existing (possibly sharded) database directory.

        Args:
            path: the database directory.
            verify: ``"lazy"`` checks headers and tables eagerly and
                each posting list / record lazily on first access (the
                default); ``"full"`` additionally recomputes every
                manifest's whole-file digests and every checksum before
                returning.
            on_corruption: default policy for engines created by this
                database (see :class:`PartitionedSearchEngine`).  With
                ``"fallback"``, an unreadable shard *index* degrades
                the database to exhaustive scanning instead of failing.

        Raises:
            IndexFormatError: if the directory is not a database or its
                files are inconsistent.
            CorruptionError: if an integrity check fails (and the
                policy does not degrade).
        """
        if verify not in VERIFY_MODES:
            raise IndexFormatError(
                f"unknown verify mode {verify!r}; expected one of "
                f"{VERIFY_MODES}"
            )
        if on_corruption not in CORRUPTION_POLICIES:
            raise SearchError(
                f"unknown on_corruption {on_corruption!r}; expected one of "
                f"{CORRUPTION_POLICIES}"
            )
        directory = Path(path)
        manifest = cls._load_manifest(directory)
        live = live_state_from_manifest(manifest)
        # The top-level manifest is authoritative for the coarse
        # backend: every shard (base or delta) of one database carries
        # the same artifact kind.
        coarse = coarse_from_manifest(manifest)
        layout = (
            list(live.entries)
            if live is not None
            else layout_from_manifest(manifest)
        )
        shards: list[ShardHandle] = []
        try:
            if layout is None:
                shards.append(
                    cls._open_shard(
                        "", directory, 0, on_corruption, coarse
                    )
                )
            else:
                for entry in layout:
                    shard_dir = (
                        directory / entry.name if entry.name else directory
                    )
                    shards.append(
                        cls._open_shard(
                            entry.name,
                            shard_dir,
                            entry.base,
                            on_corruption,
                            coarse,
                        )
                    )
                    if len(shards[-1].store) != entry.sequences:
                        raise IndexFormatError(
                            f"{shard_dir}: manifest promises "
                            f"{entry.sequences} sequences but the store "
                            f"holds {len(shards[-1].store)}"
                        )
            if verify == "full":
                report = VerificationReport(directory)
                for shard in shards:
                    inner = cls._verify_open_files(
                        shard.path,
                        cls._shard_checksums(manifest, shard),
                        shard.index,
                        shard.store,
                    )
                    report.issues.extend(inner.issues)
                    report.notes.extend(inner.notes)
                if not report.ok:
                    raise CorruptionError(
                        f"{directory}: full verification failed: "
                        + "; ".join(report.issues)
                    )
            return cls(directory, shards, manifest, on_corruption, live=live)
        except Exception:
            # Never leak mmaps/handles when a later step fails.
            for shard in shards:
                shard.close()
            raise

    @classmethod
    def _open_shard(
        cls,
        name: str,
        directory: Path,
        base: int,
        on_corruption: str,
        coarse: dict | None = None,
    ) -> ShardHandle:
        """Open one shard's readers, honouring the fallback policy."""
        backend = get_backend(
            (coarse or {}).get("backend", DEFAULT_BACKEND)
        )
        index: DiskIndex | SignatureIndex | None = None
        store: SequenceStore | None = None
        try:
            try:
                index = backend.open_artifact(directory)
            except IndexFormatError as exc:
                if on_corruption != "fallback":
                    raise
                _LOG.warning(
                    "%s: index unreadable (%s); opening degraded "
                    "(exhaustive search over the store)",
                    directory,
                    exc,
                )
            store = SequenceStore(directory / _STORE_NAME)
            if (
                index is not None
                and index.collection.num_sequences != len(store)
            ):
                raise IndexFormatError(
                    f"{directory}: index and store disagree about the "
                    "collection size"
                )
            return ShardHandle(name, directory, base, index, store)
        except Exception:
            if index is not None:
                index.close()
            if store is not None:
                store.close()
            raise

    @staticmethod
    def _shard_checksums(manifest: dict, shard: ShardHandle) -> dict:
        """The manifest fragment recording a shard's file digests."""
        lsm = manifest.get("lsm")
        if lsm is not None:
            for part in ("base", "deltas"):
                for description in lsm.get(part, {}).get("layout", []):
                    if description.get("name") == shard.name:
                        return {"checksums": description.get("checksums")}
            return {}
        if not shard.name:
            return manifest
        for description in manifest.get("shards", {}).get("layout", []):
            if description.get("name") == shard.name:
                return {"checksums": description.get("checksums")}
        return {}

    @staticmethod
    def _load_manifest(directory: Path) -> dict:
        from repro.sharding.manifest import load_manifest

        return load_manifest(directory)

    @staticmethod
    def _verify_open_files(
        directory: Path,
        manifest: dict,
        index: DiskIndex | SignatureIndex | None,
        store: SequenceStore | None,
    ) -> VerificationReport:
        """Digest + checksum audit of already-opened files."""
        report = VerificationReport(directory)
        checksums = manifest.get("checksums")
        if checksums is None:
            report.notes.append(
                f"{directory}: manifest records no file digests "
                "(database version 1)"
            )
        else:
            # The coarse artifact's name depends on the backend: trust
            # the opened reader's self-declaration, falling back (for a
            # degraded shard) to whichever artifact the manifest
            # actually digested.
            if index is not None:
                coarse_file = artifact_name(
                    getattr(index, "coarse_backend", DEFAULT_BACKEND)
                )
            else:
                coarse_file = next(
                    (
                        name
                        for name in ARTIFACT_NAMES.values()
                        if name in checksums
                    ),
                    _INDEX_NAME,
                )
            for name in (coarse_file, _STORE_NAME):
                recorded = checksums.get(name)
                if recorded is None:
                    report.issues.append(
                        f"{directory}: manifest has no digest for {name}"
                    )
                    continue
                try:
                    actual = f"{file_crc32(directory / name):08x}"
                except OSError as exc:
                    report.issues.append(
                        f"{directory / name}: unreadable ({exc})"
                    )
                    continue
                if actual != recorded:
                    report.issues.append(
                        f"{directory / name}: file digest {actual} does not "
                        f"match manifest {recorded}"
                    )
        for reader in (index, store):
            if reader is None:
                continue
            problems = reader.verify()
            for problem in problems:
                if "no integrity data" in problem:
                    report.notes.append(problem)
                else:
                    report.issues.append(problem)
        return report

    @classmethod
    def verify(cls, path: str | Path) -> VerificationReport:
        """Audit a database directory without requiring it to open.

        Checks every manifest, the whole-file digests, and every
        checksum in every shard's files; problems are collected rather
        than raised, so a damaged database yields a complete report.
        For a sharded database the per-shard digests recorded in the
        top-level manifest are cross-checked against each shard's own
        manifest, so a swapped-out shard is caught even when the shard
        itself is internally consistent.
        """
        directory = Path(path)
        report = VerificationReport(directory)
        try:
            manifest = cls._load_manifest(directory)
        except IndexFormatError as exc:
            report.issues.append(str(exc))
            return report
        try:
            live = live_state_from_manifest(manifest)
            layout = (
                list(live.entries)
                if live is not None
                else layout_from_manifest(manifest)
            )
            coarse = coarse_from_manifest(manifest)
        except IndexFormatError as exc:
            report.issues.append(str(exc))
            return report
        if layout is None:
            cls._verify_single(directory, manifest, report, coarse=coarse)
            cls._note_orphans(directory, set(), report)
            return report
        for entry in layout:
            if not entry.name:
                # A live database whose base is the classic top-level
                # file pair: audit it in place against the digests the
                # live manifest carries for it (the fragment has no
                # coarse section, so the top-level backend is passed
                # down explicitly).
                cls._verify_single(
                    directory,
                    {"checksums": entry.checksums},
                    report,
                    coarse=coarse,
                )
                continue
            shard_dir = directory / entry.name
            inner = cls.verify(shard_dir)
            report.issues.extend(inner.issues)
            report.notes.extend(inner.notes)
            # Cross-check the shard's own manifest digests against the
            # copies the top-level manifest recorded at build time.
            try:
                shard_manifest = cls._load_manifest(shard_dir)
            except IndexFormatError:
                continue  # already reported by the recursive verify
            if shard_manifest.get("checksums") != entry.checksums:
                report.issues.append(
                    f"{shard_dir}: shard digests do not match the "
                    "top-level manifest (shard replaced or rebuilt "
                    "outside the database?)"
                )
            if shard_manifest.get("sequences") != entry.sequences:
                report.issues.append(
                    f"{shard_dir}: shard holds "
                    f"{shard_manifest.get('sequences')} sequences but the "
                    f"top-level manifest records {entry.sequences}"
                )
        cls._note_orphans(
            directory, {entry.name for entry in layout if entry.name}, report
        )
        return report

    @staticmethod
    def _note_orphans(
        directory: Path, referenced: set, report: VerificationReport
    ) -> None:
        """Flag shard/delta directories no manifest references.

        These are interrupted-mutation leftovers (or a completed
        compaction whose cleanup was interrupted): invisible to
        readers, safe to delete, reclaimed by the next compaction —
        notes, not problems.
        """
        try:
            children = sorted(directory.iterdir())
        except OSError:
            return
        for child in children:
            if (
                child.is_dir()
                and child.name.startswith(LSM_DIRECTORY_PREFIXES)
                and child.name not in referenced
            ):
                report.notes.append(
                    f"{child}: not referenced by the live manifest "
                    "(interrupted ingest/compaction leftover; the next "
                    "compaction reclaims it)"
                )

    @classmethod
    def _verify_single(
        cls,
        directory: Path,
        manifest: dict,
        report: VerificationReport,
        coarse: dict | None = None,
    ) -> None:
        """Audit one classic (single-shard) database directory."""
        if coarse is None:
            try:
                coarse = coarse_from_manifest(manifest)
            except IndexFormatError as exc:
                report.issues.append(str(exc))
                return
        backend = get_backend(coarse["backend"])
        index: DiskIndex | SignatureIndex | None = None
        store: SequenceStore | None = None
        try:
            try:
                index = backend.open_artifact(directory)
            except (IndexFormatError, OSError) as exc:
                report.issues.append(f"index: {exc}")
            try:
                store = SequenceStore(directory / _STORE_NAME)
            except (IndexFormatError, OSError) as exc:
                report.issues.append(f"store: {exc}")
            if (
                index is not None
                and store is not None
                and index.collection.num_sequences != len(store)
            ):
                report.issues.append(
                    f"{directory}: index and store disagree about the "
                    "collection size"
                )
            if store is not None:
                inner = cls._verify_open_files(
                    directory, manifest, index, store
                )
                report.issues.extend(inner.issues)
                report.notes.extend(inner.notes)
        finally:
            if index is not None:
                index.close()
            if store is not None:
                store.close()

    @classmethod
    def repair(
        cls,
        path: str | Path,
        params: IndexParameters | None = None,
    ) -> "Database":
        """Rebuild the index (and manifest) of every damaged shard.

        Each shard's sequence store is fully verified first — it is the
        source of truth, so it must be intact.  The shard's index is
        then rebuilt from the stored records, written atomically, and
        fresh manifests (shard first, then top-level for sharded
        databases) with up-to-date digests replace the old ones.

        Args:
            path: the database directory.
            params: index shape; defaults to the manifest's recorded
                parameters, then to library defaults.

        Raises:
            CorruptionError: if a store itself is damaged (nothing to
                rebuild from).
            IndexFormatError: if the directory holds no store at all.

        Returns:
            The repaired database, opened.
        """
        directory = Path(path)
        manifest: dict | None
        try:
            manifest = cls._load_manifest(directory)
        except IndexFormatError:
            manifest = None
        live = (
            live_state_from_manifest(manifest)
            if manifest is not None
            else None
        )
        coarse: dict | None = None
        if manifest is not None:
            try:
                coarse = coarse_from_manifest(manifest)
            except IndexFormatError:
                # An unreadable coarse section: rebuild as the default
                # backend (the store is the source of truth, the coarse
                # artifact is derived either way).
                coarse = None
        if live is not None:
            return cls._repair_live(directory, live, params, coarse)
        layout = (
            layout_from_manifest(manifest) if manifest is not None else None
        )
        if layout is None:
            cls._repair_single(directory, params, coarse=coarse)
            return cls.open(directory)
        shard_manifests: list[dict] = []
        for entry in layout:
            shard_manifests.append(
                cls._repair_single(
                    directory / entry.name, params, coarse=coarse
                )
            )
        coding = str(shard_manifests[0]["coding"])
        repaired_params = IndexParameters.from_description(
            shard_manifests[0]["params"]
        )
        entries = []
        base = 0
        for entry, shard_manifest in zip(layout, shard_manifests):
            entries.append(
                ShardLayoutEntry(
                    name=entry.name,
                    base=base,
                    sequences=shard_manifest["sequences"],
                    bases=shard_manifest["bases"],
                    index_bytes=shard_manifest["index_bytes"],
                    store_bytes=shard_manifest["store_bytes"],
                    checksums=dict(shard_manifest["checksums"]),
                )
            )
            base += int(shard_manifest["sequences"])
        _write_manifest(
            directory,
            make_sharded_manifest(
                coding, repaired_params, entries, coarse=coarse
            ),
        )
        return cls.open(directory)

    @classmethod
    def _repair_live(
        cls,
        directory: Path,
        live: LiveState,
        params: IndexParameters | None,
        coarse: dict | None = None,
    ) -> "Database":
        """Rebuild every entry of a live (LSM) database.

        Each base and delta entry is repaired like an ordinary shard;
        for a classic top-level base (name ``""``) the rebuilt files
        share the database directory, so its per-shard manifest write
        is suppressed — the live manifest, rewritten once at the end
        with the tombstones preserved and the generation bumped, is the
        only top-level commit.
        """
        shard_manifests: list[dict] = []
        for entry in live.entries:
            if entry.name:
                shard_manifests.append(
                    cls._repair_single(
                        directory / entry.name, params, coarse=coarse
                    )
                )
            else:
                shard_manifests.append(
                    cls._repair_single(
                        directory, params, write=False, coarse=coarse
                    )
                )
        coding = str(shard_manifests[0]["coding"])
        repaired_params = IndexParameters.from_description(
            shard_manifests[0]["params"]
        )
        entries = []
        base = 0
        for entry, shard_manifest in zip(live.entries, shard_manifests):
            entries.append(
                ShardLayoutEntry(
                    name=entry.name,
                    base=base,
                    sequences=shard_manifest["sequences"],
                    bases=shard_manifest["bases"],
                    index_bytes=shard_manifest["index_bytes"],
                    store_bytes=shard_manifest["store_bytes"],
                    checksums=dict(shard_manifest["checksums"]),
                )
            )
            base += int(shard_manifest["sequences"])
        split = len(live.base)
        state = LiveState(
            live.generation + 1,
            tuple(entries[:split]),
            tuple(entries[split:]),
            live.tombstones,
        )
        _write_manifest(
            directory,
            make_live_manifest(coding, repaired_params, state, coarse=coarse),
        )
        return cls.open(directory)

    @classmethod
    def _repair_single(
        cls,
        directory: Path,
        params: IndexParameters | None,
        write: bool = True,
        coarse: dict | None = None,
    ) -> dict:
        """Rebuild one shard directory's coarse artifact; returns its
        manifest."""
        store_path = directory / _STORE_NAME
        if not store_path.exists():
            raise IndexFormatError(
                f"{directory}: no sequence store to rebuild from"
            )
        manifest: dict | None = None
        if params is None or coarse is None:
            try:
                manifest = cls._load_manifest(directory)
            except IndexFormatError:
                manifest = None
        if params is None:
            try:
                params = IndexParameters.from_description(manifest["params"])
            except (KeyError, TypeError, ValueError):
                params = IndexParameters()
        if coarse is None and manifest is not None:
            try:
                coarse = coarse_from_manifest(manifest)
            except IndexFormatError:
                coarse = None
        if coarse is None:
            coarse = {"backend": DEFAULT_BACKEND, "params": {}}
        with SequenceStore(store_path) as store:
            problems = [
                problem
                for problem in store.verify()
                if "no integrity data" not in problem
            ]
            if problems:
                raise CorruptionError(
                    f"{directory}: store is damaged, cannot repair: "
                    + "; ".join(problems)
                )
            records = [store.record(ordinal) for ordinal in range(len(store))]
            coding = store.coding
        backend = get_backend(coarse["backend"])
        index_bytes = backend.build_artifact(
            directory, records, params, coarse["params"]
        )
        store_bytes = store_path.stat().st_size
        manifest = _make_manifest(
            directory,
            len(records),
            int(sum(len(record) for record in records)),
            coding,
            params,
            index_bytes,
            store_bytes,
            coarse=coarse,
        )
        if write:
            _write_manifest(directory, manifest)
        return manifest

    def close(self) -> None:
        """Release cached engines' executors and every shard's maps."""
        with self._engine_lock:
            engines = list(self._engines.values())
            self._engines.clear()
        for engine in engines:
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- collection access ----------------------------------------------

    @property
    def num_shards(self) -> int:
        """Shards the collection is split into (1 for classic layout)."""
        return len(self._shards)

    @property
    def shards(self) -> list[ShardHandle]:
        """The opened shard handles, in ordinal order."""
        return list(self._shards)

    @property
    def index(self) -> DiskIndex | SignatureIndex | None:
        """The coarse reader of a single-shard database; ``None`` when
        the database is sharded (shard indexes live on :attr:`shards`)
        or degraded."""
        if len(self._shards) == 1:
            return self._shards[0].index
        return None

    @property
    def store(self) -> SequenceStore | None:
        """The store of a single-shard database; ``None`` when sharded
        (use :meth:`record` / :meth:`records`, which route globally)."""
        if len(self._shards) == 1:
            return self._shards[0].store
        return None

    @property
    def coarse_backend(self) -> str:
        """The coarse backend every shard of this database uses
        (``"inverted"`` unless the manifest declares otherwise)."""
        return str(self.coarse["backend"])

    @property
    def degraded(self) -> bool:
        """True when any shard's index was unreadable and search falls
        back to exhaustive scanning."""
        return any(shard.degraded for shard in self._shards)

    def __len__(self) -> int:
        """Live sequences (tombstoned records are not presented)."""
        return self.stored_sequences - int(self._tombstones.size)

    @property
    def stored_sequences(self) -> int:
        """Sequences on disk, tombstoned ones included."""
        return sum(len(shard.store) for shard in self._shards)

    @property
    def generation(self) -> int:
        """The live manifest's generation (0 for a never-mutated
        database)."""
        return self.live.generation if self.live is not None else 0

    @property
    def delta_shards(self) -> int:
        """Delta shards appended since the last compaction."""
        return len(self.live.deltas) if self.live is not None else 0

    @property
    def tombstone_count(self) -> int:
        """Records deleted but not yet compacted away."""
        return int(self._tombstones.size)

    def _stored_length(self, stored: int) -> int:
        """Residues of the record at a *stored* ordinal."""
        shard = self._shards[shard_of(self._bases, stored)]
        local = stored - shard.base
        if shard.index is not None:
            return int(shard.index.collection.lengths[local])
        return int(shard.store.codes(local).shape[0])

    def _stored_of(self, ordinal: int) -> int:
        """Stored ordinal behind a logical (live) ordinal."""
        if isinstance(self._source, LiveSequenceView):
            return self._source.stored_ordinal(ordinal)
        return ordinal

    @property
    def total_bases(self) -> int:
        """Live residues (tombstoned records' bases excluded)."""
        if not self.degraded:
            return (
                sum(
                    shard.index.collection.total_length
                    for shard in self._shards
                )
                - self._dead_bases
            )
        return int(self.manifest.get("bases", 0)) - self._dead_bases

    def shard_of(self, ordinal: int) -> ShardHandle:
        """The shard holding a (logical) global ordinal.

        Raises:
            SearchError: if ``ordinal`` is out of range.
        """
        if not 0 <= ordinal < len(self):
            raise SearchError(f"no sequence with ordinal {ordinal}")
        return self._shards[shard_of(self._bases, self._stored_of(ordinal))]

    def record(self, ordinal: int) -> Sequence:
        """Fetch one sequence record by (logical) global ordinal."""
        return self._source.record(ordinal)

    def records(self) -> Iterator[Sequence]:
        """Iterate every live record in logical ordinal order."""
        for ordinal in range(len(self)):
            yield self._source.record(ordinal)

    # -- observability ---------------------------------------------------

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Attach an observability sink to the database facade.

        The facade reports engine-cache traffic
        (``database.engine_cache.hits`` / ``misses`` / ``evictions``
        and the ``database.engine_cache.size`` gauge); engines created
        *after* the call are wired with the same sink.  Passing
        ``None`` detaches.
        """
        self._instruments = coalesce(instruments)
        self._publish_lsm_gauges()

    def _publish_lsm_gauges(self) -> None:
        instruments = self._instruments
        if not instruments.enabled:
            return
        instruments.set_gauge("lsm.generation", self.generation)
        instruments.set_gauge("lsm.delta_shards", self.delta_shards)
        instruments.set_gauge("lsm.tombstones", self.tombstone_count)

    # -- mutation (the live/LSM layer) -----------------------------------

    def _reload(self) -> None:
        """Adopt the directory's current generation in place.

        Opens the new generation first, then releases the superseded
        readers and cached engines, so a failed reopen leaves the
        database usable on its old generation.
        """
        instruments = self._instruments
        with self._engine_lock:
            engines = list(self._engines.values())
            self._engines.clear()
        old_shards = self._shards
        fresh = type(self).open(self.path, on_corruption=self.on_corruption)
        self.__dict__.update(fresh.__dict__)
        self._instruments = instruments
        for engine in engines:
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        for shard in old_shards:
            shard.close()
        self._publish_lsm_gauges()

    def add_records(
        self,
        records: Iterable[Sequence],
        auto_compact: AutoCompactPolicy | None = None,
    ) -> int:
        """Ingest new records as one delta shard; returns the new
        generation.

        The delta is a complete checksummed v2 database built under
        ``delta-g<generation>/``; the atomic manifest swap referencing
        it is the last write, so a crash mid-ingest leaves the previous
        generation serving and an orphan directory ``verify`` merely
        notes.  The database reflects the new generation on return.
        The delta's coarse artifact matches the database's backend
        (``signature`` databases grow signature deltas).

        ``auto_compact`` — an :class:`AutoCompactPolicy` — triggers a
        full :meth:`compact` after the ingest commits when its
        thresholds are exceeded; the returned generation then reflects
        the compaction.

        Raises:
            IndexParameterError: if ``records`` is empty.
        """
        records = list(records)
        with self._instruments.span("lsm.append") as span:
            state = append_delta(self.path, records)
            if span is not None:
                span.annotate("records", len(records))
                span.annotate("generation", state.generation)
        self._instruments.count("lsm.records_added", len(records))
        self._reload()
        self._maybe_auto_compact(auto_compact)
        return self.generation

    def delete(
        self,
        targets: Iterable[str | int],
        auto_compact: AutoCompactPolicy | None = None,
    ) -> int:
        """Tombstone records by identifier or logical ordinal; returns
        the new generation.

        A string target deletes *every* live record carrying that
        identifier; an integer target deletes the record at that
        logical ordinal.  Deletion is one atomic manifest swap — no
        shard file is rewritten — and later ordinals shift down,
        exactly as a rebuild without the records would number them.
        ``auto_compact`` triggers a full :meth:`compact` after the
        swap commits when the policy's thresholds are exceeded (a
        fully-tombstoned collection is never auto-compacted — an index
        cannot be empty).

        Raises:
            SearchError: if a target matches nothing (unknown
                identifier or out-of-range ordinal).
        """
        live_count = len(self)
        stored: set[int] = set()
        for target in targets:
            if isinstance(target, str):
                matches = [
                    self._stored_of(ordinal)
                    for ordinal in range(live_count)
                    if self._source.identifier(ordinal) == target
                ]
                if not matches:
                    raise SearchError(
                        f"{self.path}: no live record with identifier "
                        f"{target!r}"
                    )
                stored.update(matches)
            else:
                ordinal = int(target)
                if not 0 <= ordinal < live_count:
                    raise SearchError(
                        f"no sequence with ordinal {ordinal}"
                    )
                stored.add(self._stored_of(ordinal))
        with self._instruments.span("lsm.delete") as span:
            state = tombstone(self.path, sorted(stored))
            if span is not None:
                span.annotate("records", len(stored))
                span.annotate("generation", state.generation)
        self._instruments.count("lsm.records_deleted", len(stored))
        self._reload()
        self._maybe_auto_compact(auto_compact)
        return self.generation

    def _maybe_auto_compact(self, policy: AutoCompactPolicy | None) -> None:
        """Compact if a mutation pushed the LSM past the policy's
        thresholds.

        Runs after the mutation's commit, on the caller's (mutation)
        thread — queries concurrently served by other engines never
        wait on it.  A collection with no live records is left alone
        (compaction would have nothing to build).
        """
        if policy is None or len(self) == 0:
            return
        if not policy.should_compact(
            self.delta_shards, self.tombstone_count, self.stored_sequences
        ):
            return
        self._instruments.count("lsm.auto_compactions")
        self.compact()

    def compact(self, shards: int | None = None, workers: int = 1) -> int:
        """Fold deltas and tombstones back into base shards; returns
        the (possibly unchanged) generation.

        New base shards land in fresh ``shard-g...`` directories and
        the generation is committed by one atomic manifest replace — a
        compaction killed at any point is invisible on reopen.  With no
        tombstones and a single-shard target the index is produced by
        the streaming ``merge_index_files`` path (identical to a fresh
        build); otherwise the survivors are re-planned and rebuilt,
        optionally on ``workers`` processes.  No-op (and no generation
        bump) when there is nothing to compact.

        Raises:
            IndexParameterError: if every record is tombstoned (an
                index cannot be empty) or ``workers`` < 1.
        """
        with self._instruments.span("lsm.compact") as span:
            state = compact_database(self.path, shards=shards, workers=workers)
            if span is not None:
                span.annotate("generation", state.generation)
                span.annotate("base_shards", len(state.base))
        if state.generation != self.generation:
            self._instruments.count("lsm.compactions")
            self._reload()
        return state.generation

    # -- searching -------------------------------------------------------

    def engine(
        self,
        coarse_cutoff: int = 100,
        scheme: ScoringScheme | None = None,
        coarse_scorer: str = "count",
        fine_mode: str = "full",
        both_strands: bool = False,
        with_evalues: bool = False,
        on_corruption: str | None = None,
        resilience: ShardResilience | None = None,
    ):
        """A (cached) engine over this database.

        Single-shard databases yield a
        :class:`~repro.search.engine.PartitionedSearchEngine`; sharded
        databases a :class:`~repro.sharding.ShardedSearchEngine` with
        the same ``search`` / ``search_batch`` surface and globally
        identical results.  A database with tombstones (the live/LSM
        layer) always uses the sharded engine, which filters dead
        candidates before the merge-cut and presents logical ordinals —
        results hit-for-hit identical to a rebuild over the surviving
        records.  ``with_evalues=True`` calibrates Gumbel parameters
        once per scheme and attaches E-values to every hit.
        ``on_corruption`` defaults to the policy the database was
        opened with.  ``resilience`` configures per-shard fault
        tolerance on sharded databases (see
        :class:`~repro.search.resilience.ShardResilience`); a
        single-shard database has no fan-out to degrade, so there it is
        accepted but inert.  At most :data:`ENGINE_CACHE_LIMIT`
        distinct configurations are retained (least recently used
        dropped).  Thread-safe: concurrent callers get the same cached
        engine for the same configuration.

        Raises:
            SearchError: in degraded mode (an unreadable shard index;
                use :meth:`search`, which scans exhaustively).
        """
        if self.degraded:
            raise SearchError(
                f"{self.path}: database is degraded (index unreadable); "
                "use Database.search for exhaustive evaluation or repair "
                "the database"
            )
        policy = on_corruption or self.on_corruption
        scheme = scheme or ScoringScheme()
        with self._engine_lock:
            significance = None
            if with_evalues:
                if self._significance is None or getattr(
                    self, "_significance_scheme", None
                ) != scheme:
                    self._significance = calibrate_gapped(scheme)
                    self._significance_scheme = scheme
                significance = self._significance
            key = (
                coarse_cutoff, scheme, coarse_scorer, fine_mode,
                both_strands, with_evalues, policy, resilience,
            )
            instruments = self._instruments
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                instruments.count("database.engine_cache.hits")
                return engine
            instruments.count("database.engine_cache.misses")
            if len(self._shards) == 1 and not self._tombstones.size:
                shard = self._shards[0]
                engine = PartitionedSearchEngine(
                    shard.index,
                    shard.store,
                    scheme=scheme,
                    coarse_scorer=coarse_scorer,
                    coarse_cutoff=coarse_cutoff,
                    fine_mode=fine_mode,
                    both_strands=both_strands,
                    significance=significance,
                    on_corruption=policy,
                )
            else:
                engine = ShardedSearchEngine(
                    [(shard.index, shard.store) for shard in self._shards],
                    scheme=scheme,
                    coarse_scorer=coarse_scorer,
                    coarse_cutoff=coarse_cutoff,
                    fine_mode=fine_mode,
                    both_strands=both_strands,
                    significance=significance,
                    on_corruption=policy,
                    resilience=resilience,
                    tombstones=self._tombstones.tolist(),
                    dead_bases=self._dead_bases,
                )
            engine.lsm_info = {
                "generation": self.generation,
                "delta_shards": self.delta_shards,
                "tombstones": self.tombstone_count,
            }
            if instruments.enabled:
                engine.set_instruments(instruments)
            self._engines[key] = engine
            if len(self._engines) > self.ENGINE_CACHE_LIMIT:
                self._engines.popitem(last=False)
                instruments.count("database.engine_cache.evictions")
            instruments.set_gauge(
                "database.engine_cache.size", len(self._engines)
            )
            return engine

    @property
    def cached_engines(self) -> int:
        """Engines currently held by the per-database LRU cache."""
        with self._engine_lock:
            return len(self._engines)

    #: Engine options the degraded (exhaustive) path honours; anything
    #: else raises rather than silently running with defaults.
    _DEGRADED_HONOURED = (
        "scheme", "coarse_cutoff", "coarse_scorer", "on_corruption"
    )

    def _search_degraded(
        self,
        query: Sequence | np.ndarray,
        top_k: int,
        engine_kwargs: dict,
    ) -> SearchReport:
        """Answer one query by exhaustively scanning the stores.

        ``scheme`` is honoured (the scan aligns with it);
        ``coarse_cutoff`` is moot (the scan examines every sequence a
        cutoff could ever admit) and ``on_corruption`` already applied
        at open time, so both are accepted.  Any other engine option —
        ``both_strands``, ``fine_mode``, ``with_evalues``, or an
        unknown name — cannot be honoured by the fallback and raises.

        Raises:
            SearchError: for options the exhaustive fallback cannot
                honour.
        """
        from repro.search.exhaustive import ExhaustiveSearcher

        kwargs = dict(engine_kwargs)
        scheme = kwargs.pop("scheme", None) or ScoringScheme()
        kwargs.pop("coarse_cutoff", None)
        # The exhaustive scan has no coarse phase, so any scorer choice
        # is moot — accepted like the cutoff, not an error.
        kwargs.pop("coarse_scorer", None)
        kwargs.pop("on_corruption", None)
        unsupported = []
        if kwargs.pop("fine_mode", "full") != "full":
            unsupported.append("fine_mode")
        if kwargs.pop("both_strands", False):
            unsupported.append("both_strands")
        if kwargs.pop("with_evalues", False):
            unsupported.append("with_evalues")
        unsupported.extend(kwargs)
        if unsupported:
            raise SearchError(
                f"{self.path}: database is degraded and the exhaustive "
                "fallback cannot honour "
                + ", ".join(sorted(unsupported))
                + "; repair the database or drop the option(s)"
            )
        searcher = self._exhaustive.get(scheme)
        if searcher is None:
            searcher = ExhaustiveSearcher(self._source, scheme=scheme)
            self._exhaustive[scheme] = searcher
        report = searcher.search(query, top_k=top_k)
        return replace(report, degraded=True)

    def search(
        self,
        query: Sequence | np.ndarray,
        top_k: int = 10,
        deadline: Deadline | None = None,
        **engine_kwargs,
    ) -> SearchReport:
        """Evaluate one query with the default (or overridden) engine.

        ``deadline`` bounds the query's wall clock (see
        :class:`~repro.search.deadline.Deadline`); an expired deadline
        yields a flagged partial report, never an exception.  The
        degraded (exhaustive-scan) path cannot check deadlines — its
        kernel has no interruption points — so there the deadline is
        accepted but ignored.

        In degraded mode (an unreadable shard index under the
        ``"fallback"`` policy) the query is answered by an exhaustive
        scan of the sequence stores with the caller's scoring scheme
        and the report is marked ``degraded``; engine options the scan
        cannot honour raise :class:`~repro.errors.SearchError` instead
        of being silently dropped.
        """
        if self.degraded:
            return self._search_degraded(query, top_k, engine_kwargs)
        return self.engine(**engine_kwargs).search(
            query, top_k=top_k, deadline=deadline
        )

    def search_batch(
        self,
        queries: list[Sequence],
        top_k: int = 10,
        workers: int | None = None,
        deadline: Deadline | None = None,
        **engine_kwargs,
    ) -> list[SearchReport]:
        """Evaluate a batch of queries, reports in query order.

        ``workers`` > 1 evaluates queries concurrently on the engine's
        thread pool (results identical to the sequential loop).  A
        ``deadline`` is shared by the whole batch (ignored by the
        degraded path, as on :meth:`search`).  In degraded mode the
        batch runs sequentially through the exhaustive fallback with
        the same option rules as :meth:`search`.
        """
        if self.degraded:
            return [
                self._search_degraded(query, top_k, engine_kwargs)
                for query in queries
            ]
        return self.engine(**engine_kwargs).search_batch(
            queries, top_k=top_k, workers=workers, deadline=deadline
        )

    def alignment(
        self,
        query: Sequence | np.ndarray,
        ordinal: int,
        scheme: ScoringScheme | None = None,
    ) -> Alignment:
        """The full local alignment of a query against one answer.

        Raises:
            SearchError: if ``ordinal`` is out of range.
        """
        if not 0 <= ordinal < len(self):
            raise SearchError(f"no sequence with ordinal {ordinal}")
        codes = query.codes if isinstance(query, Sequence) else (
            np.asarray(query, dtype=np.uint8)
        )
        return local_align(
            codes, self._source.codes(ordinal), scheme or ScoringScheme()
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        live = ""
        if self.live is not None:
            live = (
                f" Live: generation {self.generation}, "
                f"{self.delta_shards} delta shard(s), "
                f"{self.tombstone_count} tombstone(s)."
            )
        if self.degraded:
            return (
                f"Database at {self.path}: {len(self)} sequences "
                f"(DEGRADED: index unreadable, exhaustive search only; "
                f"run repair to rebuild the index)." + live
            )
        if len(self._shards) > 1:
            vocabulary = sum(
                shard.index.vocabulary_size for shard in self._shards
            )
            return (
                f"Database at {self.path}: {len(self)} sequences, "
                f"{self.total_bases:,} bases across "
                f"{len(self._shards)} shards; "
                f"{self.coarse_backend} coarse backend, interval length "
                f"{self._shards[0].index.params.interval_length}, "
                f"{vocabulary:,} indexed intervals (summed), "
                f"{self.manifest['index_bytes']:,} index bytes, "
                f"{self.manifest['store_bytes']:,} store bytes "
                f"({self.manifest['coding']} coding)." + live
            )
        index = self._shards[0].index
        return (
            f"Database at {self.path}: {len(self)} sequences, "
            f"{self.total_bases:,} bases; "
            f"{self.coarse_backend} coarse backend, interval length "
            f"{index.params.interval_length}, "
            f"{index.vocabulary_size:,} indexed intervals, "
            f"{self.manifest['index_bytes']:,} index bytes, "
            f"{self.manifest['store_bytes']:,} store bytes "
            f"({self.manifest['coding']} coding)." + live
        )

"""A persistent nucleotide database: index + store + engine in one.

:class:`Database` is the convenience layer a downstream user adopts:
it owns a directory holding the on-disk index and sequence store,
opens them memory-mapped, and hands out ready-made search engines.

    from repro import Database, read_fasta

    Database.create(read_fasta("genbank.fasta"), "genbank.db")
    with Database.open("genbank.db") as db:
        report = db.search(query, top_k=10)
        print(db.alignment(query, report.best().ordinal).pretty())

Durability: every file is written atomically (temp + fsync + rename)
and the manifest — written last — records a CRC32 digest of the index
and store files, so an interrupted build is never mistaken for a valid
database and silent file damage is detectable.  :meth:`open` accepts a
``verify`` mode and an ``on_corruption`` policy; :meth:`verify` audits
a directory without fully opening it and :meth:`repair` rebuilds the
index from a surviving store.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.align.pairwise import Alignment, local_align
from repro.align.scoring import ScoringScheme
from repro.align.statistics import GumbelParameters, calibrate_gapped
from repro.errors import CorruptionError, IndexFormatError, SearchError
from repro.index.atomic import file_crc32, write_text_atomic
from repro.index.builder import IndexParameters, build_index
from repro.index.storage import DiskIndex, write_index
from repro.index.store import SequenceStore, write_store
from repro.search.engine import CORRUPTION_POLICIES, PartitionedSearchEngine
from repro.search.results import SearchReport
from repro.sequences.record import Sequence

_MANIFEST_NAME = "manifest.json"
_INDEX_NAME = "intervals.rpix"
_STORE_NAME = "sequences.rpsq"
_MANIFEST_VERSION = 2
_SUPPORTED_MANIFEST_VERSIONS = (1, 2)

#: Verification modes accepted by :meth:`Database.open`.
VERIFY_MODES = ("lazy", "full")

_LOG = logging.getLogger(__name__)


@dataclass
class VerificationReport:
    """Outcome of a database integrity audit.

    Attributes:
        path: the audited directory.
        issues: detected damage — anything here means the database is
            not fully intact.
        notes: non-fatal observations (e.g. format v1 files that carry
            no integrity data).
    """

    path: Path
    issues: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        state = "intact" if self.ok else f"{len(self.issues)} problem(s)"
        return f"{self.path}: {state}"


def _write_manifest(directory: Path, manifest: dict) -> None:
    write_text_atomic(
        directory / _MANIFEST_NAME, json.dumps(manifest, indent=2)
    )


def _make_manifest(
    directory: Path,
    records_count: int,
    bases: int,
    coding: str,
    params: IndexParameters,
    index_bytes: int,
    store_bytes: int,
) -> dict:
    return {
        "version": _MANIFEST_VERSION,
        "sequences": records_count,
        "bases": bases,
        "coding": coding,
        "params": params.describe(),
        "index_bytes": index_bytes,
        "store_bytes": store_bytes,
        "checksums": {
            _INDEX_NAME: f"{file_crc32(directory / _INDEX_NAME):08x}",
            _STORE_NAME: f"{file_crc32(directory / _STORE_NAME):08x}",
        },
    }


class Database:
    """A directory-backed searchable nucleotide collection.

    Create with :meth:`create`, open with :meth:`open` (also a context
    manager).  The default engine settings can be overridden per call.

    A database opened with ``on_corruption="fallback"`` whose index is
    unreadable runs *degraded*: :attr:`index` is ``None`` and every
    query is answered by an exhaustive scan of the sequence store.
    """

    def __init__(
        self,
        path: Path,
        index: DiskIndex | None,
        store: SequenceStore,
        manifest: dict,
        on_corruption: str = "raise",
    ) -> None:
        self.path = path
        self.index = index
        self.store = store
        self.manifest = manifest
        self.on_corruption = on_corruption
        self._engines: dict[tuple, PartitionedSearchEngine] = {}
        self._exhaustive = None
        self._significance: GumbelParameters | None = None

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        sequences: Iterable[Sequence],
        path: str | Path,
        params: IndexParameters | None = None,
        coding: str = "direct",
    ) -> "Database":
        """Build and persist a database directory, then open it.

        All files are written atomically and the manifest lands last,
        so an interrupted build leaves a directory :meth:`open` will
        reject rather than a silently half-written database.

        Args:
            sequences: the collection (any iterable of records).
            path: directory to create (must not already contain a
                database).
            params: index shape (defaults to overlapping length-8
                intervals).
            coding: sequence-store payload coding, "direct" or "raw".

        Raises:
            IndexFormatError: if the directory already holds a database.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        manifest_path = directory / _MANIFEST_NAME
        if manifest_path.exists():
            raise IndexFormatError(f"{directory} already holds a database")
        records = list(sequences)
        params = params or IndexParameters()
        index = build_index(records, params)
        index_bytes = write_index(index, directory / _INDEX_NAME)
        store_bytes = write_store(records, directory / _STORE_NAME, coding)
        manifest = _make_manifest(
            directory,
            len(records),
            int(sum(len(record) for record in records)),
            coding,
            params,
            index_bytes,
            store_bytes,
        )
        _write_manifest(directory, manifest)
        return cls.open(directory)

    @classmethod
    def open(
        cls,
        path: str | Path,
        verify: str = "lazy",
        on_corruption: str = "raise",
    ) -> "Database":
        """Open an existing database directory.

        Args:
            path: the database directory.
            verify: ``"lazy"`` checks headers and tables eagerly and
                each posting list / record lazily on first access (the
                default); ``"full"`` additionally recomputes the
                manifest's whole-file digests and every checksum before
                returning.
            on_corruption: default policy for engines created by this
                database (see :class:`PartitionedSearchEngine`).  With
                ``"fallback"``, an unreadable *index* degrades the
                database to exhaustive scanning instead of failing.

        Raises:
            IndexFormatError: if the directory is not a database or its
                files are inconsistent.
            CorruptionError: if an integrity check fails (and the
                policy does not degrade).
        """
        if verify not in VERIFY_MODES:
            raise IndexFormatError(
                f"unknown verify mode {verify!r}; expected one of "
                f"{VERIFY_MODES}"
            )
        if on_corruption not in CORRUPTION_POLICIES:
            raise SearchError(
                f"unknown on_corruption {on_corruption!r}; expected one of "
                f"{CORRUPTION_POLICIES}"
            )
        directory = Path(path)
        manifest = cls._load_manifest(directory)
        index: DiskIndex | None = None
        store: SequenceStore | None = None
        try:
            try:
                index = DiskIndex(directory / _INDEX_NAME)
            except IndexFormatError as exc:
                if on_corruption != "fallback":
                    raise
                _LOG.warning(
                    "%s: index unreadable (%s); opening degraded "
                    "(exhaustive search over the store)",
                    directory,
                    exc,
                )
            store = SequenceStore(directory / _STORE_NAME)
            if (
                index is not None
                and index.collection.num_sequences != len(store)
            ):
                raise IndexFormatError(
                    f"{directory}: index and store disagree about the "
                    "collection size"
                )
            if verify == "full":
                report = cls._verify_open_files(directory, manifest, index, store)
                if not report.ok:
                    raise CorruptionError(
                        f"{directory}: full verification failed: "
                        + "; ".join(report.issues)
                    )
            return cls(directory, index, store, manifest, on_corruption)
        except Exception:
            # Never leak mmaps/handles when a later step fails.
            if index is not None:
                index.close()
            if store is not None:
                store.close()
            raise

    @staticmethod
    def _load_manifest(directory: Path) -> dict:
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.exists():
            raise IndexFormatError(f"{directory} holds no database manifest")
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise IndexFormatError(f"{directory}: bad manifest") from exc
        if manifest.get("version") not in _SUPPORTED_MANIFEST_VERSIONS:
            raise IndexFormatError(
                f"{directory}: unsupported database version "
                f"{manifest.get('version')}"
            )
        return manifest

    @staticmethod
    def _verify_open_files(
        directory: Path,
        manifest: dict,
        index: DiskIndex | None,
        store: SequenceStore,
    ) -> VerificationReport:
        """Digest + checksum audit of already-opened files."""
        report = VerificationReport(directory)
        checksums = manifest.get("checksums")
        if checksums is None:
            report.notes.append(
                f"{directory}: manifest records no file digests "
                "(database version 1)"
            )
        else:
            for name in (_INDEX_NAME, _STORE_NAME):
                recorded = checksums.get(name)
                if recorded is None:
                    report.issues.append(
                        f"{directory}: manifest has no digest for {name}"
                    )
                    continue
                actual = f"{file_crc32(directory / name):08x}"
                if actual != recorded:
                    report.issues.append(
                        f"{directory / name}: file digest {actual} does not "
                        f"match manifest {recorded}"
                    )
        for reader in (index, store):
            if reader is None:
                continue
            problems = reader.verify()
            for problem in problems:
                if "no integrity data" in problem:
                    report.notes.append(problem)
                else:
                    report.issues.append(problem)
        return report

    @classmethod
    def verify(cls, path: str | Path) -> VerificationReport:
        """Audit a database directory without requiring it to open.

        Checks the manifest, the whole-file digests, and every
        checksum in both files; problems are collected rather than
        raised, so a damaged database yields a complete report.
        """
        directory = Path(path)
        report = VerificationReport(directory)
        try:
            manifest = cls._load_manifest(directory)
        except IndexFormatError as exc:
            report.issues.append(str(exc))
            return report
        index: DiskIndex | None = None
        store: SequenceStore | None = None
        try:
            try:
                index = DiskIndex(directory / _INDEX_NAME)
            except (IndexFormatError, OSError) as exc:
                report.issues.append(f"index: {exc}")
            try:
                store = SequenceStore(directory / _STORE_NAME)
            except (IndexFormatError, OSError) as exc:
                report.issues.append(f"store: {exc}")
            if (
                index is not None
                and store is not None
                and index.collection.num_sequences != len(store)
            ):
                report.issues.append(
                    f"{directory}: index and store disagree about the "
                    "collection size"
                )
            inner = cls._verify_open_files(directory, manifest, index, store) \
                if store is not None else None
            if inner is not None:
                report.issues.extend(inner.issues)
                report.notes.extend(inner.notes)
        finally:
            if index is not None:
                index.close()
            if store is not None:
                store.close()
        return report

    @classmethod
    def repair(
        cls,
        path: str | Path,
        params: IndexParameters | None = None,
    ) -> "Database":
        """Rebuild the index (and manifest) from a surviving store.

        The sequence store is fully verified first — it is the source
        of truth, so it must be intact.  The index is then rebuilt from
        the stored records, written atomically, and a fresh manifest
        with up-to-date digests replaces the old one.

        Args:
            path: the database directory.
            params: index shape; defaults to the manifest's recorded
                parameters, then to library defaults.

        Raises:
            CorruptionError: if the store itself is damaged (nothing to
                rebuild from).
            IndexFormatError: if the directory holds no store at all.

        Returns:
            The repaired database, opened.
        """
        directory = Path(path)
        store_path = directory / _STORE_NAME
        if not store_path.exists():
            raise IndexFormatError(
                f"{directory}: no sequence store to rebuild from"
            )
        if params is None:
            try:
                manifest = cls._load_manifest(directory)
                params = IndexParameters.from_description(manifest["params"])
            except (IndexFormatError, KeyError, TypeError, ValueError):
                params = IndexParameters()
        with SequenceStore(store_path) as store:
            problems = [
                problem
                for problem in store.verify()
                if "no integrity data" not in problem
            ]
            if problems:
                raise CorruptionError(
                    f"{directory}: store is damaged, cannot repair: "
                    + "; ".join(problems)
                )
            records = [store.record(ordinal) for ordinal in range(len(store))]
            coding = store.coding
        index = build_index(records, params)
        index_bytes = write_index(index, directory / _INDEX_NAME)
        store_bytes = store_path.stat().st_size
        manifest = _make_manifest(
            directory,
            len(records),
            int(sum(len(record) for record in records)),
            coding,
            params,
            index_bytes,
            store_bytes,
        )
        _write_manifest(directory, manifest)
        return cls.open(directory)

    def close(self) -> None:
        """Release the mapped files."""
        if self.index is not None:
            self.index.close()
        self.store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- collection access ----------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when the index was unreadable and search is exhaustive."""
        return self.index is None

    def __len__(self) -> int:
        return len(self.store)

    @property
    def total_bases(self) -> int:
        if self.index is not None:
            return self.index.collection.total_length
        return int(self.manifest.get("bases", 0))

    def record(self, ordinal: int) -> Sequence:
        """Fetch one sequence record by ordinal."""
        return self.store.record(ordinal)

    def records(self) -> Iterator[Sequence]:
        """Iterate every record in ordinal order."""
        for ordinal in range(len(self)):
            yield self.store.record(ordinal)

    # -- searching -------------------------------------------------------

    def engine(
        self,
        coarse_cutoff: int = 100,
        scheme: ScoringScheme | None = None,
        fine_mode: str = "full",
        both_strands: bool = False,
        with_evalues: bool = False,
        on_corruption: str | None = None,
    ) -> PartitionedSearchEngine:
        """A (cached) engine over this database.

        ``with_evalues=True`` calibrates Gumbel parameters once per
        scheme and attaches E-values to every hit.  ``on_corruption``
        defaults to the policy the database was opened with.

        Raises:
            SearchError: in degraded mode (no index; use
                :meth:`search`, which scans exhaustively).
        """
        if self.index is None:
            raise SearchError(
                f"{self.path}: database is degraded (index unreadable); "
                "use Database.search for exhaustive evaluation or repair "
                "the database"
            )
        policy = on_corruption or self.on_corruption
        scheme = scheme or ScoringScheme()
        significance = None
        if with_evalues:
            if self._significance is None or getattr(
                self, "_significance_scheme", None
            ) != scheme:
                self._significance = calibrate_gapped(scheme)
                self._significance_scheme = scheme
            significance = self._significance
        key = (
            coarse_cutoff, scheme, fine_mode, both_strands, with_evalues,
            policy,
        )
        engine = self._engines.get(key)
        if engine is None:
            engine = PartitionedSearchEngine(
                self.index,
                self.store,
                scheme=scheme,
                coarse_cutoff=coarse_cutoff,
                fine_mode=fine_mode,
                both_strands=both_strands,
                significance=significance,
                on_corruption=policy,
            )
            self._engines[key] = engine
        return engine

    def search(
        self, query: Sequence | np.ndarray, top_k: int = 10, **engine_kwargs
    ) -> SearchReport:
        """Evaluate one query with the default (or overridden) engine.

        In degraded mode (unreadable index under the ``"fallback"``
        policy) the query is answered by an exhaustive scan of the
        sequence store and the report is marked ``degraded``.
        """
        if self.index is None:
            from dataclasses import replace

            from repro.search.exhaustive import ExhaustiveSearcher

            if self._exhaustive is None:
                self._exhaustive = ExhaustiveSearcher(self.store)
            report = self._exhaustive.search(query, top_k=top_k)
            return replace(report, degraded=True)
        return self.engine(**engine_kwargs).search(query, top_k=top_k)

    def alignment(
        self,
        query: Sequence | np.ndarray,
        ordinal: int,
        scheme: ScoringScheme | None = None,
    ) -> Alignment:
        """The full local alignment of a query against one answer.

        Raises:
            SearchError: if ``ordinal`` is out of range.
        """
        if not 0 <= ordinal < len(self):
            raise SearchError(f"no sequence with ordinal {ordinal}")
        codes = query.codes if isinstance(query, Sequence) else (
            np.asarray(query, dtype=np.uint8)
        )
        return local_align(
            codes, self.store.codes(ordinal), scheme or ScoringScheme()
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        if self.index is None:
            return (
                f"Database at {self.path}: {len(self)} sequences "
                f"(DEGRADED: index unreadable, exhaustive search only; "
                f"run repair to rebuild the index)."
            )
        return (
            f"Database at {self.path}: {len(self)} sequences, "
            f"{self.total_bases:,} bases; interval length "
            f"{self.index.params.interval_length}, "
            f"{self.index.vocabulary_size:,} indexed intervals, "
            f"{self.manifest['index_bytes']:,} index bytes, "
            f"{self.manifest['store_bytes']:,} store bytes "
            f"({self.manifest['coding']} coding)."
        )

"""A persistent nucleotide database: index + store + engine in one.

:class:`Database` is the convenience layer a downstream user adopts:
it owns a directory holding the on-disk index and sequence store,
opens them memory-mapped, and hands out ready-made search engines.

    from repro import Database, read_fasta

    Database.create(read_fasta("genbank.fasta"), "genbank.db")
    with Database.open("genbank.db") as db:
        report = db.search(query, top_k=10)
        print(db.alignment(query, report.best().ordinal).pretty())
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.align.pairwise import Alignment, local_align
from repro.align.scoring import ScoringScheme
from repro.align.statistics import GumbelParameters, calibrate_gapped
from repro.errors import IndexFormatError, SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.storage import DiskIndex, write_index
from repro.index.store import SequenceStore, write_store
from repro.search.engine import PartitionedSearchEngine
from repro.search.results import SearchReport
from repro.sequences.record import Sequence

_MANIFEST_NAME = "manifest.json"
_INDEX_NAME = "intervals.rpix"
_STORE_NAME = "sequences.rpsq"
_MANIFEST_VERSION = 1


class Database:
    """A directory-backed searchable nucleotide collection.

    Create with :meth:`create`, open with :meth:`open` (also a context
    manager).  The default engine settings can be overridden per call.
    """

    def __init__(
        self,
        path: Path,
        index: DiskIndex,
        store: SequenceStore,
        manifest: dict,
    ) -> None:
        self.path = path
        self.index = index
        self.store = store
        self.manifest = manifest
        self._engines: dict[tuple, PartitionedSearchEngine] = {}
        self._significance: GumbelParameters | None = None

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        sequences: Iterable[Sequence],
        path: str | Path,
        params: IndexParameters | None = None,
        coding: str = "direct",
    ) -> "Database":
        """Build and persist a database directory, then open it.

        Args:
            sequences: the collection (any iterable of records).
            path: directory to create (must not already contain a
                database).
            params: index shape (defaults to overlapping length-8
                intervals).
            coding: sequence-store payload coding, "direct" or "raw".

        Raises:
            IndexFormatError: if the directory already holds a database.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        manifest_path = directory / _MANIFEST_NAME
        if manifest_path.exists():
            raise IndexFormatError(f"{directory} already holds a database")
        records = list(sequences)
        params = params or IndexParameters()
        index = build_index(records, params)
        index_bytes = write_index(index, directory / _INDEX_NAME)
        store_bytes = write_store(records, directory / _STORE_NAME, coding)
        manifest = {
            "version": _MANIFEST_VERSION,
            "sequences": len(records),
            "bases": int(sum(len(record) for record in records)),
            "coding": coding,
            "params": params.describe(),
            "index_bytes": index_bytes,
            "store_bytes": store_bytes,
        }
        manifest_path.write_text(json.dumps(manifest, indent=2))
        return cls.open(directory)

    @classmethod
    def open(cls, path: str | Path) -> "Database":
        """Open an existing database directory.

        Raises:
            IndexFormatError: if the directory is not a database or its
                files are inconsistent.
        """
        directory = Path(path)
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.exists():
            raise IndexFormatError(f"{directory} holds no database manifest")
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise IndexFormatError(f"{directory}: bad manifest") from exc
        if manifest.get("version") != _MANIFEST_VERSION:
            raise IndexFormatError(
                f"{directory}: unsupported database version "
                f"{manifest.get('version')}"
            )
        index = DiskIndex(directory / _INDEX_NAME)
        try:
            store = SequenceStore(directory / _STORE_NAME)
        except Exception:
            index.close()
            raise
        if index.collection.num_sequences != len(store):
            index.close()
            store.close()
            raise IndexFormatError(
                f"{directory}: index and store disagree about the "
                "collection size"
            )
        return cls(directory, index, store, manifest)

    def close(self) -> None:
        """Release the mapped files."""
        self.index.close()
        self.store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- collection access ----------------------------------------------

    def __len__(self) -> int:
        return len(self.store)

    @property
    def total_bases(self) -> int:
        return self.index.collection.total_length

    def record(self, ordinal: int) -> Sequence:
        """Fetch one sequence record by ordinal."""
        return self.store.record(ordinal)

    def records(self) -> Iterator[Sequence]:
        """Iterate every record in ordinal order."""
        for ordinal in range(len(self)):
            yield self.store.record(ordinal)

    # -- searching -------------------------------------------------------

    def engine(
        self,
        coarse_cutoff: int = 100,
        scheme: ScoringScheme | None = None,
        fine_mode: str = "full",
        both_strands: bool = False,
        with_evalues: bool = False,
    ) -> PartitionedSearchEngine:
        """A (cached) engine over this database.

        ``with_evalues=True`` calibrates Gumbel parameters once per
        scheme and attaches E-values to every hit.
        """
        scheme = scheme or ScoringScheme()
        significance = None
        if with_evalues:
            if self._significance is None or getattr(
                self, "_significance_scheme", None
            ) != scheme:
                self._significance = calibrate_gapped(scheme)
                self._significance_scheme = scheme
            significance = self._significance
        key = (coarse_cutoff, scheme, fine_mode, both_strands, with_evalues)
        engine = self._engines.get(key)
        if engine is None:
            engine = PartitionedSearchEngine(
                self.index,
                self.store,
                scheme=scheme,
                coarse_cutoff=coarse_cutoff,
                fine_mode=fine_mode,
                both_strands=both_strands,
                significance=significance,
            )
            self._engines[key] = engine
        return engine

    def search(
        self, query: Sequence | np.ndarray, top_k: int = 10, **engine_kwargs
    ) -> SearchReport:
        """Evaluate one query with the default (or overridden) engine."""
        return self.engine(**engine_kwargs).search(query, top_k=top_k)

    def alignment(
        self,
        query: Sequence | np.ndarray,
        ordinal: int,
        scheme: ScoringScheme | None = None,
    ) -> Alignment:
        """The full local alignment of a query against one answer.

        Raises:
            SearchError: if ``ordinal`` is out of range.
        """
        if not 0 <= ordinal < len(self):
            raise SearchError(f"no sequence with ordinal {ordinal}")
        codes = query.codes if isinstance(query, Sequence) else (
            np.asarray(query, dtype=np.uint8)
        )
        return local_align(
            codes, self.store.codes(ordinal), scheme or ScoringScheme()
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"Database at {self.path}: {len(self)} sequences, "
            f"{self.total_bases:,} bases; interval length "
            f"{self.index.params.interval_length}, "
            f"{self.index.vocabulary_size:,} indexed intervals, "
            f"{self.manifest['index_bytes']:,} index bytes, "
            f"{self.manifest['store_bytes']:,} store bytes "
            f"({self.manifest['coding']} coding)."
        )

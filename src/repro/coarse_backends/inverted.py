"""The inverted-index coarse backend (the default).

A thin adapter: building, opening, and ranking delegate verbatim to
the pre-backend code paths (:func:`~repro.index.builder.build_index`,
:class:`~repro.index.storage.DiskIndex`,
:class:`~repro.search.coarse.CoarseRanker`), so a database built and
searched through this backend is hit-for-hit — and on disk
byte-for-byte — identical to one built before the backend seam
existed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence as TypingSequence

from repro.coarse_backends.base import ARTIFACT_NAMES, CoarseBackend
from repro.errors import IndexParameterError
from repro.index.builder import IndexParameters, build_index
from repro.index.storage import DiskIndex, write_index
from repro.search.coarse import CoarseRanker
from repro.sequences.record import Sequence


class InvertedBackend(CoarseBackend):
    name = "inverted"
    artifact = ARTIFACT_NAMES["inverted"]

    def normalise_params(self, params: dict | None) -> dict:
        if params:
            raise IndexParameterError(
                "the inverted backend takes no backend parameters, got "
                f"{sorted(params)}"
            )
        return {}

    def build_artifact(
        self,
        directory: Path,
        records: TypingSequence[Sequence],
        params: IndexParameters,
        backend_params: dict | None = None,
    ) -> int:
        self.normalise_params(backend_params)
        index = build_index(records, params)
        return write_index(index, Path(directory) / self.artifact)

    def open_artifact(self, directory: Path) -> DiskIndex:
        return DiskIndex(Path(directory) / self.artifact)

    def make_ranker(
        self, index, scorer="count", on_corruption: str = "raise"
    ) -> CoarseRanker:
        # The corruption policy is applied by the engine (it wraps the
        # reader in a QuarantiningIndexReader under "skip"), exactly as
        # before the backend seam existed.
        return CoarseRanker(index, scorer)

"""Pluggable coarse-phase backends.

The engines, the build pipeline, and the manifest layer all talk to
the coarse phase through :class:`~repro.coarse_backends.base.CoarseBackend`;
the concrete technologies live here:

``inverted``
    The paper's compressed inverted interval index — the default, and
    hit-for-hit identical to the pre-backend engine.

``signature``
    A COBS-style bit-sliced signature index: one Bloom-filter row per
    document, blocked into docs-per-block bit matrices, AND-ed query
    slices, a tunable false-positive rate traded for a much smaller
    index.

Backends are resolved lazily so importing the manifest layer never
drags in numpy-heavy implementations it does not need.
"""

from __future__ import annotations

from repro.coarse_backends.base import (
    ARTIFACT_NAMES,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    CoarseBackend,
    artifact_name,
    coarse_from_manifest,
    coarse_section,
)
from repro.errors import IndexFormatError

_INSTANCES: dict[str, CoarseBackend] = {}


def get_backend(name: str) -> CoarseBackend:
    """The (shared, stateless) backend instance registered as ``name``.

    Raises:
        IndexFormatError: if the name is unknown.
    """
    backend = _INSTANCES.get(name)
    if backend is not None:
        return backend
    if name == "inverted":
        from repro.coarse_backends.inverted import InvertedBackend

        backend = InvertedBackend()
    elif name == "signature":
        from repro.coarse_backends.signature import SignatureBackend

        backend = SignatureBackend()
    else:
        raise IndexFormatError(
            f"unknown coarse backend {name!r}; known: {sorted(BACKEND_NAMES)}"
        )
    _INSTANCES[name] = backend
    return backend


__all__ = [
    "ARTIFACT_NAMES",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "CoarseBackend",
    "artifact_name",
    "coarse_from_manifest",
    "coarse_section",
    "get_backend",
]

"""The coarse-phase backend contract.

A *coarse backend* owns one candidate-ranking technology end to end:
it builds a per-shard on-disk artefact at database-build time, opens
that artefact as an index-like reader, and produces the ranker the
engines call at query time.  Every shard directory carries exactly one
coarse artefact (named by the backend) next to its sequence store, and
the manifest records which backend built it in a ``"coarse"`` section::

    "coarse": {"backend": "signature",
               "params": {"false_positive_rate": 0.3, ...}}

A manifest without the section is an ``inverted`` database — every
pre-backend database opens unchanged.

The reader a backend opens must duck-type the slice of the
:class:`~repro.index.builder.IndexReader` surface the engines touch:
``params`` / ``collection`` / ``vocabulary_size`` / ``verify()`` /
``close()`` / ``set_instruments()`` / ``enable_decode_cache()``, plus
a ``coarse_backend`` class attribute naming the backend so the engines
can dispatch without consulting the manifest again.  The ranker must
replicate the :class:`~repro.search.coarse.CoarseRanker` contract:
``rank(query_codes, cutoff, deadline)`` returning
:class:`~repro.search.results.CoarseCandidate` rows ordered by
(score desc, ordinal asc), cooperating with bounded deadlines and the
engine's corruption policy.

This module is import-light on purpose: the manifest layer pulls the
artefact-name mapping from here without loading any backend
implementation (those are resolved lazily by
:func:`repro.coarse_backends.get_backend`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Sequence as TypingSequence

from repro.errors import IndexFormatError

#: The backend a manifest without a ``"coarse"`` section implies.
DEFAULT_BACKEND = "inverted"

#: Every registered backend and the shard-directory artefact it owns.
ARTIFACT_NAMES = {
    "inverted": "intervals.rpix",
    "signature": "signatures.rpsg",
}

BACKEND_NAMES = tuple(ARTIFACT_NAMES)


def artifact_name(backend: str) -> str:
    """The coarse artefact's file name inside a shard directory.

    Raises:
        IndexFormatError: if the backend name is unknown.
    """
    try:
        return ARTIFACT_NAMES[backend]
    except KeyError:
        raise IndexFormatError(
            f"unknown coarse backend {backend!r}; known: "
            f"{sorted(ARTIFACT_NAMES)}"
        ) from None


def coarse_from_manifest(manifest: dict) -> dict:
    """The normalised ``coarse`` section a manifest records.

    A manifest that predates pluggable backends has no section and
    means the inverted default.

    Raises:
        IndexFormatError: if the section is malformed or names an
            unknown backend.
    """
    section = manifest.get("coarse")
    if section is None:
        return {"backend": DEFAULT_BACKEND, "params": {}}
    try:
        backend = str(section["backend"])
        params = dict(section.get("params") or {})
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexFormatError(f"malformed coarse section: {exc}") from exc
    artifact_name(backend)  # validates the name
    return {"backend": backend, "params": params}


def coarse_section(
    backend: str = DEFAULT_BACKEND, params: dict | None = None
) -> dict:
    """A validated, fully-defaulted ``coarse`` manifest section.

    This is the one entry point front ends (``Database.create``, the
    CLI) use to turn user-supplied knobs into the canonical section
    every build/open/repair path then passes around verbatim.

    Raises:
        IndexFormatError: if the backend name is unknown.
        IndexParameterError: if a backend parameter is out of range.
    """
    from repro.coarse_backends import get_backend

    resolved = get_backend(backend)
    return {
        "backend": resolved.name,
        "params": resolved.normalise_params(params),
    }


class CoarseBackend(ABC):
    """One coarse-ranking technology: build, open, rank.

    Attributes:
        name: the registered backend name the manifest records.
        artifact: the artefact file name inside a shard directory.
    """

    name: str
    artifact: str

    @abstractmethod
    def normalise_params(self, params: dict | None) -> dict:
        """Validated parameters with defaults applied.

        Raises:
            IndexParameterError: if a parameter is unknown or out of
                range.
        """

    @abstractmethod
    def build_artifact(
        self,
        directory: Path,
        records: TypingSequence,
        params,
        backend_params: dict | None = None,
    ) -> int:
        """Build the shard's coarse artefact; returns bytes written.

        ``params`` is the shared
        :class:`~repro.index.builder.IndexParameters` (interval length
        and stride shape every backend's evidence); ``backend_params``
        are this backend's own knobs, already normalised.
        """

    @abstractmethod
    def open_artifact(self, directory: Path):
        """Open the shard's coarse artefact as an index-like reader.

        Raises:
            IndexFormatError: if the artefact is missing or not this
                backend's format.
            CorruptionError: if an eager integrity check fails.
        """

    @abstractmethod
    def make_ranker(
        self, index, scorer="count", on_corruption: str = "raise"
    ):
        """The query-time ranker over an opened reader.

        Raises:
            SearchError: if the scorer (or another engine option) is
                not supported by this backend.
        """

"""COBS-style bit-sliced signature coarse backend.

Every document gets a Bloom filter over its distinct k-mers; documents
are grouped into blocks of ``docs_per_block`` and each block's filters
stand side by side as a bit matrix of shape ``(rows, docs)`` — one row
per Bloom bit position, one column per document — packed with
:func:`numpy.packbits` along the document axis.  A query looks up each
of its distinct k-mers by AND-ing the k-mer's ``hashes`` rows into a
membership bitmask and accumulating per-document containment counts,
so coarse scoring is a handful of cache-friendly row fetches per
k-mer instead of a posting-list decode.

Each block sizes its own matrix from the largest document it holds::

    rows = ceil(-n_max * hashes / ln(1 - fpr ** (1 / hashes)))

(the classic Bloom sizing, inverted for the bit count that yields the
target false-positive rate ``fpr`` at ``n_max`` insertions), so sparse
blocks stay small and a repetitive collection — many near-duplicate
documents sharing their k-mer sets — costs little more than one
document's filter per block.

On-disk format (``signatures.rpsg``, v1)::

    magic "RPSG" | version u16 | header-length u32 | header CRC32
    header JSON
    packed block matrices, concatenated

The header JSON carries the index parameters, the backend parameters,
the collection's identifiers/lengths, and a per-block table (document
base, count, rows, payload offset/length, CRC32).  The header checksum
is verified eagerly at open; each block's payload checksum is verified
lazily the first time the block is scanned.  All writes go through
:func:`repro.index.atomic.atomic_write`.
"""

from __future__ import annotations

import json
import logging
import math
import mmap
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence as TypingSequence

import numpy as np

from repro.coarse_backends.base import ARTIFACT_NAMES, CoarseBackend
from repro.errors import (
    CorruptionError,
    IndexFormatError,
    IndexParameterError,
    SearchError,
)
from repro.index.atomic import atomic_write
from repro.index.builder import CollectionInfo, IndexParameters
from repro.index.intervals import IntervalExtractor
from repro.instrumentation.instruments import NULL_INSTRUMENTS, coalesce
from repro.search.deadline import Deadline, ensure_deadline
from repro.search.results import CoarseCandidate
from repro.sequences.record import Sequence

_LOG = logging.getLogger(__name__)

_MAGIC = b"RPSG"
_VERSION = 1
_PREFIX = struct.Struct("<4sHI")
_CRC = struct.Struct("<I")

#: Default backend parameters (see :meth:`SignatureBackend.normalise_params`).
DEFAULT_SIGNATURE_PARAMS = {
    "false_positive_rate": 0.3,
    "hashes": 1,
    "docs_per_block": 64,
}


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finaliser, vectorised over uint64 (wrapping)."""
    values = values + np.uint64(0x9E3779B97F4A7C15)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(
        0xBF58476D1CE4E5B9
    )
    values = (values ^ (values >> np.uint64(27))) * np.uint64(
        0x94D049BB133111EB
    )
    return values ^ (values >> np.uint64(31))


def signature_rows(
    interval_ids: np.ndarray, hashes: int, rows: int
) -> np.ndarray:
    """Bloom row indices for each interval id: shape ``(ids, hashes)``.

    Double hashing (Kirsch & Mitzenmacher): two splitmix64 mixes give
    ``h1`` and an odd ``h2``, and hash ``i`` probes row
    ``(h1 + i * h2) mod rows`` — ``hashes`` row indices per k-mer from
    two mixes, identical at build and query time by construction.
    """
    ids = np.ascontiguousarray(interval_ids, dtype=np.uint64)
    h1 = _splitmix64(ids)
    h2 = _splitmix64(ids ^ np.uint64(0xA5A5_A5A5_A5A5_A5A5)) | np.uint64(1)
    steps = np.arange(hashes, dtype=np.uint64)
    probes = h1[:, None] + steps[None, :] * h2[:, None]
    return (probes % np.uint64(rows)).astype(np.int64)


def slice_rows_for(n_max: int, hashes: int, false_positive_rate: float) -> int:
    """Bloom bit-count sizing a block's matrix for its largest document."""
    if n_max <= 0:
        return 8
    rate = false_positive_rate ** (1.0 / hashes)
    rows = math.ceil(-(n_max * hashes) / math.log(1.0 - rate))
    return max(8, int(rows))


def write_signature(
    records: TypingSequence[Sequence],
    path: str | Path,
    params: IndexParameters | None = None,
    backend_params: dict | None = None,
) -> int:
    """Build and atomically write a signature file; returns bytes written.

    Documents are signed over their *distinct* k-mers (extracted with
    the index parameters' interval length and stride), so the filter
    answers containment, not frequency — the coarse score is the count
    of query k-mers a document (probably) contains.
    """
    params = params or IndexParameters()
    sig = dict(DEFAULT_SIGNATURE_PARAMS)
    sig.update(backend_params or {})
    hashes = int(sig["hashes"])
    docs_per_block = int(sig["docs_per_block"])
    fpr = float(sig["false_positive_rate"])
    extractor = IntervalExtractor(params.interval_length, params.stride)
    collection = CollectionInfo.from_sequences(records)

    distinct = [extractor.extract_distinct(record.codes) for record in records]
    blocks: list[dict] = []
    payloads: list[bytes] = []
    offset = 0
    for start in range(0, len(records), docs_per_block):
        chunk = distinct[start : start + docs_per_block]
        n_max = max((ids.shape[0] for ids in chunk), default=0)
        rows = slice_rows_for(n_max, hashes, fpr)
        matrix = np.zeros((rows, len(chunk)), dtype=bool)
        for column, ids in enumerate(chunk):
            if ids.shape[0]:
                matrix[signature_rows(ids, hashes, rows).ravel(), column] = True
        payload = np.packbits(matrix, axis=1).tobytes()
        blocks.append(
            {
                "base": start,
                "docs": len(chunk),
                "rows": rows,
                "offset": offset,
                "length": len(payload),
                "crc": zlib.crc32(payload),
            }
        )
        payloads.append(payload)
        offset += len(payload)

    header = json.dumps(
        {
            "params": params.describe(),
            "signature": {
                "false_positive_rate": fpr,
                "hashes": hashes,
                "docs_per_block": docs_per_block,
            },
            "identifiers": list(collection.identifiers),
            "lengths": collection.lengths.tolist(),
            "blocks": blocks,
        }
    ).encode("utf-8")
    with atomic_write(path) as handle:
        written = handle.write(_PREFIX.pack(_MAGIC, _VERSION, len(header)))
        written += handle.write(_CRC.pack(zlib.crc32(header)))
        written += handle.write(header)
        for payload in payloads:
            written += handle.write(payload)
    return written


@dataclass(frozen=True)
class _Block:
    base: int
    docs: int
    rows: int
    offset: int
    length: int
    crc: int


class SignatureIndex:
    """A read-only signature file, memory-mapped.

    Duck-types the reader surface the engines touch (``params`` /
    ``collection`` / ``vocabulary_size`` / ``verify`` / instruments /
    ``close``); it is *not* an :class:`~repro.index.builder.IndexReader`
    — there are no posting lists to look up.

    Raises:
        IndexFormatError: if the file is not a valid signature file.
        CorruptionError: if the header checksum fails.
    """

    coarse_backend = "signature"

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = open(self._path, "rb")
        try:
            self._map = mmap.mmap(
                self._handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as exc:
            self._handle.close()
            raise IndexFormatError(
                f"{self._path}: empty signature file"
            ) from exc
        try:
            self._parse()
        except Exception:
            self.close()
            raise

    def _parse(self) -> None:
        view = self._map
        if len(view) < _PREFIX.size + _CRC.size:
            raise IndexFormatError(f"{self._path}: truncated signature file")
        magic, version, header_length = _PREFIX.unpack_from(view, 0)
        if magic != _MAGIC:
            raise IndexFormatError(
                f"{self._path}: not a signature file (magic {magic!r})"
            )
        if version != _VERSION:
            raise IndexFormatError(
                f"{self._path}: unsupported signature version {version}"
            )
        cursor = _PREFIX.size
        (expected_crc,) = _CRC.unpack_from(view, cursor)
        cursor += _CRC.size
        header_bytes = bytes(view[cursor : cursor + header_length])
        if len(header_bytes) != header_length:
            raise IndexFormatError(f"{self._path}: truncated header")
        if zlib.crc32(header_bytes) != expected_crc:
            raise CorruptionError(
                f"{self._path}: header checksum mismatch", section="header"
            )
        try:
            header = json.loads(header_bytes)
            self.params = IndexParameters.from_description(header["params"])
            self.signature_params = dict(header["signature"])
            self.collection = CollectionInfo(
                tuple(header["identifiers"]),
                np.array(header["lengths"], dtype=np.int64),
            )
            self._blocks = tuple(
                _Block(
                    base=int(block["base"]),
                    docs=int(block["docs"]),
                    rows=int(block["rows"]),
                    offset=int(block["offset"]),
                    length=int(block["length"]),
                    crc=int(block["crc"]),
                )
                for block in header["blocks"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(
                f"{self._path}: malformed signature header: {exc}"
            ) from exc
        self._payload_start = cursor + header_length
        self._hashes = int(self.signature_params["hashes"])
        self._checked = bytearray(len(self._blocks))
        expected_base = 0
        for slot, block in enumerate(self._blocks):
            if block.base != expected_base or block.docs < 1:
                raise IndexFormatError(
                    f"{self._path}: block {slot} covers documents "
                    f"{block.base}..{block.base + block.docs - 1}, expected "
                    f"a contiguous layout from {expected_base}"
                )
            width = (block.docs + 7) // 8
            if block.length != block.rows * width:
                raise IndexFormatError(
                    f"{self._path}: block {slot} payload is {block.length} "
                    f"bytes, expected {block.rows * width}"
                )
            expected_base += block.docs
        if expected_base != self.collection.num_sequences:
            raise IndexFormatError(
                f"{self._path}: blocks cover {expected_base} documents but "
                f"the header lists {self.collection.num_sequences}"
            )
        if self._blocks:
            last = self._blocks[-1]
            end = self._payload_start + last.offset + last.length
            if end > len(view):
                raise IndexFormatError(
                    f"{self._path}: payload truncated ({len(view)} bytes, "
                    f"blocks need {end})"
                )

    # -- reader surface ---------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def vocabulary_size(self) -> int:
        """Total Bloom rows across blocks (the signature's "vocabulary")."""
        return int(sum(block.rows for block in self._blocks))

    @property
    def signature_bytes(self) -> int:
        """Packed payload bytes (the coarse evidence, header excluded)."""
        return int(sum(block.length for block in self._blocks))

    @property
    def instruments(self):
        return getattr(self, "_instruments", NULL_INSTRUMENTS)

    def set_instruments(self, instruments) -> None:
        self._instruments = coalesce(instruments)

    def enable_decode_cache(self, max_entries: int = 4096) -> None:
        """No-op: signature blocks are read straight off the mapping."""

    def block(self, slot: int) -> _Block:
        return self._blocks[slot]

    def _packed(self, slot: int) -> np.ndarray:
        """Block ``slot``'s packed bit matrix, checksum-verified once.

        Raises:
            CorruptionError: if the payload fails its checksum.
        """
        block = self._blocks[slot]
        start = self._payload_start + block.offset
        payload = self._map[start : start + block.length]
        if not self._checked[slot]:
            if zlib.crc32(payload) != block.crc:
                raise CorruptionError(
                    f"{self._path}: signature block {slot} (documents "
                    f"{block.base}..{block.base + block.docs - 1}) failed "
                    "its checksum",
                    section=f"block:{slot}",
                )
            self._checked[slot] = 1
        width = (block.docs + 7) // 8
        return np.frombuffer(payload, dtype=np.uint8).reshape(
            block.rows, width
        )

    def block_membership_counts(
        self, slot: int, interval_ids: np.ndarray
    ) -> np.ndarray:
        """Per-document count of query k-mers the block's filters contain.

        For each k-mer its ``hashes`` rows are AND-ed into one packed
        membership mask; unpacking and summing the masks yields each
        document's containment count (shape ``(docs,)``).

        Raises:
            CorruptionError: if the block fails its checksum.
        """
        block = self._blocks[slot]
        packed = self._packed(slot)
        rows = signature_rows(interval_ids, self._hashes, block.rows)
        masks = np.bitwise_and.reduce(packed[rows], axis=1)
        bits = np.unpackbits(masks, axis=1, count=block.docs)
        return bits.sum(axis=0, dtype=np.int64)

    def verify(self) -> list[str]:
        """Check every block's checksum; returns the problems found."""
        issues: list[str] = []
        for slot in range(len(self._blocks)):
            try:
                self._packed(slot)
            except CorruptionError as exc:
                issues.append(str(exc))
        return issues

    def close(self) -> None:
        if getattr(self, "_map", None) is not None:
            self._map.close()
            self._map = None
        if getattr(self, "_handle", None) is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SignatureIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SignatureRanker:
    """Coarse phase over a :class:`SignatureIndex`.

    Scores are distinct-query-k-mer containment counts; the ranking
    contract (score desc, ordinal asc, ``cutoff`` best, zero-score
    documents never returned) matches
    :class:`~repro.search.coarse.CoarseRanker` exactly, so the fine
    phase and the sharded merge are backend-agnostic.

    A bounded deadline is checked between blocks: once expired the
    remaining blocks contribute no evidence and the scores so far
    become the (partial) ranking.  Under ``on_corruption="skip"`` a
    block that fails its checksum is quarantined (logged, counted,
    scored zero) and scanning continues; any other policy propagates
    the :class:`~repro.errors.CorruptionError` (the engine's
    ``"fallback"`` then answers the query exhaustively).

    Raises:
        SearchError: the signature backend ranks by containment counts
            only, so any scorer other than ``"count"`` is rejected.
    """

    def __init__(
        self,
        index: SignatureIndex,
        scorer="count",
        on_corruption: str = "raise",
    ) -> None:
        name = scorer if isinstance(scorer, str) else getattr(
            scorer, "name", type(scorer).__name__
        )
        if name != "count":
            raise SearchError(
                "the signature backend supports the 'count' coarse scorer "
                f"only, got {name!r}"
            )
        self.index = index
        self.on_corruption = on_corruption
        self.instruments = NULL_INSTRUMENTS
        self._quarantined: set[int] = set()
        # Query k-mers are always extracted at stride 1, mirroring the
        # inverted ranker: a sparsely signed collection is still hit as
        # long as some query window aligns with a signed window.
        self._extractor = IntervalExtractor(
            index.params.interval_length, stride=1
        )

    def set_instruments(self, instruments) -> None:
        self.instruments = coalesce(instruments)

    def rank(
        self,
        query_codes: np.ndarray,
        cutoff: int,
        deadline: Deadline | None = None,
    ) -> list[CoarseCandidate]:
        """The ``cutoff`` best-scoring documents, best first.

        Raises:
            SearchError: if ``cutoff`` is not positive.
            CorruptionError: on a damaged block, unless the policy is
                ``"skip"``.
        """
        if cutoff < 1:
            raise SearchError(f"cutoff must be >= 1, got {cutoff}")
        deadline = ensure_deadline(deadline)
        ids = self._extractor.extract_distinct(query_codes)
        if not ids.shape[0]:
            return []
        self.instruments.count("coarse.query_intervals", int(ids.shape[0]))
        scores = np.zeros(self.index.collection.num_sequences, dtype=np.float64)
        scanned = 0
        for slot in range(self.index.num_blocks):
            if deadline.bounded and deadline.expired():
                break
            if slot in self._quarantined:
                continue
            block = self.index.block(slot)
            try:
                counts = self.index.block_membership_counts(slot, ids)
            except CorruptionError as exc:
                if self.on_corruption != "skip":
                    raise
                _LOG.warning(
                    "quarantining corrupt signature block %d: %s", slot, exc
                )
                self._quarantined.add(slot)
                self.instruments.count("signature.quarantined_blocks")
                continue
            scanned += 1
            scores[block.base : block.base + block.docs] = counts
        self.instruments.count("signature.blocks_scanned", scanned)
        positive = np.flatnonzero(scores > 0)
        if not positive.shape[0]:
            return []
        take = min(cutoff, positive.shape[0])
        # Same deterministic order as the inverted ranker (score desc,
        # ordinal asc) so tied candidates at the cutoff never depend on
        # the backend.
        order = np.lexsort((positive, -scores[positive]))
        return [
            CoarseCandidate(int(ordinal), float(scores[ordinal]))
            for ordinal in positive[order][:take]
        ]


class SignatureBackend(CoarseBackend):
    name = "signature"
    artifact = ARTIFACT_NAMES["signature"]

    def normalise_params(self, params: dict | None) -> dict:
        """Defaults applied, ranges checked.

        Raises:
            IndexParameterError: on an unknown key,
                ``false_positive_rate`` outside (0, 1), ``hashes`` < 1,
                or ``docs_per_block`` < 1.
        """
        merged = dict(DEFAULT_SIGNATURE_PARAMS)
        unknown = set(params or {}) - set(merged)
        if unknown:
            raise IndexParameterError(
                f"unknown signature parameter(s) {sorted(unknown)}; known: "
                f"{sorted(merged)}"
            )
        merged.update(params or {})
        fpr = float(merged["false_positive_rate"])
        hashes = int(merged["hashes"])
        docs_per_block = int(merged["docs_per_block"])
        if not 0.0 < fpr < 1.0:
            raise IndexParameterError(
                f"false_positive_rate must lie in (0, 1), got {fpr}"
            )
        if hashes < 1:
            raise IndexParameterError(f"hashes must be >= 1, got {hashes}")
        if docs_per_block < 1:
            raise IndexParameterError(
                f"docs_per_block must be >= 1, got {docs_per_block}"
            )
        return {
            "false_positive_rate": fpr,
            "hashes": hashes,
            "docs_per_block": docs_per_block,
        }

    def build_artifact(
        self,
        directory: Path,
        records: TypingSequence[Sequence],
        params: IndexParameters,
        backend_params: dict | None = None,
    ) -> int:
        return write_signature(
            records,
            Path(directory) / self.artifact,
            params,
            self.normalise_params(backend_params),
        )

    def open_artifact(self, directory: Path) -> SignatureIndex:
        return SignatureIndex(Path(directory) / self.artifact)

    def make_ranker(
        self, index, scorer="count", on_corruption: str = "raise"
    ) -> SignatureRanker:
        return SignatureRanker(index, scorer, on_corruption=on_corruption)

"""Search engines: partitioned (coarse + fine) and exhaustive baselines."""

from repro.search.blast_like import BlastLikeSearcher
from repro.search.deadline import (
    NO_DEADLINE,
    Deadline,
    DeadlineIndexView,
    ensure_deadline,
)
from repro.search.resilience import (
    CircuitBreaker,
    RetryPolicy,
    ShardResilience,
    ShardTimeout,
    ShardUnavailable,
)
from repro.search.coarse import (
    CoarseRanker,
    CoarseScorer,
    CountScorer,
    DiagonalScorer,
    IdfScorer,
    NormalisedScorer,
    make_scorer,
)
from repro.search.engine import FINE_MODES, PartitionedSearchEngine
from repro.search.exhaustive import ExhaustiveSearcher
from repro.search.fasta_like import FastaLikeSearcher
from repro.search.fine import FineSearcher
from repro.search.frames import (
    FrameCandidate,
    FrameFineSearcher,
    FrameRanker,
)
from repro.search.results import (
    CoarseCandidate,
    SearchHit,
    SearchReport,
)
from repro.search.seeds import SeedTable, query_seed_groups

__all__ = [
    "FINE_MODES",
    "NO_DEADLINE",
    "BlastLikeSearcher",
    "CircuitBreaker",
    "CoarseCandidate",
    "CoarseRanker",
    "CoarseScorer",
    "CountScorer",
    "Deadline",
    "DeadlineIndexView",
    "DiagonalScorer",
    "ExhaustiveSearcher",
    "FastaLikeSearcher",
    "FineSearcher",
    "FrameCandidate",
    "FrameFineSearcher",
    "FrameRanker",
    "IdfScorer",
    "NormalisedScorer",
    "PartitionedSearchEngine",
    "RetryPolicy",
    "SearchHit",
    "SearchReport",
    "SeedTable",
    "ShardResilience",
    "ShardTimeout",
    "ShardUnavailable",
    "ensure_deadline",
    "make_scorer",
    "query_seed_groups",
]

"""Fine search: local alignment of the query against candidates only.

The candidates the coarse phase selects are fetched from the sequence
source, concatenated into a small :class:`TargetImage`, and scanned
with the vectorised Smith-Waterman kernel.  The cost is proportional
to the candidate volume, not the collection — which is the entire
point of partitioned evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.align.kernel import TargetImage, segment_best_scores
from repro.align.scoring import ScoringScheme
from repro.index.store import SequenceSource
from repro.search.results import CoarseCandidate, SearchHit


class FineSearcher:
    """Aligns a query against a candidate subset of the collection."""

    def __init__(
        self, source: SequenceSource, scheme: ScoringScheme | None = None
    ) -> None:
        self.source = source
        self.scheme = scheme or ScoringScheme()

    def align_candidates(
        self,
        query_codes: np.ndarray,
        candidates: list[CoarseCandidate],
        min_score: int = 1,
    ) -> list[SearchHit]:
        """Score every candidate and return them ranked, best first.

        Args:
            query_codes: the coded query.
            candidates: coarse-phase output (any order).
            min_score: discard alignments scoring below this.

        Ties are broken by coarse score, then by ordinal, so rankings
        are deterministic.
        """
        if not candidates or not query_codes.shape[0]:
            return []
        codes = [self.source.codes(candidate.ordinal) for candidate in candidates]
        image = TargetImage.build(
            codes, self.scheme, max_query_length=int(query_codes.shape[0])
        )
        scores = segment_best_scores(query_codes, image, self.scheme)
        hits = [
            SearchHit(
                ordinal=candidate.ordinal,
                identifier=self.source.identifier(candidate.ordinal),
                score=int(score),
                coarse_score=candidate.coarse_score,
            )
            for candidate, score in zip(candidates, scores)
            if int(score) >= min_score
        ]
        hits.sort(key=lambda hit: (-hit.score, -hit.coarse_score, hit.ordinal))
        return hits

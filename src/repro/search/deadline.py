"""Per-query time budgets, threaded through the whole query path.

A :class:`Deadline` is a point on a monotonic clock after which a query
should stop doing new work and return whatever it has accumulated —
*partial, clearly-flagged results instead of a runaway query*.  Both
engines accept one per ``search`` call and check it cooperatively:

* between coarse intervals (posting-list fetches stop contributing
  evidence once expired — see :class:`DeadlineIndexView`);
* between per-shard fan-out steps in the sharded engine;
* between fine-phase alignment chunks.

A report produced under an expired deadline carries
``deadline_expired=True`` and whatever hits the completed work ranked;
an expired deadline never raises.  The shared :data:`NO_DEADLINE`
sentinel never expires and costs one attribute check per gate, so the
unbudgeted path stays effectively free.

The clock is injectable so tests can drive expiry deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

import numpy as np

from repro.errors import SearchError

__all__ = [
    "Deadline",
    "DeadlineIndexView",
    "NO_DEADLINE",
    "ensure_deadline",
]


class Deadline:
    """A monotonic-clock expiry point (``None`` = unbounded).

    Args:
        expires_at: absolute monotonic timestamp after which the
            deadline is expired; ``None`` never expires.
        clock: timestamp source; injectable for deterministic tests.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls,
        seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``seconds`` from now (``None`` = unbounded).

        Raises:
            SearchError: if ``seconds`` is negative.
        """
        if seconds is None:
            return NO_DEADLINE
        if seconds < 0:
            raise SearchError(f"deadline must be >= 0 seconds, got {seconds}")
        return cls(clock() + seconds, clock)

    def expired(self) -> bool:
        """True once the clock has passed the expiry point."""
        return self.expires_at is not None and self._clock() >= self.expires_at

    def remaining(self) -> float | None:
        """Seconds of budget left (clamped at 0.0); ``None`` = unbounded."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - self._clock())

    @property
    def bounded(self) -> bool:
        """True when this deadline can actually expire."""
        return self.expires_at is not None

    def tightened(self, seconds: float | None) -> "Deadline":
        """The tighter of this deadline and one ``seconds`` from now.

        Used to compose a per-shard attempt timeout with the query's
        overall budget.
        """
        if seconds is None:
            return self
        candidate = Deadline.after(seconds, self._clock)
        if self.expires_at is None:
            return candidate
        if candidate.expires_at >= self.expires_at:
            return self
        return candidate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.expires_at is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.4f}s)"


#: The shared never-expiring deadline every query defaults to.
NO_DEADLINE = Deadline()


def ensure_deadline(deadline: Deadline | None) -> Deadline:
    """``deadline`` if given, else the shared unbounded sentinel."""
    return deadline if deadline is not None else NO_DEADLINE


class DeadlineIndexView:
    """Index view that stops yielding evidence once a deadline expires.

    Wrapping the reader (instead of threading the deadline into every
    scorer) keeps the coarse accumulators untouched: after expiry each
    remaining interval fetch returns "nothing here" (``None`` entry /
    ``None`` decode / empty postings), so the scorer loop finishes in
    microseconds and the scores accumulated *before* expiry become the
    partial coarse ranking.  Construction is one object per query —
    allocated only when the deadline is bounded.
    """

    __slots__ = ("_inner", "_deadline", "params", "collection")

    def __init__(self, inner, deadline: Deadline) -> None:
        self._inner = inner
        self._deadline = deadline
        self.params = inner.params
        self.collection = inner.collection

    #: Intervals decoded per expiry check inside a batched fetch —
    #: small enough to bound overshoot past the deadline, large enough
    #: to keep the vectorised batch decode effective.
    BATCH_CHUNK = 16

    def lookup_entry(self, interval_id: int):
        if self._deadline.expired():
            return None
        return self._inner.lookup_entry(interval_id)

    def docs_counts(self, interval_id: int, entry=None):
        if self._deadline.expired():
            return None
        return self._inner.docs_counts(interval_id, entry)

    def docs_counts_batch(self, interval_ids) -> list:
        """Batched section-A decode, re-checking the deadline between
        chunks: once expired, the remaining intervals yield ``None`` —
        the batched analogue of "no evidence after expiry"."""
        results: list = []
        total = len(interval_ids)
        inner_batch = getattr(self._inner, "docs_counts_batch", None)
        for start in range(0, total, self.BATCH_CHUNK):
            chunk = interval_ids[start : start + self.BATCH_CHUNK]
            if self._deadline.expired():
                results.extend([None] * (total - start))
                break
            if inner_batch is not None:
                results.extend(inner_batch(chunk))
                continue
            # Duck-typed inner reader without the batch protocol.
            for interval_id in chunk:
                entry = self._inner.lookup_entry(interval_id)
                if entry is None:
                    results.append(None)
                    continue
                decoded = self._inner.docs_counts(interval_id)
                results.append(
                    None if decoded is None else (entry, *decoded)
                )
        return results

    def docs_counts_flat(self, interval_ids):
        """Flat section-A decode with the same chunked expiry rule as
        :meth:`docs_counts_batch`: intervals past expiry report length
        0 and contribute no entries — "no evidence after expiry" in the
        flat layout."""
        total = len(interval_ids)
        lens = np.zeros(total, dtype=np.int64)
        docs_parts: list[np.ndarray] = []
        counts_parts: list[np.ndarray] = []
        inner_flat = getattr(self._inner, "docs_counts_flat", None)
        for start in range(0, total, self.BATCH_CHUNK):
            if self._deadline.expired():
                break
            chunk = interval_ids[start : start + self.BATCH_CHUNK]
            if inner_flat is not None:
                chunk_lens, chunk_docs, chunk_counts = inner_flat(chunk)
                lens[start : start + len(chunk)] = chunk_lens
                docs_parts.append(chunk_docs)
                counts_parts.append(chunk_counts)
                continue
            # Duck-typed inner reader without the flat protocol.
            for offset, interval_id in enumerate(chunk):
                entry = self._inner.lookup_entry(interval_id)
                if entry is None:
                    continue
                decoded = self._inner.docs_counts(interval_id)
                if decoded is None:
                    continue
                lens[start + offset] = decoded[0].shape[0]
                docs_parts.append(decoded[0])
                counts_parts.append(decoded[1])
        empty = np.empty(0, dtype=np.int64)
        return (
            lens,
            np.concatenate(docs_parts) if docs_parts else empty,
            np.concatenate(counts_parts) if counts_parts else empty,
        )

    def postings(self, interval_id: int, entry=None) -> list:
        if self._deadline.expired():
            return []
        return self._inner.postings(interval_id, entry)

    def postings_batch(self, interval_ids) -> list:
        """Batched full decode with the same chunked expiry rule as
        :meth:`docs_counts_batch` (expired intervals yield ``None``)."""
        results: list = []
        total = len(interval_ids)
        inner_batch = getattr(self._inner, "postings_batch", None)
        for start in range(0, total, self.BATCH_CHUNK):
            chunk = interval_ids[start : start + self.BATCH_CHUNK]
            if self._deadline.expired():
                results.extend([None] * (total - start))
                break
            if inner_batch is not None:
                results.extend(inner_batch(chunk))
                continue
            for interval_id in chunk:
                entry = self._inner.lookup_entry(interval_id)
                results.append(
                    None if entry is None
                    else self._inner.postings(interval_id)
                )
        return results

    def interval_ids(self) -> Iterator[int]:
        return self._inner.interval_ids()

    @property
    def vocabulary_size(self) -> int:
        return self._inner.vocabulary_size

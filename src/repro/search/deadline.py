"""Per-query time budgets, threaded through the whole query path.

A :class:`Deadline` is a point on a monotonic clock after which a query
should stop doing new work and return whatever it has accumulated —
*partial, clearly-flagged results instead of a runaway query*.  Both
engines accept one per ``search`` call and check it cooperatively:

* between coarse intervals (posting-list fetches stop contributing
  evidence once expired — see :class:`DeadlineIndexView`);
* between per-shard fan-out steps in the sharded engine;
* between fine-phase alignment chunks.

A report produced under an expired deadline carries
``deadline_expired=True`` and whatever hits the completed work ranked;
an expired deadline never raises.  The shared :data:`NO_DEADLINE`
sentinel never expires and costs one attribute check per gate, so the
unbudgeted path stays effectively free.

The clock is injectable so tests can drive expiry deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

from repro.errors import SearchError

__all__ = [
    "Deadline",
    "DeadlineIndexView",
    "NO_DEADLINE",
    "ensure_deadline",
]


class Deadline:
    """A monotonic-clock expiry point (``None`` = unbounded).

    Args:
        expires_at: absolute monotonic timestamp after which the
            deadline is expired; ``None`` never expires.
        clock: timestamp source; injectable for deterministic tests.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls,
        seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``seconds`` from now (``None`` = unbounded).

        Raises:
            SearchError: if ``seconds`` is negative.
        """
        if seconds is None:
            return NO_DEADLINE
        if seconds < 0:
            raise SearchError(f"deadline must be >= 0 seconds, got {seconds}")
        return cls(clock() + seconds, clock)

    def expired(self) -> bool:
        """True once the clock has passed the expiry point."""
        return self.expires_at is not None and self._clock() >= self.expires_at

    def remaining(self) -> float | None:
        """Seconds of budget left (clamped at 0.0); ``None`` = unbounded."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - self._clock())

    @property
    def bounded(self) -> bool:
        """True when this deadline can actually expire."""
        return self.expires_at is not None

    def tightened(self, seconds: float | None) -> "Deadline":
        """The tighter of this deadline and one ``seconds`` from now.

        Used to compose a per-shard attempt timeout with the query's
        overall budget.
        """
        if seconds is None:
            return self
        candidate = Deadline.after(seconds, self._clock)
        if self.expires_at is None:
            return candidate
        if candidate.expires_at >= self.expires_at:
            return self
        return candidate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.expires_at is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.4f}s)"


#: The shared never-expiring deadline every query defaults to.
NO_DEADLINE = Deadline()


def ensure_deadline(deadline: Deadline | None) -> Deadline:
    """``deadline`` if given, else the shared unbounded sentinel."""
    return deadline if deadline is not None else NO_DEADLINE


class DeadlineIndexView:
    """Index view that stops yielding evidence once a deadline expires.

    Wrapping the reader (instead of threading the deadline into every
    scorer) keeps the coarse accumulators untouched: after expiry each
    remaining interval fetch returns "nothing here" (``None`` entry /
    ``None`` decode / empty postings), so the scorer loop finishes in
    microseconds and the scores accumulated *before* expiry become the
    partial coarse ranking.  Construction is one object per query —
    allocated only when the deadline is bounded.
    """

    __slots__ = ("_inner", "_deadline", "params", "collection")

    def __init__(self, inner, deadline: Deadline) -> None:
        self._inner = inner
        self._deadline = deadline
        self.params = inner.params
        self.collection = inner.collection

    def lookup_entry(self, interval_id: int):
        if self._deadline.expired():
            return None
        return self._inner.lookup_entry(interval_id)

    def docs_counts(self, interval_id: int):
        if self._deadline.expired():
            return None
        return self._inner.docs_counts(interval_id)

    def postings(self, interval_id: int) -> list:
        if self._deadline.expired():
            return []
        return self._inner.postings(interval_id)

    def interval_ids(self) -> Iterator[int]:
        return self._inner.interval_ids()

    @property
    def vocabulary_size(self) -> int:
        return self._inner.vocabulary_size

"""Frame-restricted fine search (CAFE's fine-phase refinement).

Whole-candidate alignment pays for every base of every candidate, but
the index already knows *where* in each candidate the evidence lies:
the interval hits cluster on an alignment diagonal.  A *frame* is the
target region that diagonal band implies — the query length plus a
margin either side — and aligning only frames makes the fine phase's
cost proportional to candidate *count*, not candidate *length*.

The frame is a heuristic: an alignment that wanders outside it (large
indels, a second distant match region) can score lower than the
whole-sequence optimum.  The A4 ablation prices this against the
speedup; for family-similarity workloads the scores agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.kernel import TargetImage, segment_best_scores
from repro.align.scoring import ScoringScheme
from repro.errors import SearchError
from repro.index.builder import IndexReader
from repro.index.store import SequenceSource
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    coalesce,
)
from repro.search.coarse import (
    CoarseRanker,
    band_hit_counts,
    count_decoded_postings,
    fetch_postings_batch,
)
from repro.search.deadline import (
    Deadline,
    DeadlineIndexView,
    ensure_deadline,
)
from repro.search.results import SearchHit


@dataclass(frozen=True)
class FrameCandidate:
    """A candidate sequence with the region its hits point at.

    Attributes:
        ordinal: the sequence's collection ordinal.
        coarse_score: hits in the best diagonal band.
        target_start / target_end: the frame, clipped to the sequence.
    """

    ordinal: int
    coarse_score: float
    target_start: int
    target_end: int

    @property
    def width(self) -> int:
        return self.target_end - self.target_start


class FrameRanker:
    """Coarse ranking that also localises each candidate's best region.

    Args:
        index: an interval index **built with positions**.
        band_width: diagonal band granularity (indel tolerance).
        margin: extra bases either side of the implied region.

    Raises:
        SearchError: if the index stores no occurrence offsets.
    """

    def __init__(
        self,
        index: IndexReader,
        band_width: int = 16,
        margin: int = 48,
    ) -> None:
        if not index.params.include_positions:
            raise SearchError(
                "frame ranking needs an index built with positions"
            )
        if band_width < 1:
            raise SearchError(f"band_width must be >= 1, got {band_width}")
        if margin < 0:
            raise SearchError(f"margin must be >= 0, got {margin}")
        self.index = index
        self.band_width = band_width
        self.margin = margin
        self.instruments = NULL_INSTRUMENTS
        self._ranker = CoarseRanker(index, "count")  # for interval extraction

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Attach observability to the frame ranker."""
        self.instruments = coalesce(instruments)
        self._ranker.set_instruments(instruments)

    def rank(
        self,
        query_codes: np.ndarray,
        cutoff: int,
        deadline: Deadline | None = None,
    ) -> list[FrameCandidate]:
        """The ``cutoff`` best candidates with their frames.

        Scoring is the diagonal-band hit count (collinear evidence), so
        the frame and the score come from the same band.  A bounded
        ``deadline`` is checked between interval fetches (expired
        intervals stop contributing hits).

        Raises:
            SearchError: if ``cutoff`` < 1.
        """
        if cutoff < 1:
            raise SearchError(f"cutoff must be >= 1, got {cutoff}")
        deadline = ensure_deadline(deadline)
        query_ids, _, groups = self._ranker.query_intervals(query_codes)
        if not query_ids.shape[0]:
            return []

        index: IndexReader = self.index
        if deadline.bounded:
            index = DeadlineIndexView(self.index, deadline)
        doc_chunks: list[np.ndarray] = []
        diagonal_chunks: list[np.ndarray] = []
        instruments = self.instruments
        instruments.count("coarse.query_intervals", int(query_ids.shape[0]))
        fetched = fetch_postings_batch(index, [int(i) for i in query_ids])
        for slot, postings in enumerate(fetched):
            if postings is None:
                continue
            count_decoded_postings(instruments, len(postings))
            offsets = groups[slot]
            for posting in postings:
                diagonals = (
                    posting.positions[None, :] - offsets[:, None]
                ).reshape(-1)
                doc_chunks.append(
                    np.full(diagonals.shape[0], posting.sequence, np.int64)
                )
                diagonal_chunks.append(diagonals)
        if not doc_chunks:
            return []

        docs = np.concatenate(doc_chunks)
        bands = np.concatenate(diagonal_chunks) // self.band_width
        # 2-column dedup: safe for the full int64 diagonal range (see
        # repro.search.coarse.band_hit_counts).
        key_docs, key_bands, counts = band_hit_counts(docs, bands)

        # Best band per document: sort by (doc, count) and keep the last
        # row of each doc group.
        order = np.lexsort((counts, key_docs))
        key_docs = key_docs[order]
        key_bands = key_bands[order]
        counts = counts[order]
        last_of_doc = np.flatnonzero(
            np.append(np.diff(key_docs) != 0, True)
        )
        best_docs = key_docs[last_of_doc]
        best_bands = key_bands[last_of_doc]
        best_counts = counts[last_of_doc]

        take = min(cutoff, best_docs.shape[0])
        top = np.lexsort((best_docs, -best_counts))[:take]

        query_length = int(query_codes.shape[0])
        interval_length = self.index.params.interval_length
        candidates = []
        for slot in top:
            ordinal = int(best_docs[slot])
            diagonal = int(best_bands[slot]) * self.band_width
            sequence_length = int(self.index.collection.lengths[ordinal])
            start = max(0, diagonal - self.margin)
            end = min(
                sequence_length,
                diagonal
                + query_length
                + self.band_width
                + interval_length
                + self.margin,
            )
            if end <= start:  # hits imply a region outside the sequence
                start, end = 0, min(sequence_length, query_length)
            candidates.append(
                FrameCandidate(
                    ordinal, float(best_counts[slot]), start, end
                )
            )
        return candidates


class FrameFineSearcher:
    """Aligns the query against candidate frames only."""

    def __init__(
        self, source: SequenceSource, scheme: ScoringScheme | None = None
    ) -> None:
        self.source = source
        self.scheme = scheme or ScoringScheme()

    def align_frames(
        self,
        query_codes: np.ndarray,
        candidates: list[FrameCandidate],
        min_score: int = 1,
    ) -> list[SearchHit]:
        """Score every frame and return ranked hits, best first."""
        if not candidates or not query_codes.shape[0]:
            return []
        frames = [
            self.source.codes(candidate.ordinal)[
                candidate.target_start : candidate.target_end
            ]
            for candidate in candidates
        ]
        image = TargetImage.build(
            frames, self.scheme, max_query_length=int(query_codes.shape[0])
        )
        scores = segment_best_scores(query_codes, image, self.scheme)
        hits = [
            SearchHit(
                ordinal=candidate.ordinal,
                identifier=self.source.identifier(candidate.ordinal),
                score=int(score),
                coarse_score=candidate.coarse_score,
            )
            for candidate, score in zip(candidates, scores)
            if int(score) >= min_score
        ]
        hits.sort(key=lambda hit: (-hit.score, -hit.coarse_score, hit.ordinal))
        return hits

"""Fault-tolerance primitives for fan-out search: retry + breaker.

The sharded engine treats each shard as an independent, unreliable
backend.  Three cooperating pieces make a query survive a misbehaving
shard instead of failing outright:

* :class:`RetryPolicy` — jittered exponential backoff for transient
  per-shard failures (a flaky read, a timed-out attempt);
* :class:`CircuitBreaker` — one per shard; after
  ``failure_threshold`` consecutive failures the breaker *opens* and
  the shard is skipped outright (no latency wasted on a known-bad
  shard) until ``reset_seconds`` later, when a single half-open probe
  is admitted — success closes the breaker, failure re-opens it;
* :class:`ShardResilience` — the bundle of knobs an engine or server
  is configured with (per-attempt timeout, retry policy, breaker
  thresholds).

A query against an engine with resilience configured degrades to the
surviving shards: the report's ``shards_degraded`` names the shards
whose evidence is missing, and the query never sees the underlying
shard exception.  Clocks and RNGs are injectable so every transition
is deterministic under test.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Callable

from repro.errors import ReproError, SearchError

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "ShardResilience",
    "ShardTimeout",
    "ShardUnavailable",
]


class ShardTimeout(ReproError, TimeoutError):
    """A single per-shard attempt exceeded its wall-clock budget."""


class ShardUnavailable(SearchError):
    """A shard could not serve this query (breaker open or retries
    exhausted); the engine degrades to the surviving shards.

    Attributes:
        shard: the shard slot that was dropped.
        reason: short machine-readable cause (``"breaker_open"``,
            ``"retries_exhausted"``, ``"deadline"``).
    """

    def __init__(self, shard: int, reason: str, message: str) -> None:
        super().__init__(message)
        self.shard = shard
        self.reason = reason


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for per-shard retries.

    Args:
        max_attempts: total tries per shard call (1 = no retry).
        base_delay: backoff before the first retry, in seconds.
        multiplier: growth factor per further retry.
        max_delay: backoff ceiling, in seconds.
        jitter: fractional +- randomisation of each delay (0.5 means a
            delay is scaled uniformly within [0.5x, 1.5x]); 0 disables
            jitter.  Jitter decorrelates retry storms when many
            concurrent queries hit the same failing shard.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SearchError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise SearchError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise SearchError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < 0:
            raise SearchError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise SearchError(
                f"jitter must lie in [0, 1], got {self.jitter}"
            )

    def delay(self, retries: int, rng: random.Random | None = None) -> float:
        """Backoff before the ``retries``-th retry (1-based), jittered.

        Raises:
            SearchError: if ``retries`` < 1.
        """
        if retries < 1:
            raise SearchError(f"retries must be >= 1, got {retries}")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (retries - 1)
        )
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


class CircuitBreaker:
    """A three-state (closed / open / half-open) failure gate.

    Closed admits every call; ``failure_threshold`` consecutive
    recorded failures open it.  Open rejects every call until
    ``reset_seconds`` have elapsed, after which exactly one half-open
    probe is admitted: :meth:`record_success` closes the breaker,
    :meth:`record_failure` re-opens it for another full reset window.
    All transitions are lock-protected, so concurrent server requests
    share one breaker per shard safely.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise SearchError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds < 0:
            raise SearchError(
                f"reset_seconds must be >= 0, got {reset_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at: float | None = None

    @property
    def state(self) -> str:
        """Current state (an open breaker past its reset window reports
        ``half_open``, since the next :meth:`allow` would probe)."""
        with self._lock:
            if self._state == self.OPEN and self._reset_elapsed():
                return self.HALF_OPEN
            return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures recorded since the last success."""
        with self._lock:
            return self._failures

    def _reset_elapsed(self) -> bool:
        return (
            self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_seconds
        )

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        Open-to-half-open transition happens here: the first ``allow``
        after the reset window admits one probe; further calls are
        rejected until that probe's outcome is recorded.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN and self._reset_elapsed():
                self._state = self.HALF_OPEN
                return True
            return False

    def record_success(self) -> None:
        """A call succeeded: close the breaker and clear the count."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        """A call failed: count it; trip when the threshold is hit or
        the half-open probe failed."""
        with self._lock:
            self._failures += 1
            if (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()


@dataclass(frozen=True)
class ShardResilience:
    """Per-shard fault-tolerance configuration for a fan-out engine.

    Args:
        shard_timeout: wall-clock budget per shard *attempt*, in
            seconds; an attempt past it counts as a failure (retried,
            then breaker-counted).  ``None`` disables attempt timeouts
            (failures are then only exceptions the shard raises).
        retry: backoff policy for transient per-shard failures.
        breaker_failures: consecutive failures that open a shard's
            circuit breaker.
        breaker_reset_seconds: how long an open breaker rejects calls
            before admitting a half-open probe.
        seed: RNG seed for backoff jitter (``None`` = nondeterministic).
    """

    shard_timeout: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failures: int = 5
    breaker_reset_seconds: float = 30.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise SearchError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.breaker_failures < 1:
            raise SearchError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_reset_seconds < 0:
            raise SearchError(
                "breaker_reset_seconds must be >= 0, got "
                f"{self.breaker_reset_seconds}"
            )

    def make_breaker(
        self, clock: Callable[[], float] = time.monotonic
    ) -> CircuitBreaker:
        """A fresh breaker with this configuration's thresholds."""
        return CircuitBreaker(
            failure_threshold=self.breaker_failures,
            reset_seconds=self.breaker_reset_seconds,
            clock=clock,
        )

"""Result types shared by every search engine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CoarseCandidate:
    """A sequence selected by the coarse (index) phase."""

    ordinal: int
    coarse_score: float


@dataclass(frozen=True)
class SearchHit:
    """A ranked answer: one collection sequence with its scores.

    Attributes:
        ordinal: the sequence's position in the collection.
        identifier: the sequence's name.
        score: fine (local alignment) score; the ranking key.
        coarse_score: the index-phase score that selected the sequence
            (0.0 for engines without a coarse phase).
    """

    ordinal: int
    identifier: str
    score: int
    coarse_score: float = 0.0
    #: ``"+"`` when the query matched as given, ``"-"`` when its
    #: reverse complement matched better (both-strand search only).
    strand: str = "+"
    #: Expected chance alignments at this score over the collection;
    #: ``None`` unless the engine was given Gumbel parameters.
    evalue: float | None = None


@dataclass(frozen=True)
class SearchReport:
    """Everything one query evaluation produced.

    Attributes:
        query_identifier: the query's name.
        hits: ranked answers, best first.
        candidates_examined: sequences the fine phase aligned (equals
            the collection size for exhaustive engines).  Under
            both-strand search this is the total fine-phase work: the
            forward and reverse-complement candidate counts summed.
        coarse_seconds / fine_seconds: wall-clock split of the two
            phases (coarse is 0.0 for exhaustive engines).
    """

    query_identifier: str
    hits: list[SearchHit] = field(default_factory=list)
    candidates_examined: int = 0
    coarse_seconds: float = 0.0
    fine_seconds: float = 0.0
    #: Posting lists the engine has quarantined as corrupt so far
    #: (cumulative over the engine's lifetime; only non-zero under
    #: ``on_corruption="skip"``/``"fallback"``).
    quarantined_intervals: int = 0
    #: Candidate sequences skipped because their store records failed
    #: integrity checks (cumulative, as above).
    quarantined_sequences: int = 0
    #: True when the engine answered this query by falling back to an
    #: exhaustive scan because the index was unusable.
    degraded: bool = False
    #: True when the query's deadline expired before evaluation
    #: finished: the hits are a partial ranking over the work completed
    #: inside the budget (an expired deadline never raises).
    deadline_expired: bool = False
    #: Shard slots whose evidence is missing from this report because
    #: the shard failed and resilience dropped it (sharded engines with
    #: a :class:`~repro.search.resilience.ShardResilience` only).
    shards_degraded: tuple[int, ...] = ()

    @property
    def partial(self) -> bool:
        """True when any part of the collection went unexamined —
        deadline expiry or degraded shards."""
        return self.deadline_expired or bool(self.shards_degraded)

    @property
    def total_seconds(self) -> float:
        """Total query evaluation time."""
        return self.coarse_seconds + self.fine_seconds

    def ordinals(self) -> list[int]:
        """Answer ordinals in rank order."""
        return [hit.ordinal for hit in self.hits]

    def best(self) -> SearchHit | None:
        """The top answer, or None when there are no hits."""
        return self.hits[0] if self.hits else None

"""A BLAST1-style exhaustive heuristic baseline (Altschul et al., 1990).

Exact word seeds (default w = 11) are extended along their diagonals
with an X-drop cut-off into ungapped HSPs; sequences whose best HSP
clears a threshold are re-scored with a banded gapped alignment around
the HSP diagonal.  Faster than the FASTA-style scan (long seeds prune
almost everything) but still linear in the collection — every sequence
is examined for every query.
"""

from __future__ import annotations

import time
from typing import Sequence as TypingSequence

import numpy as np

from repro.align.banded import banded_local_score
from repro.align.extension import extend_seed
from repro.align.scoring import ScoringScheme
from repro.errors import SearchError
from repro.index.store import MemorySequenceSource, SequenceSource
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    coalesce,
)
from repro.search.results import SearchHit, SearchReport
from repro.search.seeds import SeedTable, query_seed_groups
from repro.sequences.record import Sequence


class BlastLikeSearcher:
    """Seed-and-extend scan with banded gapped re-scoring.

    Args:
        source: the collection.
        scheme: scoring for extension and re-scoring.
        seed_length: exact-match word size (w).
        x_drop: ungapped extension give-up margin.
        hsp_threshold: minimum ungapped HSP score for a sequence to
            reach the gapped stage.
        band_half_width: half-width of the gapped band.
        max_extensions: cap on seed extensions per sequence (one per
            distinct diagonal is kept below the cap).
    """

    def __init__(
        self,
        source: SequenceSource | TypingSequence[Sequence],
        scheme: ScoringScheme | None = None,
        seed_length: int = 11,
        x_drop: int = 10,
        hsp_threshold: int = 16,
        band_half_width: int = 16,
        max_extensions: int = 64,
    ) -> None:
        if not isinstance(source, SequenceSource):
            source = MemorySequenceSource(source)
        if not len(source):
            raise SearchError("cannot scan an empty collection")
        if max_extensions < 1:
            raise SearchError(
                f"max_extensions must be >= 1, got {max_extensions}"
            )
        self.source = source
        self.scheme = scheme or ScoringScheme()
        self.seed_length = seed_length
        self.x_drop = x_drop
        self.hsp_threshold = hsp_threshold
        self.band_half_width = band_half_width
        self.max_extensions = max_extensions
        self.instruments = NULL_INSTRUMENTS
        self._table = SeedTable(source, seed_length)

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Attach observability to the scanner (``None`` detaches)."""
        self.instruments = coalesce(instruments)

    def _best_hsp(
        self,
        ordinal: int,
        query_codes: np.ndarray,
        query_ids: np.ndarray,
        groups: list[np.ndarray],
    ) -> tuple[int, int]:
        """(best ungapped HSP score, its diagonal) for one sequence."""
        target = None
        seen_diagonals: set[int] = set()
        best_score = 0
        best_diagonal = 0
        for slot, offsets in self._table.shared_with(ordinal, query_ids):
            query_offsets = groups[slot]
            for query_offset in query_offsets:
                for target_offset in offsets:
                    diagonal = int(target_offset) - int(query_offset)
                    if diagonal in seen_diagonals:
                        continue
                    seen_diagonals.add(diagonal)
                    if len(seen_diagonals) > self.max_extensions:
                        return best_score, best_diagonal
                    if target is None:
                        target = self.source.codes(ordinal)
                    extension = extend_seed(
                        query_codes,
                        target,
                        int(query_offset),
                        int(target_offset),
                        self.seed_length,
                        self.scheme,
                        x_drop=self.x_drop,
                    )
                    if extension.score > best_score:
                        best_score = extension.score
                        best_diagonal = diagonal
        return best_score, best_diagonal

    def search(
        self, query: Sequence | np.ndarray, top_k: int = 10
    ) -> SearchReport:
        """Evaluate one query against every sequence.

        Raises:
            SearchError: if ``top_k`` < 1 or the query is shorter than
                the seed length.
        """
        if top_k < 1:
            raise SearchError(f"top_k must be >= 1, got {top_k}")
        if isinstance(query, Sequence):
            identifier, codes = query.identifier, query.codes
        else:
            identifier, codes = "query", np.asarray(query, dtype=np.uint8)
        if codes.shape[0] < self.seed_length:
            raise SearchError(
                f"query {identifier!r} is shorter than the seed "
                f"length {self.seed_length}"
            )

        instruments = self.instruments
        started = time.perf_counter()
        rescored = 0
        with instruments.span("search"):
            query_ids, groups = query_seed_groups(codes, self.seed_length)
            hits: list[SearchHit] = []
            for ordinal in range(len(self.source)):
                hsp_score, diagonal = self._best_hsp(
                    ordinal, codes, query_ids, groups
                )
                if hsp_score < self.hsp_threshold:
                    continue
                rescored += 1
                score = banded_local_score(
                    codes,
                    self.source.codes(ordinal),
                    diagonal,
                    self.band_half_width,
                    self.scheme,
                )
                if score >= 1:
                    hits.append(
                        SearchHit(
                            ordinal=ordinal,
                            identifier=self.source.identifier(ordinal),
                            score=score,
                            coarse_score=float(hsp_score),
                        )
                    )
            hits.sort(
                key=lambda hit: (-hit.score, -hit.coarse_score, hit.ordinal)
            )
        finished = time.perf_counter()
        instruments.count("blast.queries")
        instruments.count("blast.sequences_scanned", len(self.source))
        instruments.count("blast.sequences_rescored", rescored)
        instruments.observe("blast.total_seconds", finished - started)
        return SearchReport(
            query_identifier=identifier,
            hits=hits[:top_k],
            candidates_examined=len(self.source),
            coarse_seconds=0.0,
            fine_seconds=finished - started,
        )

    def search_batch(
        self, queries: list[Sequence], top_k: int = 10
    ) -> list[SearchReport]:
        """Evaluate a list of queries in order."""
        return [self.search(query, top_k=top_k) for query in queries]

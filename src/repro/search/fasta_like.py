"""A FASTA-style exhaustive heuristic baseline (Pearson & Lipman, 1988).

For every collection sequence the query's k-mers are joined against the
sequence, hits are binned by alignment diagonal (``init1``: the best
single diagonal run count), and the promising sequences are re-scored
with a banded local alignment around that diagonal (``opt``).  Unlike
the partitioned engine, *every* sequence is visited for every query —
this is the faster-but-still-exhaustive rival the paper compares
against.
"""

from __future__ import annotations

import time
from typing import Sequence as TypingSequence

import numpy as np

from repro.align.banded import banded_local_score
from repro.align.scoring import ScoringScheme
from repro.errors import SearchError
from repro.index.store import MemorySequenceSource, SequenceSource
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    coalesce,
)
from repro.search.results import SearchHit, SearchReport
from repro.search.seeds import SeedTable, query_seed_groups
from repro.sequences.record import Sequence


class FastaLikeSearcher:
    """Diagonal-method scan with banded re-scoring.

    Args:
        source: the collection.
        scheme: scoring for the banded re-score.
        seed_length: k-mer size of the diagonal method (ktup).
        band_half_width: half-width of the re-scoring band.
        rescore_limit: how many best-init1 sequences get the banded
            alignment; the rest rank by diagonal count alone.
    """

    def __init__(
        self,
        source: SequenceSource | TypingSequence[Sequence],
        scheme: ScoringScheme | None = None,
        seed_length: int = 6,
        band_half_width: int = 16,
        rescore_limit: int = 200,
    ) -> None:
        if not isinstance(source, SequenceSource):
            source = MemorySequenceSource(source)
        if not len(source):
            raise SearchError("cannot scan an empty collection")
        if rescore_limit < 1:
            raise SearchError(
                f"rescore_limit must be >= 1, got {rescore_limit}"
            )
        self.source = source
        self.scheme = scheme or ScoringScheme()
        self.seed_length = seed_length
        self.band_half_width = band_half_width
        self.rescore_limit = rescore_limit
        self.instruments = NULL_INSTRUMENTS
        self._table = SeedTable(source, seed_length)

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Attach observability to the scanner (``None`` detaches)."""
        self.instruments = coalesce(instruments)

    def _best_diagonal(
        self, ordinal: int, query_ids: np.ndarray, groups: list[np.ndarray]
    ) -> tuple[int, int]:
        """(init1 hit count, diagonal) of the sequence's best diagonal."""
        diagonal_chunks: list[np.ndarray] = []
        for slot, offsets in self._table.shared_with(ordinal, query_ids):
            query_offsets = groups[slot]
            diagonal_chunks.append(
                (offsets[None, :] - query_offsets[:, None]).reshape(-1)
            )
        if not diagonal_chunks:
            return 0, 0
        diagonals = np.concatenate(diagonal_chunks)
        values, counts = np.unique(diagonals, return_counts=True)
        best = int(np.argmax(counts))
        return int(counts[best]), int(values[best])

    def search(
        self, query: Sequence | np.ndarray, top_k: int = 10
    ) -> SearchReport:
        """Evaluate one query against every sequence.

        Raises:
            SearchError: if ``top_k`` < 1 or the query is shorter than
                the seed length.
        """
        if top_k < 1:
            raise SearchError(f"top_k must be >= 1, got {top_k}")
        if isinstance(query, Sequence):
            identifier, codes = query.identifier, query.codes
        else:
            identifier, codes = "query", np.asarray(query, dtype=np.uint8)
        if codes.shape[0] < self.seed_length:
            raise SearchError(
                f"query {identifier!r} is shorter than the seed "
                f"length {self.seed_length}"
            )

        instruments = self.instruments
        started = time.perf_counter()
        take = 0
        with instruments.span("search"):
            query_ids, groups = query_seed_groups(codes, self.seed_length)
            init1 = np.zeros(len(self.source), dtype=np.int64)
            diagonals = np.zeros(len(self.source), dtype=np.int64)
            for ordinal in range(len(self.source)):
                count, diagonal = self._best_diagonal(
                    ordinal, query_ids, groups
                )
                init1[ordinal] = count
                diagonals[ordinal] = diagonal

            candidates = np.flatnonzero(init1 > 0)
            take = min(self.rescore_limit, candidates.shape[0])
            hits: list[SearchHit] = []
            if take:
                block = candidates[
                    np.argpartition(init1[candidates], -take)[-take:]
                ]
                for ordinal in block:
                    target = self.source.codes(int(ordinal))
                    score = banded_local_score(
                        codes,
                        target,
                        int(diagonals[ordinal]),
                        self.band_half_width,
                        self.scheme,
                    )
                    if score >= 1:
                        hits.append(
                            SearchHit(
                                ordinal=int(ordinal),
                                identifier=self.source.identifier(
                                    int(ordinal)
                                ),
                                score=score,
                                coarse_score=float(init1[ordinal]),
                            )
                        )
            hits.sort(
                key=lambda hit: (-hit.score, -hit.coarse_score, hit.ordinal)
            )
        finished = time.perf_counter()
        instruments.count("fasta.queries")
        instruments.count("fasta.sequences_scanned", len(self.source))
        instruments.count("fasta.sequences_rescored", int(take))
        instruments.observe("fasta.total_seconds", finished - started)
        return SearchReport(
            query_identifier=identifier,
            hits=hits[:top_k],
            candidates_examined=len(self.source),
            coarse_seconds=0.0,
            fine_seconds=finished - started,
        )

    def search_batch(
        self, queries: list[Sequence], top_k: int = 10
    ) -> list[SearchReport]:
        """Evaluate a list of queries in order."""
        return [self.search(query, top_k=top_k) for query in queries]

"""Exhaustive Smith-Waterman scanning — the paper's gold-standard rival.

Every query is locally aligned against *every* collection sequence.
The scanner concatenates the collection once (sentinel-separated) and
reuses that image across queries, so the per-query cost is one pass of
the vectorised kernel over the whole collection: exactly the linear-
in-collection-size behaviour the paper argues will become prohibitive.
Doubles as the effectiveness oracle for E5/E7.
"""

from __future__ import annotations

import time
from typing import Sequence as TypingSequence

import numpy as np

from repro.align.kernel import TargetImage, segment_best_scores
from repro.align.scoring import ScoringScheme
from repro.errors import SearchError
from repro.index.store import MemorySequenceSource, SequenceSource
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    coalesce,
)
from repro.search.results import SearchHit, SearchReport
from repro.sequences.record import Sequence

#: Image bound used when the caller gives no explicit query ceiling.
DEFAULT_MAX_QUERY_LENGTH = 2048


class ExhaustiveSearcher:
    """Full-collection Smith-Waterman scan.

    Args:
        source: the collection (a source or a plain list of records).
        scheme: local-alignment scoring.
        max_query_length: longest query the prebuilt image must admit;
            longer queries trigger a transparent image rebuild.
        min_score: alignments below this never become answers.
        instruments: optional observability sink (``exhaustive.*``
            metrics plus a ``search`` span per query).
    """

    def __init__(
        self,
        source: SequenceSource | TypingSequence[Sequence],
        scheme: ScoringScheme | None = None,
        max_query_length: int = DEFAULT_MAX_QUERY_LENGTH,
        min_score: int = 1,
        instruments: Instruments | None = None,
    ) -> None:
        if not isinstance(source, SequenceSource):
            source = MemorySequenceSource(source)
        if not len(source):
            raise SearchError("cannot scan an empty collection")
        self.source = source
        self.scheme = scheme or ScoringScheme()
        self.min_score = min_score
        self.instruments = NULL_INSTRUMENTS
        if instruments is not None:
            self.set_instruments(instruments)
        self._image = self._build_image(max_query_length)

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Attach observability to the scanner (``None`` detaches)."""
        self.instruments = coalesce(instruments)

    def _build_image(self, max_query_length: int) -> TargetImage:
        codes = [
            self.source.codes(ordinal) for ordinal in range(len(self.source))
        ]
        return TargetImage.build(codes, self.scheme, max_query_length)

    def _query_codes(self, query: Sequence | np.ndarray) -> tuple[str, np.ndarray]:
        if isinstance(query, Sequence):
            return query.identifier, query.codes
        return "query", np.asarray(query, dtype=np.uint8)

    def scores(self, query: Sequence | np.ndarray) -> np.ndarray:
        """Best local score against every sequence (by ordinal)."""
        _, codes = self._query_codes(query)
        if codes.shape[0] > self._image.max_query_length:
            self._image = self._build_image(int(codes.shape[0]))
        return segment_best_scores(codes, self._image, self.scheme)

    def search(
        self, query: Sequence | np.ndarray, top_k: int = 10
    ) -> SearchReport:
        """Evaluate one query over the whole collection.

        Raises:
            SearchError: if ``top_k`` < 1.
        """
        if top_k < 1:
            raise SearchError(f"top_k must be >= 1, got {top_k}")
        identifier, _ = self._query_codes(query)
        instruments = self.instruments
        started = time.perf_counter()
        with instruments.span("search"):
            scores = self.scores(query)
            qualifying = np.flatnonzero(scores >= self.min_score)
            take = min(top_k, qualifying.shape[0])
            hits: list[SearchHit] = []
            if take:
                # Full deterministic order (score desc, ordinal asc) so
                # tied answers at the cut never depend on partitioning
                # internals.
                order = np.lexsort((qualifying, -scores[qualifying]))
                for ordinal in qualifying[order][:take]:
                    hits.append(
                        SearchHit(
                            ordinal=int(ordinal),
                            identifier=self.source.identifier(int(ordinal)),
                            score=int(scores[ordinal]),
                        )
                    )
        finished = time.perf_counter()
        instruments.count("exhaustive.queries")
        instruments.count("exhaustive.sequences_scanned", len(self.source))
        instruments.observe("exhaustive.total_seconds", finished - started)
        return SearchReport(
            query_identifier=identifier,
            hits=hits,
            candidates_examined=len(self.source),
            coarse_seconds=0.0,
            fine_seconds=finished - started,
        )

    def search_batch(
        self, queries: list[Sequence], top_k: int = 10
    ) -> list[SearchReport]:
        """Evaluate a list of queries in order."""
        return [self.search(query, top_k=top_k) for query in queries]

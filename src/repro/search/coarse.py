"""Coarse search: rank the collection by index evidence alone.

The coarse phase extracts the query's intervals, fetches each one's
posting list, and accumulates per-sequence scores without touching a
single residue.  Its output is an ordered candidate list for the fine
phase — the heart of the paper's partitioned evaluation.

Three accumulator strategies are provided (the A3 ablation):

* ``count`` — per interval, each sequence gains ``min(query count,
  sequence count)`` — the number of *matching* interval occurrences;
* ``normalised`` — the count score scaled by sequence length, removing
  the long-sequence advantage of chance hits;
* ``diagonal`` — FASTA-style: hits are binned by alignment diagonal and
  a sequence scores its best single band, which rewards *collinear*
  runs of matching intervals rather than scattered ones.  This needs
  the occurrence offsets, i.e. an index built with positions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.compression import fastunpack
from repro.errors import SearchError
from repro.index.builder import IndexReader
from repro.index.intervals import IntervalExtractor
from repro.search.deadline import (
    Deadline,
    DeadlineIndexView,
    ensure_deadline,
)
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    coalesce,
)
from repro.search.results import CoarseCandidate


class CoarseScorer(ABC):
    """Strategy: turn index evidence into per-sequence scores."""

    name: str = ""

    #: Observability sink; the owning :class:`CoarseRanker` replaces
    #: this with its own when instrumentation is enabled.
    instruments: Instruments = NULL_INSTRUMENTS

    @abstractmethod
    def score(
        self,
        index: IndexReader,
        query_ids: np.ndarray,
        query_counts: np.ndarray,
        query_positions: list[np.ndarray],
    ) -> np.ndarray:
        """Float score per collection sequence (higher = more similar).

        Args:
            index: the interval index.
            query_ids: distinct interval ids in the query.
            query_counts: occurrences of each id in the query.
            query_positions: query offsets of each id's occurrences.
        """


def count_decoded_postings(instruments: Instruments, num_postings: int) -> None:
    """Record one posting-list fetch for the coarse phase.

    This is the single definition of the two counters' units, shared by
    every scorer and ranker (``coarse.py`` and ``frames.py`` alike):

    * ``coarse.postings_fetched`` — +1 per posting *list* decoded;
    * ``coarse.dgaps_decoded`` — +df per list: one per posting (one
      document gap per document entry), regardless of whether the
      consumer also decoded the occurrence offsets.
    """
    instruments.count("coarse.postings_fetched")
    instruments.count("coarse.dgaps_decoded", int(num_postings))


def fetch_docs_counts_batch(index, interval_ids: list[int]) -> list:
    """``index.docs_counts_batch`` with a duck-typing fallback.

    Readers that predate the batch protocol (including lightweight test
    doubles and third-party wrappers) are served per interval through
    ``lookup_entry`` + ``docs_counts``, yielding the same
    ``(entry, docs, counts) | None`` triples as the batched path.
    """
    batch = getattr(index, "docs_counts_batch", None)
    if batch is not None:
        return batch(interval_ids)
    results: list = []
    for interval_id in interval_ids:
        entry = index.lookup_entry(interval_id)
        if entry is None:
            results.append(None)
            continue
        decoded = index.docs_counts(interval_id)
        results.append(None if decoded is None else (entry, *decoded))
    return results


def fetch_postings_batch(index, interval_ids: list[int]) -> list:
    """``index.postings_batch`` with a duck-typing fallback.

    Per interval the result is the posting list, or ``None`` when the
    interval is absent (or expired under a deadline view).
    """
    batch = getattr(index, "postings_batch", None)
    if batch is not None:
        return batch(interval_ids)
    results: list = []
    for interval_id in interval_ids:
        entry = index.lookup_entry(interval_id)
        results.append(
            None if entry is None else index.postings(interval_id)
        )
    return results


def fetch_docs_counts_flat(index, interval_ids: list[int]):
    """``index.docs_counts_flat`` with a duck-typing fallback.

    Returns ``(lens, docs, counts)``: per-interval posting counts (0
    for absent / expired / quarantined intervals) and the documents and
    occurrence counts of every present list concatenated in interval
    order — the layout the vectorised scorers consume whole.
    """
    flat = getattr(index, "docs_counts_flat", None)
    if flat is not None:
        return flat(interval_ids)
    lens = np.zeros(len(interval_ids), dtype=np.int64)
    docs_parts: list[np.ndarray] = []
    counts_parts: list[np.ndarray] = []
    for slot, decoded in enumerate(
        fetch_docs_counts_batch(index, interval_ids)
    ):
        if decoded is None:
            continue
        _, docs, counts = decoded
        lens[slot] = docs.shape[0]
        docs_parts.append(docs)
        counts_parts.append(counts)
    empty = np.empty(0, dtype=np.int64)
    return (
        lens,
        np.concatenate(docs_parts) if docs_parts else empty,
        np.concatenate(counts_parts) if counts_parts else empty,
    )


def _count_flat_postings(instruments: Instruments, lens: np.ndarray) -> None:
    """Batched :func:`count_decoded_postings`: same units, one call.

    ``lens > 0`` marks the lists actually decoded (+1 fetch each) and
    ``lens.sum()`` is their total document gaps (+df each), so the two
    counters read identically whichever decode path served the query.
    """
    fetched = int(np.count_nonzero(lens))
    if fetched:
        instruments.count("coarse.postings_fetched", fetched)
        instruments.count("coarse.dgaps_decoded", int(lens.sum()))


def _accumulate_evidence(
    num_sequences: int,
    doc_chunks: list[np.ndarray],
    weight_chunks: list[np.ndarray],
) -> np.ndarray:
    """Sum per-interval contributions into a dense score vector.

    One ``bincount`` over the concatenated evidence replaces the old
    per-interval ``np.add.at`` scatters — a single weighted histogram
    pass instead of many small indexed adds.
    """
    if not doc_chunks:
        return np.zeros(num_sequences, dtype=np.float64)
    return np.bincount(
        np.concatenate(doc_chunks),
        weights=np.concatenate(weight_chunks),
        minlength=num_sequences,
    )


class CountScorer(CoarseScorer):
    """Number of matching interval occurrences."""

    name = "count"

    def score(
        self,
        index: IndexReader,
        query_ids: np.ndarray,
        query_counts: np.ndarray,
        query_positions: list[np.ndarray],
    ) -> np.ndarray:
        instruments = self.instruments
        num_sequences = index.collection.num_sequences
        interval_ids = query_ids.tolist()
        if fastunpack.active_tier() != "python":
            # Vector tier: one flat decode, one weighted histogram.
            # Element order matches the per-list path (interval order,
            # documents ascending within each list), so the float sums
            # are bit-identical to the python-tier floor.
            lens, docs, counts = fetch_docs_counts_flat(
                index, interval_ids
            )
            _count_flat_postings(instruments, lens)
            if not docs.shape[0]:
                return np.zeros(num_sequences, dtype=np.float64)
            caps = np.repeat(query_counts, lens)
            return np.bincount(
                docs,
                weights=np.minimum(counts, caps),
                minlength=num_sequences,
            )
        fetched = fetch_docs_counts_batch(index, interval_ids)
        doc_chunks: list[np.ndarray] = []
        weight_chunks: list[np.ndarray] = []
        for query_count, decoded in zip(query_counts, fetched):
            if decoded is None:
                continue
            _, docs, counts = decoded
            count_decoded_postings(instruments, docs.shape[0])
            doc_chunks.append(docs)
            weight_chunks.append(
                np.minimum(counts, int(query_count)).astype(np.float64)
            )
        return _accumulate_evidence(
            num_sequences, doc_chunks, weight_chunks
        )


class IdfScorer(CoarseScorer):
    """Count score with inverse-document-frequency weighting.

    Text-retrieval style: an interval appearing in few sequences is
    strong evidence, one appearing everywhere is nearly none, so each
    matching occurrence contributes ``log(1 + N / df)`` instead of 1.
    """

    name = "idf"

    def score(
        self,
        index: IndexReader,
        query_ids: np.ndarray,
        query_counts: np.ndarray,
        query_positions: list[np.ndarray],
    ) -> np.ndarray:
        num_sequences = index.collection.num_sequences
        instruments = self.instruments
        interval_ids = query_ids.tolist()
        if fastunpack.active_tier() != "python":
            # Vector tier: df == decoded list length, so the idf weight
            # needs no vocabulary access at all — repeat each list's
            # weight across its postings and histogram once.
            lens, docs, counts = fetch_docs_counts_flat(
                index, interval_ids
            )
            _count_flat_postings(instruments, lens)
            if not docs.shape[0]:
                return np.zeros(num_sequences, dtype=np.float64)
            weights = np.log1p(num_sequences / np.maximum(lens, 1))
            caps = np.repeat(query_counts, lens)
            return np.bincount(
                docs,
                weights=np.repeat(weights, lens)
                * np.minimum(counts, caps),
                minlength=num_sequences,
            )
        # The batch returns each interval's VocabEntry with its decode,
        # so the idf weight's df costs no second vocabulary lookup
        # (the old flow paid lookup_entry *and* docs_counts per
        # interval — two full lookups on a disk-backed reader).
        fetched = fetch_docs_counts_batch(index, interval_ids)
        doc_chunks: list[np.ndarray] = []
        weight_chunks: list[np.ndarray] = []
        for query_count, decoded in zip(query_counts, fetched):
            if decoded is None:
                # Not in the vocabulary, or a quarantining reader
                # failed the blob's integrity check: the interval
                # contributes no evidence, exactly like CountScorer.
                continue
            entry, docs, counts = decoded
            count_decoded_postings(instruments, docs.shape[0])
            weight = np.log1p(num_sequences / max(entry.df, 1))
            doc_chunks.append(docs)
            weight_chunks.append(
                weight * np.minimum(counts, int(query_count))
            )
        return _accumulate_evidence(
            num_sequences, doc_chunks, weight_chunks
        )


class NormalisedScorer(CoarseScorer):
    """Count score divided by sequence length (per-base hit density).

    Scaled by the mean sequence length so magnitudes stay comparable
    with the raw count score.
    """

    name = "normalised"

    def score(
        self,
        index: IndexReader,
        query_ids: np.ndarray,
        query_counts: np.ndarray,
        query_positions: list[np.ndarray],
    ) -> np.ndarray:
        inner = CountScorer()
        # Forward our sink: a bare CountScorer() starts on the class
        # default, which silently dropped this scorer's fetch counters.
        inner.instruments = self.instruments
        raw = inner.score(
            index, query_ids, query_counts, query_positions
        )
        lengths = np.maximum(index.collection.lengths, 1).astype(np.float64)
        return raw * (index.collection.context().mean_length / lengths)


class DiagonalScorer(CoarseScorer):
    """Best single diagonal band of matching intervals (FASTA-style).

    Args:
        band_width: diagonals are binned into bands this wide, so small
            indels stay within one band.

    Raises:
        SearchError: at scoring time if the index has no offsets.
    """

    name = "diagonal"

    def __init__(self, band_width: int = 16) -> None:
        if band_width < 1:
            raise SearchError(f"band_width must be >= 1, got {band_width}")
        self.band_width = band_width

    def score(
        self,
        index: IndexReader,
        query_ids: np.ndarray,
        query_counts: np.ndarray,
        query_positions: list[np.ndarray],
    ) -> np.ndarray:
        if not index.params.include_positions:
            raise SearchError(
                "diagonal coarse scoring needs an index built with positions"
            )
        doc_chunks: list[np.ndarray] = []
        diagonal_chunks: list[np.ndarray] = []
        instruments = self.instruments
        fetched = fetch_postings_batch(
            index, [int(i) for i in query_ids]
        )
        for slot, postings in enumerate(fetched):
            if postings is None:
                continue
            count_decoded_postings(instruments, len(postings))
            offsets = query_positions[slot]
            for posting in postings:
                # Every (query offset, sequence offset) pair is a hit.
                diagonals = (
                    posting.positions[None, :] - offsets[:, None]
                ).reshape(-1)
                doc_chunks.append(
                    np.full(diagonals.shape[0], posting.sequence, np.int64)
                )
                diagonal_chunks.append(diagonals)

        scores = np.zeros(index.collection.num_sequences, dtype=np.float64)
        if not doc_chunks:
            return scores
        docs = np.concatenate(doc_chunks)
        bands = np.concatenate(diagonal_chunks) // self.band_width
        # Count hits per (sequence, band), then keep each sequence's
        # best.  Dedup over a 2-column (doc, band) array: packing both
        # into one integer key silently collided or mis-extracted docs
        # once a banded diagonal fell outside +-2**30.
        key_docs, _, hit_counts = band_hit_counts(docs, bands)
        np.maximum.at(scores, key_docs, hit_counts.astype(np.float64))
        return scores


def band_hit_counts(
    docs: np.ndarray, bands: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hits per distinct (sequence, diagonal band) pair.

    Returns each pair's sequence ordinal, band, and hit count, sorted
    by (sequence, band).  Dedup runs over a 2-column array, so the full
    int64 diagonal range is safe — no packed-key arithmetic, which
    collided or mis-extracted ordinals for bands outside +-2**30.
    """
    pairs = np.stack((docs, bands), axis=1)
    unique_pairs, hit_counts = np.unique(pairs, axis=0, return_counts=True)
    return unique_pairs[:, 0], unique_pairs[:, 1], hit_counts


_SCORERS: dict[str, type[CoarseScorer]] = {
    CountScorer.name: CountScorer,
    IdfScorer.name: IdfScorer,
    NormalisedScorer.name: NormalisedScorer,
    DiagonalScorer.name: DiagonalScorer,
}


def make_scorer(name: str, **kwargs) -> CoarseScorer:
    """Instantiate a coarse scorer by name.

    Raises:
        SearchError: if the name is unknown.
    """
    try:
        return _SCORERS[name](**kwargs)
    except KeyError:
        raise SearchError(
            f"unknown coarse scorer {name!r}; known: {sorted(_SCORERS)}"
        ) from None


class CoarseRanker:
    """Runs the coarse phase: query intervals in, ranked candidates out.

    Args:
        index: the interval index to search.
        scorer: a :class:`CoarseScorer` or a registered scorer name.
        max_df_fraction: skip query intervals indexed in more than this
            fraction of the collection — the query-time analogue of
            index stopping (frequent intervals cost the most decode
            time and discriminate the least).  ``None`` skips nothing.
        expand_query_wildcards: expand query windows containing up to
            this many wildcards into their concrete intervals (0 keeps
            the default drop-the-window behaviour).
        max_accumulators: bound the number of sequences tracked during
            accumulation (Moffat & Zobel's limited-accumulator ranking,
            used by the paper's engine family to cap coarse-phase
            memory).  Query intervals are processed rarest first; once
            the bound is hit the ``accumulator_policy`` applies.
            ``None`` tracks everything.
        accumulator_policy: ``"continue"`` keeps updating existing
            accumulators but creates no new ones; ``"quit"`` stops
            processing further intervals entirely.

    Raises:
        SearchError: if ``max_df_fraction`` is out of (0, 1],
            ``expand_query_wildcards`` is negative,
            ``max_accumulators`` < 1, or the policy is unknown.
    """

    ACCUMULATOR_POLICIES = ("continue", "quit")

    def __init__(
        self,
        index: IndexReader,
        scorer: CoarseScorer | str = "count",
        max_df_fraction: float | None = None,
        expand_query_wildcards: int = 0,
        max_accumulators: int | None = None,
        accumulator_policy: str = "continue",
    ) -> None:
        if max_df_fraction is not None and not 0.0 < max_df_fraction <= 1.0:
            raise SearchError(
                f"max_df_fraction must lie in (0, 1], got {max_df_fraction}"
            )
        if expand_query_wildcards < 0:
            raise SearchError(
                "expand_query_wildcards must be >= 0, got "
                f"{expand_query_wildcards}"
            )
        if max_accumulators is not None and max_accumulators < 1:
            raise SearchError(
                f"max_accumulators must be >= 1, got {max_accumulators}"
            )
        if accumulator_policy not in self.ACCUMULATOR_POLICIES:
            raise SearchError(
                f"unknown accumulator_policy {accumulator_policy!r}; "
                f"expected one of {self.ACCUMULATOR_POLICIES}"
            )
        self.index = index
        self.scorer = make_scorer(scorer) if isinstance(scorer, str) else scorer
        self.max_df_fraction = max_df_fraction
        self.expand_query_wildcards = expand_query_wildcards
        self.max_accumulators = max_accumulators
        self.accumulator_policy = accumulator_policy
        self.instruments = NULL_INSTRUMENTS
        if max_accumulators is not None and not isinstance(
            self.scorer, CountScorer
        ):
            raise SearchError(
                "limited accumulators are defined for the count scorer "
                f"only, not {type(self.scorer).__name__}"
            )
        # Query intervals are always extracted at stride 1: a sparsely
        # indexed collection (stride > 1) is still hit as long as *some*
        # query window aligns with an indexed window.
        self._extractor = IntervalExtractor(
            index.params.interval_length, stride=1
        )

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Attach observability to the ranker and its scorer."""
        self.instruments = coalesce(instruments)
        self.scorer.instruments = self.instruments

    def _frequency_filter(
        self,
        unique_ids: np.ndarray,
        counts: np.ndarray,
        groups: list[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
        if self.max_df_fraction is None or not unique_ids.shape[0]:
            return unique_ids, counts, groups
        limit = self.max_df_fraction * self.index.collection.num_sequences
        keep = []
        for slot, interval in enumerate(unique_ids):
            entry = self.index.lookup_entry(int(interval))
            if entry is None or entry.df <= limit:
                keep.append(slot)
        if len(keep) == unique_ids.shape[0]:
            return unique_ids, counts, groups
        self.instruments.count(
            "coarse.intervals_skipped_frequency",
            int(unique_ids.shape[0]) - len(keep),
        )
        keep_array = np.array(keep, dtype=np.int64)
        return (
            unique_ids[keep_array],
            counts[keep_array],
            [groups[slot] for slot in keep],
        )

    def query_intervals(
        self, query_codes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
        """Distinct query interval ids, their counts, and offset groups."""
        if self.expand_query_wildcards:
            ids, positions = self._extractor.extract_expanded(
                query_codes, max_wildcards=self.expand_query_wildcards
            )
        else:
            ids, positions = self._extractor.extract(query_codes)
        if not ids.shape[0]:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), []
        order = np.argsort(ids, kind="stable")
        ids = ids[order]
        positions = positions[order]
        unique_ids, starts, counts = np.unique(
            ids, return_index=True, return_counts=True
        )
        groups = [
            positions[int(start) : int(start) + int(count)]
            for start, count in zip(starts, counts)
        ]
        return unique_ids, counts.astype(np.int64), groups

    def _limited_scores(
        self, index: IndexReader, unique_ids: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Count accumulation under a bounded accumulator table.

        Intervals are processed rarest first so the discriminating
        evidence claims the accumulators before the bound bites; after
        that, ``continue`` updates existing accumulators only and
        ``quit`` stops outright.
        """
        limit = self.max_accumulators
        assert limit is not None
        instruments = self.instruments
        with_df = []
        for interval, query_count in zip(unique_ids, counts):
            entry = index.lookup_entry(int(interval))
            if entry is not None:
                with_df.append(
                    (entry.df, int(interval), int(query_count), entry)
                )
        with_df.sort(key=lambda row: row[:3])

        accumulators: dict[int, float] = {}
        full = False
        for slot, (_, interval, query_count, entry) in enumerate(with_df):
            if full and self.accumulator_policy == "quit":
                instruments.count(
                    "coarse.intervals_skipped_accumulators",
                    len(with_df) - slot,
                )
                break
            decoded = index.docs_counts(interval, entry)
            if decoded is None:
                # The vocabulary row existed a moment ago, but the
                # posting blob failed integrity under a quarantining
                # reader — skip the interval's evidence.
                continue
            docs, doc_counts = decoded
            count_decoded_postings(instruments, docs.shape[0])
            contributions = np.minimum(doc_counts, query_count)
            for doc, contribution in zip(
                docs.tolist(), contributions.tolist()
            ):
                if doc in accumulators:
                    accumulators[doc] += contribution
                elif not full:
                    accumulators[doc] = float(contribution)
                    if len(accumulators) >= limit:
                        full = True

        scores = np.zeros(self.index.collection.num_sequences, dtype=np.float64)
        if accumulators:
            ordinals = np.fromiter(accumulators, dtype=np.int64,
                                   count=len(accumulators))
            scores[ordinals] = np.fromiter(
                accumulators.values(), dtype=np.float64,
                count=len(accumulators),
            )
        return scores

    def rank(
        self,
        query_codes: np.ndarray,
        cutoff: int,
        deadline: Deadline | None = None,
    ) -> list[CoarseCandidate]:
        """The ``cutoff`` best-scoring sequences, best first.

        Sequences with a zero score are never returned, so the result
        may be shorter than ``cutoff``.

        A bounded ``deadline`` is checked between interval fetches: once
        expired the remaining intervals contribute no evidence and the
        scores accumulated so far become the (partial) ranking.

        Raises:
            SearchError: if ``cutoff`` is not positive.
        """
        if cutoff < 1:
            raise SearchError(f"cutoff must be >= 1, got {cutoff}")
        deadline = ensure_deadline(deadline)
        unique_ids, counts, groups = self._frequency_filter(
            *self.query_intervals(query_codes)
        )
        if not unique_ids.shape[0]:
            return []
        self.instruments.count(
            "coarse.query_intervals", int(unique_ids.shape[0])
        )
        index: IndexReader = self.index
        if deadline.bounded:
            index = DeadlineIndexView(self.index, deadline)
        if self.max_accumulators is not None:
            scores = self._limited_scores(index, unique_ids, counts)
        else:
            scores = self.scorer.score(index, unique_ids, counts, groups)
        positive = np.flatnonzero(scores > 0)
        if not positive.shape[0]:
            return []
        take = min(cutoff, positive.shape[0])
        # Full deterministic order (score desc, ordinal asc) so tied
        # candidates at the cutoff never depend on partitioning internals.
        order = np.lexsort((positive, -scores[positive]))
        return [
            CoarseCandidate(int(ordinal), float(scores[ordinal]))
            for ordinal in positive[order][:take]
        ]

"""The partitioned search engine — the paper's primary contribution.

Query evaluation is split into two phases:

1. **coarse** — the interval index ranks the whole collection by
   accumulated hit evidence, selecting at most ``coarse_cutoff``
   candidate sequences;
2. **fine** — only those candidates are fetched and locally aligned,
   and the alignment score produces the final ranking.

With ``coarse_cutoff`` >= the collection size and the ``count`` scorer,
partitioned search aligns everything the index can see and is
score-identical to the exhaustive scanner for any answer a coarse hit
can reach — the invariant the integration tests pin down.  Smaller
cutoffs trade a little recall for a large constant-factor speedup
(experiments E4/E5).

Two refinements beyond the basic pipeline:

* ``fine_mode="frames"`` aligns only the target *region* the coarse
  hits localise (CAFE's fine search) instead of whole candidates;
* ``both_strands=True`` also evaluates the query's reverse complement
  and merges the two orientations, as nucleotide search tools must.
"""

from __future__ import annotations

import logging
import time
from dataclasses import replace
from typing import Iterator

import numpy as np

from repro.align.scoring import ScoringScheme
from repro.align.statistics import GumbelParameters
from repro.errors import CorruptionError, SearchError
from repro.index.builder import IndexReader, PostingEntry, VocabEntry
from repro.index.store import SequenceSource
from repro.instrumentation.eventlog import options_digest
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    coalesce,
)
from repro.search.coarse import CoarseRanker, CoarseScorer
from repro.search.deadline import NO_DEADLINE, Deadline, ensure_deadline
from repro.search.fine import FineSearcher
from repro.search.frames import FrameFineSearcher, FrameRanker
from repro.search.results import SearchHit, SearchReport
from repro.sequences.alphabet import reverse_complement
from repro.sequences.record import Sequence

#: Supported fine-phase modes.
FINE_MODES = ("full", "frames")

#: Supported corruption policies.
CORRUPTION_POLICIES = ("raise", "skip", "fallback")

#: Candidates aligned per fine-phase batch when a bounded deadline is
#: in force.  The fine kernel is vectorised over its whole candidate
#: list, so deadline checks can only happen *between* batches: small
#: enough to bound overshoot, large enough to keep the kernel efficient.
DEADLINE_FINE_CHUNK = 32

_LOG = logging.getLogger(__name__)


class QuarantiningIndexReader(IndexReader):
    """Delegating index view that quarantines corrupt posting lists.

    Any :class:`CorruptionError` raised while fetching a posting list
    is logged once, the interval is recorded in :attr:`quarantined`,
    and the list is treated as empty — so a single damaged blob costs
    one interval's evidence instead of the whole query.
    """

    def __init__(
        self,
        inner: IndexReader,
        instruments: Instruments | None = None,
    ) -> None:
        self._inner = inner
        self.params = inner.params
        self.collection = inner.collection
        self.quarantined: set[int] = set()
        self._instruments = coalesce(instruments)

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Attach observability to this view and the wrapped reader."""
        self._instruments = coalesce(instruments)
        self._inner.set_instruments(instruments)

    def _note(self, interval_id: int, exc: CorruptionError) -> None:
        if interval_id not in self.quarantined:
            _LOG.warning(
                "quarantining corrupt posting list for interval %d: %s",
                interval_id,
                exc,
            )
            self.quarantined.add(interval_id)
            self.instruments.count("index.quarantined_intervals")

    def lookup_entry(self, interval_id: int) -> VocabEntry | None:
        try:
            return self._inner.lookup_entry(interval_id)
        except CorruptionError as exc:
            self._note(interval_id, exc)
            return None

    def docs_counts(self, interval_id: int, entry=None):
        try:
            return self._inner.docs_counts(interval_id, entry)
        except CorruptionError as exc:
            self._note(interval_id, exc)
            return None

    def docs_counts_batch(self, interval_ids) -> list:
        """Batched section-A decode with per-interval quarantine: each
        lookup is guarded individually, then the surviving entries go
        through the wrapped reader's batch decode (and its cache)."""
        entries = [self.lookup_entry(int(i)) for i in interval_ids]
        from_entries = getattr(self._inner, "docs_counts_from_entries", None)
        if from_entries is not None:
            try:
                return from_entries(interval_ids, entries)
            except CorruptionError:
                # A damaged blob surfaced inside the batch: retry the
                # whole chunk per interval so only the damaged lists
                # are quarantined, not their healthy neighbours.
                pass
        # Per-interval decode: for duck-typed inner readers without the
        # batch protocol, and as the quarantining retry path above.
        results: list = []
        for interval_id, entry in zip(interval_ids, entries):
            if entry is None:
                results.append(None)
                continue
            decoded = self.docs_counts(int(interval_id), entry)
            results.append(None if decoded is None else (entry, *decoded))
        return results

    def docs_counts_flat(self, interval_ids):
        """Flat section-A decode with per-interval quarantine.

        Quarantined intervals report length 0 in ``lens`` — the flat
        analogue of "treated as empty".  A corruption surfacing inside
        the batched decode retries per interval, so only the damaged
        lists are quarantined, not their healthy neighbours.
        """
        entries = [self.lookup_entry(int(i)) for i in interval_ids]
        from_entries = getattr(
            self._inner, "docs_counts_flat_from_entries", None
        )
        if from_entries is not None:
            try:
                return from_entries(interval_ids, entries)
            except CorruptionError:
                pass
        lens = np.zeros(len(entries), dtype=np.int64)
        docs_parts: list[np.ndarray] = []
        counts_parts: list[np.ndarray] = []
        for slot, (interval_id, entry) in enumerate(
            zip(interval_ids, entries)
        ):
            if entry is None:
                continue
            decoded = self.docs_counts(int(interval_id), entry)
            if decoded is None:
                continue
            lens[slot] = decoded[0].shape[0]
            docs_parts.append(decoded[0])
            counts_parts.append(decoded[1])
        empty = np.empty(0, dtype=np.int64)
        return (
            lens,
            np.concatenate(docs_parts) if docs_parts else empty,
            np.concatenate(counts_parts) if counts_parts else empty,
        )

    def postings(self, interval_id: int, entry=None) -> list[PostingEntry]:
        try:
            return self._inner.postings(interval_id, entry)
        except CorruptionError as exc:
            self._note(interval_id, exc)
            return []

    def postings_batch(self, interval_ids) -> list:
        """Batched full decode with per-interval quarantine, mirroring
        :meth:`docs_counts_batch`.  Quarantined intervals yield ``[]``
        (the same "nothing here" shape as :meth:`postings`)."""
        entries = [self.lookup_entry(int(i)) for i in interval_ids]
        from_entries = getattr(self._inner, "postings_from_entries", None)
        if from_entries is not None:
            try:
                return from_entries(interval_ids, entries)
            except CorruptionError:
                pass
        results: list = []
        for interval_id, entry in zip(interval_ids, entries):
            if entry is None:
                results.append(None)
                continue
            try:
                results.append(self._inner.postings(int(interval_id), entry))
            except CorruptionError as exc:
                self._note(int(interval_id), exc)
                results.append([])
        return results

    def interval_ids(self) -> Iterator[int]:
        return self._inner.interval_ids()

    @property
    def vocabulary_size(self) -> int:
        return self._inner.vocabulary_size


class PartitionedSearchEngine:
    """Index-accelerated similarity search over a nucleotide collection.

    Args:
        index: the interval index of the collection.
        source: residue access for the same collection, in the same
            ordinal order.
        scheme: fine-phase scoring (defaults to match 1 / mismatch -1 /
            gap -2).
        coarse_scorer: accumulator strategy or its registered name
            (ignored by the frame fine mode, which ranks by diagonal
            evidence).
        coarse_cutoff: candidates the coarse phase hands to the fine
            phase.
        min_fine_score: alignments below this never become answers.
        fine_mode: ``"full"`` aligns whole candidates; ``"frames"``
            aligns only the localised candidate regions (needs an index
            with positions).
        both_strands: also search the reverse complement of every
            query and merge results (a hit's ``strand`` is ``"-"`` when
            the reverse complement matched better).
        significance: Gumbel parameters (see
            :func:`repro.align.statistics.calibrate_gapped`); when
            given, every hit carries a collection-wide E-value.
        on_corruption: what to do when an on-disk artefact fails an
            integrity check mid-query.  ``"raise"`` propagates the
            :class:`~repro.errors.CorruptionError`; ``"skip"``
            quarantines the damaged posting list or candidate sequence
            (logged, treated as empty, counted in the report's
            quarantine statistics) and keeps searching; ``"fallback"``
            additionally answers the query with an exhaustive scan of
            the sequence store if the index proves unusable.
        instruments: observability sink (metrics + spans); when given
            it is wired through the index reader, the sequence source,
            and the coarse phase so the whole query path reports (see
            ``docs/OBSERVABILITY.md``).  Defaults to a shared no-op
            with zero per-query cost.

    Raises:
        SearchError: if the index and source disagree about the
            collection, or a parameter is out of range.
    """

    def __init__(
        self,
        index: IndexReader,
        source: SequenceSource,
        scheme: ScoringScheme | None = None,
        coarse_scorer: CoarseScorer | str = "count",
        coarse_cutoff: int = 100,
        min_fine_score: int = 1,
        fine_mode: str = "full",
        both_strands: bool = False,
        significance: GumbelParameters | None = None,
        on_corruption: str = "raise",
        instruments: Instruments | None = None,
    ) -> None:
        if coarse_cutoff < 1:
            raise SearchError(
                f"coarse_cutoff must be >= 1, got {coarse_cutoff}"
            )
        if fine_mode not in FINE_MODES:
            raise SearchError(
                f"unknown fine_mode {fine_mode!r}; expected one of {FINE_MODES}"
            )
        if on_corruption not in CORRUPTION_POLICIES:
            raise SearchError(
                f"unknown on_corruption {on_corruption!r}; expected one of "
                f"{CORRUPTION_POLICIES}"
            )
        if len(source) != index.collection.num_sequences:
            raise SearchError(
                f"index covers {index.collection.num_sequences} sequences "
                f"but the source holds {len(source)}"
            )
        self.on_corruption = on_corruption
        self.coarse_backend = getattr(index, "coarse_backend", "inverted")
        self._quarantine: QuarantiningIndexReader | None = None
        if on_corruption == "skip" and self.coarse_backend == "inverted":
            # "fallback" deliberately leaves the index unwrapped: any
            # corruption aborts the partitioned pipeline and the query
            # is re-answered exhaustively, preserving full recall.
            # Non-inverted backends apply the skip policy inside their
            # own rankers (e.g. per-block signature quarantine).
            self._quarantine = QuarantiningIndexReader(index)
            index = self._quarantine
        self._quarantined_sequences: set[int] = set()
        self._exhaustive = None
        self.index = index
        self.source = source
        self.scheme = scheme or ScoringScheme()
        self.coarse_cutoff = coarse_cutoff
        self.min_fine_score = min_fine_score
        self.fine_mode = fine_mode
        self.both_strands = both_strands
        self.significance = significance
        if fine_mode == "frames":
            if self.coarse_backend != "inverted":
                raise SearchError(
                    "fine_mode='frames' needs positional evidence from the "
                    "inverted coarse backend; this index uses "
                    f"{self.coarse_backend!r}"
                )
            self._frame_ranker = FrameRanker(index)
            self._frame_fine = FrameFineSearcher(source, self.scheme)
            self._ranker = None
            self._fine = None
        else:
            if self.coarse_backend == "inverted":
                self._ranker = CoarseRanker(index, coarse_scorer)
            else:
                from repro.coarse_backends import get_backend

                self._ranker = get_backend(self.coarse_backend).make_ranker(
                    index, coarse_scorer, on_corruption=on_corruption
                )
            self._fine = FineSearcher(source, self.scheme)
            self._frame_ranker = None
            self._frame_fine = None
        self.options_digest = options_digest(
            {
                "engine": "partitioned",
                "scheme": self.scheme,
                "coarse_backend": self.coarse_backend,
                "coarse_scorer": coarse_scorer,
                "coarse_cutoff": coarse_cutoff,
                "min_fine_score": min_fine_score,
                "fine_mode": fine_mode,
                "both_strands": both_strands,
                "on_corruption": on_corruption,
            }
        )
        self.instruments = NULL_INSTRUMENTS
        if instruments is not None:
            self.set_instruments(instruments)

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Wire observability through the engine and its collaborators.

        Attaches the sink to the index reader (decode-cache metrics),
        the quarantining view if any, the sequence source (store fetch
        metrics), and the coarse ranker/scorer — so one registry sees
        the whole query path.  Passing ``None`` detaches everything.
        """
        self.instruments = coalesce(instruments)
        if hasattr(self.index, "set_instruments"):
            self.index.set_instruments(instruments)
        if hasattr(self.source, "set_instruments"):
            self.source.set_instruments(instruments)
        for ranker in (self._ranker, self._frame_ranker):
            if ranker is not None:
                ranker.set_instruments(instruments)
        if self._exhaustive is not None and hasattr(
            self._exhaustive, "set_instruments"
        ):
            self._exhaustive.set_instruments(instruments)

    def _query_codes(self, query: Sequence | np.ndarray) -> tuple[str, np.ndarray]:
        if isinstance(query, Sequence):
            return query.identifier, query.codes
        return "query", np.asarray(query, dtype=np.uint8)

    def _fine_with_policy(self, align, codes, candidates) -> list[SearchHit]:
        """Run a fine aligner, quarantining corrupt candidate records.

        Under ``"skip"``/``"fallback"`` a candidate whose store record
        fails its checksum is dropped (logged and counted) and the
        alignment retried without it; ``"raise"`` propagates.
        """
        candidates = [
            candidate
            for candidate in candidates
            if candidate.ordinal not in self._quarantined_sequences
        ]
        while True:
            try:
                return align(codes, candidates, min_score=self.min_fine_score)
            except CorruptionError as exc:
                ordinal = exc.ordinal
                if self.on_corruption != "skip" or ordinal is None:
                    raise
                if ordinal not in self._quarantined_sequences:
                    _LOG.warning(
                        "quarantining corrupt sequence record %d: %s",
                        ordinal,
                        exc,
                    )
                    self._quarantined_sequences.add(ordinal)
                    self.instruments.count("store.quarantined_sequences")
                candidates = [
                    candidate
                    for candidate in candidates
                    if candidate.ordinal != ordinal
                ]

    def coarse_rank(
        self,
        codes: np.ndarray,
        cutoff: int | None = None,
        deadline: Deadline | None = None,
    ) -> list:
        """Run only the coarse phase: ranked candidates, best first.

        The candidate type depends on the fine mode —
        :class:`~repro.search.results.CoarseCandidate` under ``"full"``,
        :class:`~repro.search.frames.FrameCandidate` under ``"frames"``
        — and either way ``ordinal``/``coarse_score`` carry the ranking.
        This is the fan-out point the sharded engine uses: it merges
        per-shard coarse rankings globally before any residue is read.
        """
        if cutoff is None:
            cutoff = self.coarse_cutoff
        if self.fine_mode == "frames":
            return self._frame_ranker.rank(codes, cutoff, deadline=deadline)
        return self._ranker.rank(codes, cutoff, deadline=deadline)

    def fine_align(
        self,
        codes: np.ndarray,
        candidates: list,
        deadline: Deadline | None = None,
    ) -> list[SearchHit]:
        """Run only the fine phase over pre-selected candidates.

        ``candidates`` must be the type :meth:`coarse_rank` produces
        for this engine's fine mode.  The corruption policy applies
        (corrupt store records are quarantined under ``"skip"``).

        Under a bounded ``deadline`` candidates are aligned in batches
        of :data:`DEADLINE_FINE_CHUNK`; once the deadline expires the
        remaining batches are dropped and the hits already scored are
        returned (re-ranked), so a partial fine phase still yields a
        correctly ordered prefix of the work done.
        """
        if self.fine_mode == "frames":
            align = self._frame_fine.align_frames
        else:
            align = self._fine.align_candidates
        deadline = ensure_deadline(deadline)
        if not deadline.bounded or len(candidates) <= DEADLINE_FINE_CHUNK:
            if deadline.expired():
                return []
            return self._fine_with_policy(align, codes, candidates)
        hits: list[SearchHit] = []
        for start in range(0, len(candidates), DEADLINE_FINE_CHUNK):
            if deadline.expired():
                break
            chunk = candidates[start : start + DEADLINE_FINE_CHUNK]
            hits.extend(self._fine_with_policy(align, codes, chunk))
        hits.sort(key=lambda hit: (-hit.score, -hit.coarse_score, hit.ordinal))
        return hits

    def _evaluate_one_strand(
        self, codes: np.ndarray, deadline: Deadline = NO_DEADLINE
    ) -> tuple[list[SearchHit], int, float, float]:
        """(ranked hits, candidates, coarse seconds, fine seconds)."""
        instruments = self.instruments
        started = time.perf_counter()
        with instruments.span("coarse"):
            candidates = self.coarse_rank(codes, deadline=deadline)
        coarse_done = time.perf_counter()
        with instruments.span("fine"):
            hits = self.fine_align(codes, candidates, deadline=deadline)
        fine_done = time.perf_counter()
        return (
            hits,
            len(candidates),
            coarse_done - started,
            fine_done - coarse_done,
        )

    def search(
        self,
        query: Sequence | np.ndarray,
        top_k: int = 10,
        deadline: Deadline | None = None,
    ) -> SearchReport:
        """Evaluate one query.

        Args:
            query: a :class:`Sequence` or a coded array.
            top_k: answers to return.
            deadline: optional per-query time budget.  Once expired the
                engine stops starting new work (coarse interval fetches,
                fine alignment batches, the reverse strand) and returns
                whatever it ranked in time, with the report's
                ``deadline_expired`` flag set.  An expired deadline
                never raises.

        Raises:
            SearchError: if the query is shorter than the interval
                length (it has no index terms) or ``top_k`` < 1.
        """
        if top_k < 1:
            raise SearchError(f"top_k must be >= 1, got {top_k}")
        deadline = ensure_deadline(deadline)
        identifier, codes = self._query_codes(query)
        if codes.shape[0] < self.index.params.interval_length:
            raise SearchError(
                f"query {identifier!r} is shorter than the interval "
                f"length {self.index.params.interval_length}"
            )

        instruments = self.instruments
        try:
            with instruments.span("search"):
                hits, candidates, coarse_seconds, fine_seconds = (
                    self._evaluate_one_strand(codes, deadline)
                )
                if self.both_strands and not deadline.expired():
                    reverse_hits, reverse_candidates, reverse_coarse, reverse_fine = (
                        self._evaluate_one_strand(
                            reverse_complement(codes), deadline
                        )
                    )
                    hits = _merge_strand_hits(hits, reverse_hits)
                    # Fine-phase work is done for BOTH orientations, so
                    # the examined count is their sum, not the max.
                    candidates = candidates + reverse_candidates
                    coarse_seconds += reverse_coarse
                    fine_seconds += reverse_fine
        except CorruptionError as exc:
            if self.on_corruption != "fallback":
                if instruments.wants_events:
                    instruments.emit_event(
                        self._query_event(
                            identifier, "error", error=str(exc)
                        )
                    )
                raise
            _LOG.warning(
                "index unusable (%s); answering %r with an exhaustive scan",
                exc,
                identifier,
            )
            instruments.count("partitioned.fallback_queries")
            report = self._exhaustive_report(query, top_k)
            if instruments.wants_events:
                instruments.emit_event(
                    self._query_event(
                        identifier,
                        "fallback",
                        candidates=report.candidates_examined,
                        hits=len(report.hits),
                        coarse_seconds=report.coarse_seconds,
                        fine_seconds=report.fine_seconds,
                    )
                )
            return report
        instruments.count("partitioned.queries")
        deadline_expired = deadline.expired()
        if deadline_expired:
            instruments.count("partitioned.deadline_expired")
        instruments.count("partitioned.candidates", candidates)
        instruments.observe("partitioned.coarse_seconds", coarse_seconds)
        instruments.observe("partitioned.fine_seconds", fine_seconds)
        instruments.observe(
            "partitioned.total_seconds", coarse_seconds + fine_seconds
        )
        if self.significance is not None:
            searched = self.index.collection.total_length
            hits = [
                replace(
                    hit,
                    evalue=self.significance.evalue(
                        hit.score, int(codes.shape[0]), searched
                    ),
                )
                for hit in hits
            ]
        if instruments.wants_events:
            instruments.emit_event(
                self._query_event(
                    identifier,
                    "partial" if deadline_expired else "ok",
                    candidates=candidates,
                    hits=len(hits[:top_k]),
                    coarse_seconds=coarse_seconds,
                    fine_seconds=fine_seconds,
                    deadline_expired=deadline_expired,
                )
            )
        return SearchReport(
            query_identifier=identifier,
            hits=hits[:top_k],
            candidates_examined=candidates,
            coarse_seconds=coarse_seconds,
            fine_seconds=fine_seconds,
            quarantined_intervals=self.quarantined_intervals,
            quarantined_sequences=len(self._quarantined_sequences),
            deadline_expired=deadline_expired,
        )

    def _query_event(
        self,
        query_id: str,
        outcome: str,
        candidates: int = 0,
        hits: int = 0,
        coarse_seconds: float = 0.0,
        fine_seconds: float = 0.0,
        **extra,
    ) -> dict:
        """One eventlog line's payload (see ``docs/OBSERVABILITY.md``)."""
        event = {
            "event": "query",
            "engine": "partitioned",
            "query_id": query_id,
            "options": self.options_digest,
            "outcome": outcome,
            "candidates": candidates,
            "hits": hits,
            "coarse_seconds": coarse_seconds,
            "fine_seconds": fine_seconds,
            "total_seconds": coarse_seconds + fine_seconds,
            "quarantined_intervals": self.quarantined_intervals,
            "quarantined_sequences": len(self._quarantined_sequences),
        }
        event.update(extra)
        return event

    @property
    def quarantined_intervals(self) -> int:
        """Posting lists quarantined as corrupt so far (0 when none)."""
        return len(self._quarantine.quarantined) if self._quarantine else 0

    @property
    def quarantined_sequences(self) -> int:
        """Store records quarantined as corrupt so far (0 when none)."""
        return len(self._quarantined_sequences)

    def _exhaustive_report(
        self, query: Sequence | np.ndarray, top_k: int
    ) -> SearchReport:
        """Degraded path: answer from the sequence store alone."""
        from repro.search.exhaustive import ExhaustiveSearcher

        if self._exhaustive is None:
            self._exhaustive = ExhaustiveSearcher(
                self.source,
                scheme=self.scheme,
                min_score=self.min_fine_score,
                instruments=self.instruments
                if self.instruments.enabled
                else None,
            )
        report = self._exhaustive.search(query, top_k=top_k)
        return replace(
            report,
            degraded=True,
            quarantined_intervals=self.quarantined_intervals,
            quarantined_sequences=len(self._quarantined_sequences),
        )

    def search_batch(
        self,
        queries: list[Sequence],
        top_k: int = 10,
        workers: int | None = None,
        deadline: Deadline | None = None,
    ) -> list[SearchReport]:
        """Evaluate a list of queries, reports in query order.

        Args:
            queries: the batch (any mix of records and coded arrays).
            top_k: answers per query.
            workers: query-evaluation threads.  ``None`` or 1 keeps the
                sequential loop; larger values evaluate queries
                concurrently — the alignment kernel and posting decode
                run in numpy, which releases the GIL, so batches see
                real wall-clock overlap.  Results are identical to the
                sequential loop (per-query timings aside).
            deadline: optional time budget shared by the *whole* batch;
                queries evaluated after expiry return flagged empty
                partials.

        Raises:
            SearchError: if ``workers`` < 1.
        """
        return run_search_batch(
            self.search, queries, top_k, workers, self.instruments,
            deadline=deadline,
        )


def run_search_batch(
    search,
    queries: list[Sequence],
    top_k: int,
    workers: int | None,
    instruments: Instruments | None = None,
    deadline: Deadline | None = None,
) -> list[SearchReport]:
    """Drive a batch through a ``search(query, top_k=...)`` callable.

    ``workers`` > 1 fans the queries out over a thread pool; report
    order always matches query order.  Shared by the partitioned and
    sharded engines (and any engine with the same ``search`` shape).

    A ``deadline`` (if given) is shared by every query in the batch and
    forwarded to the underlying ``search`` callable, which must then
    accept a ``deadline`` keyword.

    With instrumentation attached the batch reports ``batch.queries``,
    the ``batch.workers`` gauge, a ``batch.wall_seconds`` histogram,
    and per-worker ``batch.worker.<name>.queries`` counters (threaded
    runs only) — every instrument is mutation-locked, so concurrent
    workers lose no updates.

    Raises:
        SearchError: if ``workers`` < 1.
    """
    if workers is not None and workers < 1:
        raise SearchError(f"workers must be >= 1, got {workers}")
    if not queries:
        return []
    if deadline is not None:
        import functools

        # Only wrap when a deadline was actually given, so callables
        # without a deadline keyword keep working unchanged.
        search = functools.partial(search, deadline=deadline)
    instruments = coalesce(instruments)
    started = time.perf_counter()
    if workers is None or workers == 1 or len(queries) == 1:
        reports = [search(query, top_k=top_k) for query in queries]
        instruments.set_gauge("batch.workers", 1)
    else:
        import threading
        from concurrent.futures import ThreadPoolExecutor

        def evaluate(query):
            report = search(query, top_k=top_k)
            instruments.count(
                f"batch.worker.{threading.current_thread().name}.queries"
            )
            return report

        pool_size = min(workers, len(queries))
        instruments.set_gauge("batch.workers", pool_size)
        with ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="search-batch"
        ) as pool:
            reports = list(pool.map(evaluate, queries))
    instruments.count("batch.queries", len(queries))
    instruments.observe(
        "batch.wall_seconds", time.perf_counter() - started
    )
    return reports


def _merge_strand_hits(
    forward: list[SearchHit], reverse: list[SearchHit]
) -> list[SearchHit]:
    """Keep each sequence's better orientation, re-ranked."""
    best: dict[int, SearchHit] = {}
    for hit in forward:
        best[hit.ordinal] = hit
    for hit in reverse:
        current = best.get(hit.ordinal)
        if current is None or hit.score > current.score:
            # replace() keeps every field (present and future) intact;
            # rebuilding field-by-field silently dropped new ones.
            best[hit.ordinal] = replace(hit, strand="-")
    merged = list(best.values())
    merged.sort(key=lambda hit: (-hit.score, -hit.coarse_score, hit.ordinal))
    return merged

"""Precomputed per-sequence seed tables for the scanning baselines.

The FASTA- and BLAST-like baselines repeatedly join a query's k-mers
against each collection sequence.  A :class:`SeedTable` extracts every
sequence's k-mers once, sorted by interval id with co-sorted offsets,
so each join is a pair of binary searches.  This is per-sequence state,
not an inverted index: queries still visit every sequence, which is
what makes these baselines exhaustive.
"""

from __future__ import annotations

import numpy as np

from repro.index.intervals import IntervalExtractor
from repro.index.store import SequenceSource


class SeedTable:
    """Sorted k-mer arrays for every sequence in a collection."""

    def __init__(self, source: SequenceSource, seed_length: int) -> None:
        self.seed_length = seed_length
        extractor = IntervalExtractor(seed_length)
        self._ids: list[np.ndarray] = []
        self._positions: list[np.ndarray] = []
        for ordinal in range(len(source)):
            ids, positions = extractor.extract(source.codes(ordinal))
            order = np.argsort(ids, kind="stable")
            self._ids.append(ids[order])
            self._positions.append(positions[order])

    def __len__(self) -> int:
        return len(self._ids)

    def positions_of(self, ordinal: int, interval_id: int) -> np.ndarray:
        """Offsets of one interval in one sequence (possibly empty)."""
        ids = self._ids[ordinal]
        lo = int(np.searchsorted(ids, interval_id, side="left"))
        hi = int(np.searchsorted(ids, interval_id, side="right"))
        return self._positions[ordinal][lo:hi]

    def shared_with(
        self, ordinal: int, query_ids: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """(query-slot, sequence offsets) for every shared interval id."""
        ids = self._ids[ordinal]
        if not ids.shape[0] or not query_ids.shape[0]:
            return []
        lows = np.searchsorted(ids, query_ids, side="left")
        highs = np.searchsorted(ids, query_ids, side="right")
        positions = self._positions[ordinal]
        return [
            (slot, positions[int(lows[slot]) : int(highs[slot])])
            for slot in np.flatnonzero(highs > lows)
        ]


def query_seed_groups(
    query_codes: np.ndarray, seed_length: int
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Distinct query seed ids and their offset groups."""
    extractor = IntervalExtractor(seed_length)
    ids, positions = extractor.extract(query_codes)
    if not ids.shape[0]:
        return np.empty(0, dtype=np.int64), []
    order = np.argsort(ids, kind="stable")
    ids = ids[order]
    positions = positions[order]
    unique_ids, starts, counts = np.unique(
        ids, return_index=True, return_counts=True
    )
    groups = [
        positions[int(start) : int(start) + int(count)]
        for start, count in zip(starts, counts)
    ]
    return unique_ids, groups

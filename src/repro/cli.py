"""Command-line front end.

Subcommands mirror the life cycle of the paper's system::

    repro generate  — synthesise a FASTA collection with planted families
    repro build     — build a (possibly sharded) database directory
    repro index     — build the interval index (+ sequence store) on disk
    repro stats     — print index size statistics
    repro search    — evaluate FASTA queries against an on-disk index
    repro profile   — profile a query workload, write BENCH_profile.json
    repro bench     — run a benchmark suite / gate against a baseline
    repro align     — pretty-print the local alignment of two sequences
    repro verify    — audit a database directory's integrity
    repro repair    — rebuild a database's index from its store
    repro ingest    — append FASTA records as a delta shard (live layer)
    repro delete    — tombstone records by identifier
    repro compact   — fold deltas and tombstones back into base shards
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.align.pairwise import local_align
from repro.align.scoring import ScoringScheme
from repro.errors import ReproError
from repro.index.builder import IndexParameters, build_index
from repro.index.statistics import collect_statistics
from repro.index.storage import read_index, write_index
from repro.index.store import read_store, write_store
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.fasta import read_fasta, write_fasta
from repro.sequences.mutate import MutationModel
from repro.workloads.queries import make_family_queries
from repro.workloads.synthetic import WorkloadSpec, generate_collection


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        num_families=args.families,
        family_size=args.family_size,
        num_background=args.background,
        mean_length=args.mean_length,
        mutation=MutationModel(args.mutation_rate, 0.02, 0.02),
        seed=args.seed,
    )
    collection = generate_collection(spec)
    write_fasta(collection.sequences, args.output)
    print(
        f"wrote {len(collection.sequences)} sequences "
        f"({collection.total_bases} bases) to {args.output}"
    )
    if args.queries:
        cases = make_family_queries(
            collection, args.num_queries, args.query_length, seed=args.seed + 1
        )
        write_fasta([case.query for case in cases], args.queries)
        print(f"wrote {len(cases)} queries to {args.queries}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    sequences = list(read_fasta(args.collection))
    params = IndexParameters(
        interval_length=args.interval_length,
        stride=args.stride,
        include_positions=not args.no_positions,
    )
    started = time.perf_counter()
    index = build_index(sequences, params)
    elapsed = time.perf_counter() - started
    index_bytes = write_index(index, args.output)
    print(
        f"indexed {len(sequences)} sequences in {elapsed:.2f}s: "
        f"{index.vocabulary_size} intervals, {index_bytes} bytes -> {args.output}"
    )
    if args.store:
        store_bytes = write_store(sequences, args.store, coding=args.coding)
        print(f"wrote {args.coding} sequence store ({store_bytes} bytes) -> {args.store}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with read_index(args.index) as index:
        stats = collect_statistics(index)
    print(f"interval length     : {stats.interval_length}")
    print(f"stride              : {stats.stride}")
    print(f"vocabulary size     : {stats.vocabulary_size}")
    print(f"sequence pointers   : {stats.pointer_count}")
    print(f"interval occurrences: {stats.occurrence_count}")
    print(f"compressed bytes    : {stats.compressed_bytes}")
    print(f"bits per pointer    : {stats.bits_per_pointer:.2f}")
    print(f"compression ratio   : {stats.compression_ratio:.2f}x")
    print(f"index/collection    : {stats.index_to_collection_ratio:.3f} bytes/base")
    print(f"df quantiles 50/90/99: {stats.df_quantiles}")
    return 0


def _print_instrumentation(
    instruments, queries: int, wall: float, coarse_backend: str | None = None
) -> None:
    """The ``--stats`` tail: phases, cache, quarantine, counters, spans."""
    from repro.instrumentation.export import format_span_tree
    from repro.instrumentation.profiling import snapshot_from_instruments

    snapshot = snapshot_from_instruments(
        instruments, queries=queries, wall_seconds=wall
    )
    print("--- instrumentation ---")
    if coarse_backend is not None:
        print(f"coarse backend: {coarse_backend}")
    print(snapshot.describe())
    for name, value in sorted(snapshot.counters.items()):
        print(f"counter {name:<38} {value}")
    tree = format_span_tree(instruments.tracer)
    if tree:
        print("--- spans ---")
        print(tree)


def _cmd_search(args: argparse.Namespace) -> int:
    significance = None
    if args.evalues:
        from repro.align.statistics import calibrate_gapped

        significance = calibrate_gapped(ScoringScheme())
    instruments = None
    eventlog = None
    wants_instruments = (
        args.stats
        or args.trace_out is not None
        or args.metrics_out is not None
        or args.eventlog is not None
    )
    if wants_instruments:
        from repro.instrumentation.instruments import Instruments

        if args.eventlog is not None:
            from repro.instrumentation.eventlog import QueryEventLog

            eventlog = QueryEventLog(
                args.eventlog,
                sample_every=args.eventlog_sample,
                slow_seconds=(
                    args.slow_ms / 1000.0 if args.slow_ms is not None else None
                ),
            )
        instruments = Instruments(eventlog=eventlog)
    try:
        with read_index(args.index) as index, read_store(args.store) as store:
            engine = PartitionedSearchEngine(
                index,
                store,
                coarse_scorer=args.scorer,
                coarse_cutoff=args.cutoff,
                fine_mode=args.fine_mode,
                both_strands=args.both_strands,
                significance=significance,
                instruments=instruments,
            )
            evaluated = 0
            started = time.perf_counter()
            for query in read_fasta(args.queries):
                report = engine.search(query, top_k=args.top)
                evaluated += 1
                print(
                    f"query {report.query_identifier}: "
                    f"{len(report.hits)} answers, "
                    f"{report.candidates_examined} candidates, "
                    f"{report.total_seconds * 1000:.1f} ms"
                )
                for rank, hit in enumerate(report.hits, start=1):
                    line = (
                        f"  {rank:2d}. {hit.identifier:<20} "
                        f"score={hit.score:<6d} coarse={hit.coarse_score:.1f}"
                    )
                    if args.both_strands:
                        line += f" strand={hit.strand}"
                    if hit.evalue is not None:
                        line += f" evalue={hit.evalue:.2e}"
                    print(line)
            if args.stats and instruments is not None:
                _print_instrumentation(
                    instruments,
                    evaluated,
                    time.perf_counter() - started,
                    coarse_backend=engine.coarse_backend,
                )
            if args.metrics_out is not None:
                from repro.instrumentation.export import write_metrics

                target = write_metrics(
                    instruments.metrics,
                    args.metrics_out,
                    meta={"queries": evaluated},
                )
                print(f"wrote metrics -> {target}")
            if args.trace_out is not None:
                from repro.instrumentation.export import write_trace

                target = write_trace(
                    instruments.tracer,
                    args.trace_out,
                    meta={"queries": evaluated},
                )
                print(f"wrote trace -> {target}")
            if eventlog is not None:
                print(
                    f"event log: {eventlog.written}/{eventlog.seen} "
                    f"queries logged -> {args.eventlog}"
                )
    finally:
        if eventlog is not None:
            eventlog.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import BenchDocument, compare_documents
    from repro.bench.compare import parse_threshold_overrides

    if args.compare:
        baseline_path, current_path = args.compare
        baseline = BenchDocument.load(baseline_path)
        current = BenchDocument.load(current_path)
        try:
            overrides = parse_threshold_overrides(args.threshold_for or [])
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = compare_documents(
            baseline,
            current,
            default_threshold=args.threshold,
            thresholds=overrides,
            noise_floor=args.noise_floor,
        )
        for entry in report.comparisons:
            print(entry.describe())
        for line in report.warnings():
            print(line, file=sys.stderr)
        print(report.summary())
        if not report.ok:
            print(
                f"FAIL: {len(report.regressions)} metric(s) regressed "
                f"beyond the {args.threshold:g}x threshold"
            )
            return 1
        print("PASS: no regressions")
        return 0

    from repro.bench import (
        run_experiments,
        run_kernel_bench,
        run_quick,
        run_shard_sweep,
    )

    sleep_seconds = (args.inject_sleep_ms or 0.0) / 1000.0
    if args.suite == "quick":
        document = run_quick(
            num_queries=args.num_queries,
            repeat=args.repeat,
            seed=args.seed,
            inject_sleep_seconds=sleep_seconds,
        )
        default_output = Path("BENCH_quick.json")
    elif args.suite == "kernel":
        document = run_kernel_bench(
            num_sequences=args.sequences or 1200,
            rounds=args.repeat if args.repeat > 2 else 12,
        )
        default_output = Path("BENCH_kernel.json")
    elif args.suite == "shards":
        document = run_shard_sweep(
            shard_counts=args.shards,
            workers=args.workers,
            num_sequences=args.sequences or 400,
            num_queries=args.num_queries,
        )
        default_output = Path("BENCH_shards.json")
    elif args.suite == "lsm":
        from repro.bench import run_lsm_bench

        document = run_lsm_bench(
            num_sequences=args.sequences or 240,
            num_queries=args.num_queries,
            seed=args.seed,
        )
        default_output = Path("BENCH_lsm.json")
    elif args.suite == "backends":
        from repro.bench import run_backends_bench

        document = run_backends_bench(
            num_queries=args.num_queries,
            seed=args.seed,
        )
        default_output = Path("BENCH_backends.json")
    else:
        names = args.experiments or ["E3"]
        document = run_experiments(names)
        default_output = Path(
            f"BENCH_{names[0].lower()}.json"
            if len(names) == 1
            else "BENCH_experiments.json"
        )
    target = document.write(args.output or default_output)
    print(document.describe())
    print(f"wrote benchmark document -> {target}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.database import Database
    from repro.instrumentation.instruments import Instruments
    from repro.search.resilience import RetryPolicy, ShardResilience
    from repro.serving.server import SearchServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        default_deadline_seconds=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
        max_in_flight=args.max_in_flight,
        queue_limit=args.queue_limit,
    )
    with Database.open(args.database) as database:
        resilience = None
        if database.num_shards > 1:
            resilience = ShardResilience(
                shard_timeout=(
                    args.shard_timeout_ms / 1000.0
                    if args.shard_timeout_ms
                    else None
                ),
                retry=RetryPolicy(max_attempts=args.shard_attempts),
                breaker_failures=args.breaker_failures,
            )
        engine = database.engine(
            both_strands=args.both_strands, resilience=resilience
        )
        # A served deployment always gets instruments: /metrics and
        # /stats are part of the surface, not an opt-in.
        server = SearchServer(engine, config, instruments=Instruments())
        server.start()
        print(f"serving {args.database} on {server.url} (Ctrl-C to stop)")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            server.stop()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serving.loadgen import run_loadgen, run_serving_benchmark

    if args.url:
        if not args.queries:
            print(
                "error: --url mode needs --queries (a FASTA of query "
                "sequences)",
                file=sys.stderr,
            )
            return 2
        texts = [record.text for record in read_fasta(args.queries)]
        result = run_loadgen(
            args.url,
            texts,
            clients=args.clients,
            duration_seconds=args.duration,
            mode=args.mode,
            rate=args.rate,
            top_k=args.top,
            deadline_ms=args.deadline_ms,
        )
        document = result.to_document({"url": args.url})
    else:
        result, document = run_serving_benchmark(
            shards=args.shards,
            fault_shard=args.fault_shard,
            clients=args.clients,
            duration_seconds=args.duration,
            mode=args.mode,
            rate=args.rate,
            deadline_ms=args.deadline_ms or 500.0,
            max_in_flight=args.max_in_flight,
            queue_limit=args.queue_limit,
        )
    print(result.summary())
    target = document.write(args.output or Path("BENCH_serving.json"))
    print(f"wrote benchmark document -> {target}")
    status = 0
    if args.fail_on_5xx and result.server_errors:
        print(
            f"FAIL: {result.server_errors} 5xx response(s) — the service "
            "should shed or degrade, never error",
            file=sys.stderr,
        )
        status = 1
    if args.expect_degraded and not result.degraded:
        print(
            "FAIL: expected degraded responses (fault-injected shard) "
            "but saw none",
            file=sys.stderr,
        )
        status = 1
    return status


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.instrumentation.profiling import profile_search

    given = [args.index, args.store, args.queries]
    if any(given) and not all(given):
        print(
            "error: profile needs --index, --store and --queries together "
            "(or none of them, for a synthetic workload)",
            file=sys.stderr,
        )
        return 1

    def run(engine, queries, meta):
        snapshot = profile_search(
            engine,
            queries,
            top_k=args.top,
            repeat=args.repeat,
            meta=meta,
        )
        target = snapshot.write(args.output)
        print(snapshot.describe())
        print(f"wrote profile -> {target}")
        return 0

    if args.index:
        with read_index(args.index) as index, read_store(args.store) as store:
            if args.cache:
                index.enable_decode_cache(args.cache)
            engine = PartitionedSearchEngine(
                index,
                store,
                coarse_scorer=args.scorer,
                coarse_cutoff=args.cutoff,
            )
            queries = list(read_fasta(args.queries))
            return run(
                engine,
                queries,
                {"workload": str(args.queries), "cutoff": args.cutoff},
            )

    # Synthetic in-memory workload: self-contained, reproducible, small
    # enough for CI.
    from repro.index.store import MemorySequenceSource

    spec = WorkloadSpec(
        num_families=args.families,
        family_size=args.family_size,
        num_background=args.background,
        mean_length=args.mean_length,
        mutation=MutationModel(0.1, 0.02, 0.02),
        seed=args.seed,
    )
    collection = generate_collection(spec)
    cases = make_family_queries(
        collection, args.num_queries, args.query_length, seed=args.seed + 1
    )
    index = build_index(collection.sequences, IndexParameters())
    if args.cache:
        index.enable_decode_cache(args.cache)
    engine = PartitionedSearchEngine(
        index,
        MemorySequenceSource(collection.sequences),
        coarse_scorer=args.scorer,
        coarse_cutoff=args.cutoff,
    )
    return run(
        engine,
        [case.query for case in cases],
        {
            "workload": "synthetic",
            "sequences": len(collection.sequences),
            "total_bases": collection.total_bases,
            "cutoff": args.cutoff,
            "seed": args.seed,
        },
    )


def _cmd_db_create(args: argparse.Namespace) -> int:
    from repro.database import Database

    params = IndexParameters(
        interval_length=args.interval_length, stride=args.stride
    )
    coarse_params = {}
    if args.signature_fpr is not None:
        coarse_params["false_positive_rate"] = args.signature_fpr
    if args.signature_hashes is not None:
        coarse_params["hashes"] = args.signature_hashes
    if args.docs_per_block is not None:
        coarse_params["docs_per_block"] = args.docs_per_block
    if coarse_params and args.coarse_backend != "signature":
        print(
            "error: --signature-fpr/--signature-hashes/--docs-per-block "
            "need --coarse-backend signature",
            file=sys.stderr,
        )
        return 2
    started = time.perf_counter()
    with Database.create(
        read_fasta(args.collection), args.output, params=params,
        coding=args.coding, shards=args.shards, workers=args.workers,
        coarse_backend=args.coarse_backend,
        coarse_params=coarse_params or None,
    ) as database:
        elapsed = time.perf_counter() - started
        print(database.describe())
        print(
            f"built {database.num_shards} shard(s) with "
            f"{args.workers} worker(s) in {elapsed:.2f}s"
        )
    return 0


def _cmd_db_info(args: argparse.Namespace) -> int:
    from repro.database import Database

    with Database.open(args.database) as database:
        print(database.describe())
    return 0


def _cmd_db_search(args: argparse.Namespace) -> int:
    from repro.database import Database

    with Database.open(args.database) as database:
        for query in read_fasta(args.queries):
            report = database.search(
                query,
                top_k=args.top,
                coarse_cutoff=args.cutoff,
                both_strands=args.both_strands,
                with_evalues=args.evalues,
            )
            print(
                f"query {report.query_identifier}: {len(report.hits)} answers"
            )
            for rank, hit in enumerate(report.hits, start=1):
                line = f"  {rank:2d}. {hit.identifier:<20} score={hit.score}"
                if args.both_strands:
                    line += f" strand={hit.strand}"
                if hit.evalue is not None:
                    line += f" evalue={hit.evalue:.2e}"
                print(line)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.database import Database

    report = Database.verify(args.database)
    for note in report.notes:
        print(f"note: {note}")
    for issue in report.issues:
        print(f"PROBLEM: {issue}")
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.database import Database

    before = Database.verify(args.database)
    if before.ok and not args.force:
        print(f"{args.database}: already intact, nothing to repair "
              "(use --force to rebuild anyway)")
        return 0
    for issue in before.issues:
        print(f"repairing: {issue}")
    with Database.repair(args.database) as database:
        print(f"rebuilt index from store: {database.describe()}")
    after = Database.verify(args.database)
    print(after.summary())
    return 0 if after.ok else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.database import Database

    records = list(read_fasta(args.collection))
    with Database.open(args.database) as database:
        generation = database.add_records(records)
        print(
            f"ingested {len(records)} record(s) as one delta shard; "
            f"generation {generation}, {database.delta_shards} delta "
            f"shard(s) pending compaction"
        )
    return 0


def _cmd_delete(args: argparse.Namespace) -> int:
    from repro.database import Database

    with Database.open(args.database) as database:
        before = len(database)
        generation = database.delete(args.identifiers)
        print(
            f"deleted {before - len(database)} record(s); "
            f"generation {generation}, {database.tombstone_count} "
            f"tombstone(s) pending compaction"
        )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.database import Database

    started = time.perf_counter()
    with Database.open(args.database) as database:
        before = database.generation
        generation = database.compact(
            shards=args.shards, workers=args.workers
        )
        if generation == before:
            print(f"{args.database}: nothing to compact")
        else:
            print(
                f"compacted into {database.num_shards} base shard(s) in "
                f"{time.perf_counter() - started:.2f}s; generation "
                f"{generation}"
            )
    return 0


def _cmd_oracle(args: argparse.Namespace) -> int:
    from repro.eval.metrics import ranking_overlap
    from repro.search.exhaustive import ExhaustiveSearcher

    queries = list(read_fasta(args.queries))
    if not queries:
        print("error: no queries", file=sys.stderr)
        return 1
    longest = max(len(query) for query in queries)
    with read_index(args.index) as index, read_store(args.store) as store:
        engine = PartitionedSearchEngine(
            index, store, coarse_cutoff=args.cutoff
        )
        exhaustive = ExhaustiveSearcher(store, max_query_length=longest)
        overlaps = []
        speedups = []
        print(f"{'query':<24} {'part ms':>8} {'exh ms':>8} "
              f"{'overlap@' + str(args.top):>10}")
        for query in queries:
            partitioned = engine.search(query, top_k=args.top)
            oracle = exhaustive.search(query, top_k=args.top)
            overlap = ranking_overlap(
                partitioned.ordinals(), oracle.ordinals(), args.top
            )
            overlaps.append(overlap)
            if partitioned.total_seconds > 0:
                speedups.append(
                    oracle.total_seconds / partitioned.total_seconds
                )
            print(
                f"{query.identifier:<24} "
                f"{partitioned.total_seconds * 1000:>8.1f} "
                f"{oracle.total_seconds * 1000:>8.1f} "
                f"{overlap:>10.2f}"
            )
        mean_overlap = sum(overlaps) / len(overlaps)
        mean_speedup = sum(speedups) / len(speedups) if speedups else 0.0
        print(f"\nmean overlap@{args.top}: {mean_overlap:.2f}   "
              f"mean speedup: {mean_speedup:.1f}x")
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    first = next(iter(read_fasta(args.first)))
    second = next(iter(read_fasta(args.second)))
    scheme = ScoringScheme(args.match, args.mismatch, args.gap)
    alignment = local_align(first.codes, second.codes, scheme)
    print(f"{first.identifier} vs {second.identifier}")
    print(alignment.pretty())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partitioned interval-index search for nucleotide databases",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesise a collection with planted families"
    )
    generate.add_argument("--families", type=int, default=20)
    generate.add_argument("--family-size", type=int, default=5)
    generate.add_argument("--background", type=int, default=400)
    generate.add_argument("--mean-length", type=int, default=1000)
    generate.add_argument("--mutation-rate", type=float, default=0.1)
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument("--queries", type=Path, default=None)
    generate.add_argument("--num-queries", type=int, default=20)
    generate.add_argument("--query-length", type=int, default=200)
    generate.add_argument("-o", "--output", type=Path, required=True)
    generate.set_defaults(handler=_cmd_generate)

    index = commands.add_parser("index", help="build an on-disk index")
    index.add_argument("collection", type=Path)
    index.add_argument("-o", "--output", type=Path, required=True)
    index.add_argument("-k", "--interval-length", type=int, default=8)
    index.add_argument("--stride", type=int, default=1)
    index.add_argument("--no-positions", action="store_true")
    index.add_argument("--store", type=Path, default=None)
    index.add_argument("--coding", choices=("direct", "raw"), default="direct")
    index.set_defaults(handler=_cmd_index)

    stats = commands.add_parser("stats", help="print index statistics")
    stats.add_argument("index", type=Path)
    stats.set_defaults(handler=_cmd_stats)

    search = commands.add_parser("search", help="evaluate FASTA queries")
    search.add_argument("index", type=Path)
    search.add_argument("store", type=Path)
    search.add_argument("queries", type=Path)
    search.add_argument("--cutoff", type=int, default=100)
    search.add_argument("--top", type=int, default=10)
    search.add_argument(
        "--scorer",
        choices=("count", "idf", "normalised", "diagonal"),
        default="count",
    )
    search.add_argument(
        "--fine-mode", choices=("full", "frames"), default="full"
    )
    search.add_argument("--both-strands", action="store_true")
    search.add_argument(
        "--evalues",
        action="store_true",
        help="calibrate Gumbel parameters and report E-values",
    )
    search.add_argument(
        "--stats",
        action="store_true",
        help="print instrumentation counters, phase latencies and the "
        "captured span tree after the workload",
    )
    search.add_argument(
        "--metrics-out", type=Path, default=None, metavar="FILE",
        help="export the metrics registry after the workload "
        "(.json -> JSON snapshot, anything else -> Prometheus text)",
    )
    search.add_argument(
        "--trace-out", type=Path, default=None, metavar="FILE",
        help="export captured spans as Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    search.add_argument(
        "--eventlog", type=Path, default=None, metavar="FILE",
        help="append one JSONL record per evaluated query to FILE",
    )
    search.add_argument(
        "--eventlog-sample", type=int, default=1, metavar="N",
        help="log every Nth query (slow queries are always logged)",
    )
    search.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="queries at or above this latency bypass event-log sampling",
    )
    search.set_defaults(handler=_cmd_search)

    bench = commands.add_parser(
        "bench",
        help="run a benchmark suite to a canonical BENCH_*.json, or "
        "gate one document against a baseline",
    )
    bench.add_argument(
        "--suite",
        choices=("quick", "kernel", "shards", "lsm", "backends",
                 "experiments"),
        default="quick",
        help="which producer to run (ignored with --compare)",
    )
    bench.add_argument(
        "--experiments", nargs="+", default=None, metavar="NAME",
        help="harness experiments for --suite experiments (e.g. E3 E4)",
    )
    bench.add_argument("-o", "--output", type=Path, default=None)
    bench.add_argument(
        "--compare", nargs=2, metavar=("BASELINE", "CURRENT"),
        default=None,
        help="compare two canonical documents; exit 1 on any regression",
    )
    bench.add_argument(
        "--threshold", type=float, default=1.5, metavar="RATIO",
        help="default tolerated current/baseline ratio (--compare)",
    )
    bench.add_argument(
        "--threshold-for", action="append", default=None,
        metavar="NAME=RATIO",
        help="per-metric (or name-prefix) threshold override; repeatable",
    )
    bench.add_argument(
        "--noise-floor", type=float, default=0.05, metavar="VALUE",
        help="skip metrics below this value in both documents",
    )
    bench.add_argument("--num-queries", type=int, default=8)
    bench.add_argument("--repeat", type=int, default=2)
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts for --suite shards",
    )
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument(
        "--sequences", type=int, default=None,
        help="collection size (default: 400 for shards, 1200 for kernel)",
    )
    bench.add_argument(
        "--inject-sleep-ms", type=float, default=None,
        help=argparse.SUPPRESS,
    )
    bench.set_defaults(handler=_cmd_bench)

    profile = commands.add_parser(
        "profile",
        help="profile a query workload and write a BENCH_profile.json",
    )
    profile.add_argument(
        "--index", type=Path, default=None,
        help="on-disk index (omit for a synthetic in-memory workload)",
    )
    profile.add_argument("--store", type=Path, default=None)
    profile.add_argument("--queries", type=Path, default=None)
    profile.add_argument("--cutoff", type=int, default=100)
    profile.add_argument("--top", type=int, default=10)
    profile.add_argument(
        "--repeat", type=int, default=1,
        help="whole-workload repetitions (>=2 exercises the decode cache)",
    )
    profile.add_argument(
        "--scorer",
        choices=("count", "idf", "normalised", "diagonal"),
        default="count",
    )
    profile.add_argument(
        "--cache", type=int, default=0, metavar="ENTRIES",
        help="enable the section-A decode cache with this many entries",
    )
    profile.add_argument("--families", type=int, default=8)
    profile.add_argument("--family-size", type=int, default=4)
    profile.add_argument("--background", type=int, default=60)
    profile.add_argument("--mean-length", type=int, default=400)
    profile.add_argument("--num-queries", type=int, default=8)
    profile.add_argument("--query-length", type=int, default=120)
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument(
        "-o", "--output", type=Path, default=Path("BENCH_profile.json")
    )
    profile.set_defaults(handler=_cmd_profile)

    serve = commands.add_parser(
        "serve",
        help="serve a database over HTTP (deadlines + admission control)",
    )
    serve.add_argument("database", type=Path, help="database directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--deadline-ms", type=float, default=2000.0,
        help="default per-request deadline (0 disables)",
    )
    serve.add_argument("--max-in-flight", type=int, default=4)
    serve.add_argument("--queue-limit", type=int, default=16)
    serve.add_argument(
        "--shard-timeout-ms", type=float, default=0.0,
        help="per-shard attempt timeout (sharded databases; 0 disables)",
    )
    serve.add_argument(
        "--shard-attempts", type=int, default=3,
        help="attempts per shard call before the shard is dropped",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=5,
        help="consecutive failures that open a shard's circuit breaker",
    )
    serve.add_argument("--both-strands", action="store_true")
    serve.set_defaults(handler=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive load at a search server, write BENCH_serving.json",
    )
    loadgen.add_argument(
        "--url",
        help="target an already-running server (default: boot a "
        "self-contained fault-injectable benchmark server)",
    )
    loadgen.add_argument(
        "--queries", type=Path,
        help="FASTA of query sequences (--url mode)",
    )
    loadgen.add_argument(
        "--shards", type=int, default=3,
        help="shards of the self-contained benchmark collection",
    )
    loadgen.add_argument(
        "--fault-shard", type=int, default=None,
        help="zero this shard's posting blob before serving",
    )
    loadgen.add_argument("--clients", type=int, default=4)
    loadgen.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds to keep driving load",
    )
    loadgen.add_argument("--mode", choices=("closed", "open"),
                         default="closed")
    loadgen.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrival rate, requests/second",
    )
    loadgen.add_argument("--deadline-ms", type=float, default=None)
    loadgen.add_argument("--top", type=int, default=5)
    loadgen.add_argument("--max-in-flight", type=int, default=4)
    loadgen.add_argument("--queue-limit", type=int, default=8)
    loadgen.add_argument("-o", "--output", type=Path, default=None)
    loadgen.add_argument(
        "--fail-on-5xx", action="store_true",
        help="exit 1 if any 5xx response was seen",
    )
    loadgen.add_argument(
        "--expect-degraded", action="store_true",
        help="exit 1 unless degraded (shard-dropped) responses were seen",
    )
    loadgen.set_defaults(handler=_cmd_loadgen)

    for name, help_text in (
        ("build", "build a persistent (optionally sharded) database"),
        ("db-create", "build a persistent database directory"),
    ):
        db_create = commands.add_parser(name, help=help_text)
        db_create.add_argument("collection", type=Path)
        db_create.add_argument("-o", "--output", type=Path, required=True)
        db_create.add_argument("-k", "--interval-length", type=int, default=8)
        db_create.add_argument("--stride", type=int, default=1)
        db_create.add_argument(
            "--coding", choices=("direct", "raw"), default="direct"
        )
        db_create.add_argument(
            "--shards", type=int, default=1, metavar="N",
            help="split the collection into N contiguous shards "
            "(1 = classic single-index layout)",
        )
        db_create.add_argument(
            "--workers", type=int, default=1, metavar="M",
            help="build up to M shards in parallel worker processes",
        )
        db_create.add_argument(
            "--coarse-backend", choices=("inverted", "signature"),
            default="inverted",
            help="coarse artifact each shard builds: the posting-list "
            "inverted index (default) or the bit-sliced signature index",
        )
        db_create.add_argument(
            "--signature-fpr", type=float, default=None, metavar="RATE",
            help="signature backend: per-k-mer Bloom false-positive "
            "rate in (0, 1) (default 0.3; lower = bigger, more exact)",
        )
        db_create.add_argument(
            "--signature-hashes", type=int, default=None, metavar="H",
            help="signature backend: Bloom hash functions per k-mer "
            "(default 1)",
        )
        db_create.add_argument(
            "--docs-per-block", type=int, default=None, metavar="D",
            help="signature backend: documents packed per bit-sliced "
            "block (default 64)",
        )
        db_create.set_defaults(handler=_cmd_db_create)

    db_info = commands.add_parser(
        "db-info", help="describe a database directory"
    )
    db_info.add_argument("database", type=Path)
    db_info.set_defaults(handler=_cmd_db_info)

    db_search = commands.add_parser(
        "db-search", help="search a database directory"
    )
    db_search.add_argument("database", type=Path)
    db_search.add_argument("queries", type=Path)
    db_search.add_argument("--cutoff", type=int, default=100)
    db_search.add_argument("--top", type=int, default=10)
    db_search.add_argument("--both-strands", action="store_true")
    db_search.add_argument("--evalues", action="store_true")
    db_search.set_defaults(handler=_cmd_db_search)

    verify = commands.add_parser(
        "verify", help="audit a database directory's integrity"
    )
    verify.add_argument("database", type=Path)
    verify.set_defaults(handler=_cmd_verify)

    repair = commands.add_parser(
        "repair", help="rebuild a database's index from its store"
    )
    repair.add_argument("database", type=Path)
    repair.add_argument(
        "--force", action="store_true",
        help="rebuild even when the database verifies as intact",
    )
    repair.set_defaults(handler=_cmd_repair)

    ingest = commands.add_parser(
        "ingest",
        help="append FASTA records to a database as one delta shard",
    )
    ingest.add_argument("database", type=Path)
    ingest.add_argument("collection", type=Path, help="FASTA of new records")
    ingest.set_defaults(handler=_cmd_ingest)

    delete = commands.add_parser(
        "delete", help="tombstone database records by identifier"
    )
    delete.add_argument("database", type=Path)
    delete.add_argument(
        "identifiers", nargs="+", metavar="IDENTIFIER",
        help="record identifiers to delete (every live match)",
    )
    delete.set_defaults(handler=_cmd_delete)

    compact = commands.add_parser(
        "compact",
        help="fold delta shards and tombstones back into base shards",
    )
    compact.add_argument("database", type=Path)
    compact.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="base shard count to compact into (default: keep current)",
    )
    compact.add_argument(
        "--workers", type=int, default=1, metavar="M",
        help="rebuild up to M shards in parallel worker processes",
    )
    compact.set_defaults(handler=_cmd_compact)

    oracle = commands.add_parser(
        "oracle",
        help="compare partitioned answers against exhaustive search",
    )
    oracle.add_argument("index", type=Path)
    oracle.add_argument("store", type=Path)
    oracle.add_argument("queries", type=Path)
    oracle.add_argument("--cutoff", type=int, default=100)
    oracle.add_argument("--top", type=int, default=10)
    oracle.set_defaults(handler=_cmd_oracle)

    align = commands.add_parser("align", help="align two FASTA sequences")
    align.add_argument("first", type=Path)
    align.add_argument("second", type=Path)
    align.add_argument("--match", type=int, default=1)
    align.add_argument("--mismatch", type=int, default=-1)
    align.add_argument("--gap", type=int, default=-2)
    align.set_defaults(handler=_cmd_align)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

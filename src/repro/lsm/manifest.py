"""Generation-stamped live layout: base shards, delta shards, tombstones.

A *live* database is one that has absorbed mutations since it was
built.  Its top-level manifest carries an ``"lsm"`` section::

    "lsm": {
        "generation": 3,
        "tombstones": [4, 17],          # global *stored* ordinals
        "base":   {"count": 2, "layout": [...]},
        "deltas": {"count": 1, "layout": [...]}
    }

``base`` is the layout the collection was last compacted (or first
built) into; every ``deltas`` entry is a small, complete, checksummed
v2 shard database appended by one ingest.  Entries use the same
:class:`~repro.sharding.manifest.ShardLayoutEntry` description as the
sharded layout, with stored ordinals running contiguously through the
bases and then the deltas.  A classic single-directory base appears as
an entry whose ``name`` is ``""`` (its files live at the top level).

The manifest is the *only* commit point: every mutation writes its new
files first (fresh delta or fresh ``shard-g...`` directories), then
atomically replaces ``manifest.json`` with a manifest whose
``generation`` is one higher.  A crash anywhere before that final
rename leaves the previous generation's manifest — and therefore the
previous generation's view — fully intact; the half-written directories
it references nothing are *orphans*, flagged by ``Database.verify`` as
notes and reclaimed by the next successful compaction.

Tombstones are recorded by stored ordinal and never rewritten in
place: a delete is one manifest swap.  Readers present the *logical*
(live) collection — stored order with tombstoned records elided — so
search results, record routing, and E-values are indistinguishable
from a fresh rebuild over the surviving records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import IndexFormatError
from repro.index.builder import IndexParameters
from repro.sharding.manifest import (
    MANIFEST_VERSION,
    ShardLayoutEntry,
)

#: Directory-name prefixes the live layout owns; anything matching one
#: of these that the manifest does not reference is an orphan.
LSM_DIRECTORY_PREFIXES = ("shard-", "delta-")


def delta_name(generation: int) -> str:
    """Directory name of the delta shard created at ``generation``."""
    return f"delta-g{generation:06d}"


def compacted_shard_name(generation: int, slot: int) -> str:
    """Directory name of base shard ``slot`` written by a compaction
    that produced ``generation``."""
    return f"shard-g{generation:06d}-{slot:04d}"


@dataclass(frozen=True)
class LiveState:
    """The decoded ``lsm`` section of a live manifest.

    Attributes:
        generation: monotonically increasing mutation counter; every
            successful ingest, delete, compaction, or repair bumps it.
        base: the compacted base layout (stored ordinals from 0).
        deltas: appended delta shards, stored ordinals continuing
            after the last base entry.
        tombstones: sorted, de-duplicated global *stored* ordinals of
            deleted records.
    """

    generation: int
    base: tuple[ShardLayoutEntry, ...]
    deltas: tuple[ShardLayoutEntry, ...]
    tombstones: tuple[int, ...]

    @property
    def entries(self) -> tuple[ShardLayoutEntry, ...]:
        """Every live entry, in stored-ordinal order (base then deltas)."""
        return self.base + self.deltas

    @property
    def stored_sequences(self) -> int:
        """Records on disk, including tombstoned ones."""
        return sum(entry.sequences for entry in self.entries)

    @property
    def live_sequences(self) -> int:
        """Records the logical collection presents."""
        return self.stored_sequences - len(self.tombstones)

    def referenced_names(self) -> set[str]:
        """Directory names the live generation owns (``""`` excluded)."""
        return {entry.name for entry in self.entries if entry.name}

    def describe(self) -> dict:
        return {
            "generation": self.generation,
            "tombstones": list(self.tombstones),
            "base": {
                "count": len(self.base),
                "layout": [entry.describe() for entry in self.base],
            },
            "deltas": {
                "count": len(self.deltas),
                "layout": [entry.describe() for entry in self.deltas],
            },
        }


def _entries_from(section: dict, label: str) -> tuple[ShardLayoutEntry, ...]:
    try:
        entries = tuple(
            ShardLayoutEntry.from_description(description)
            for description in section["layout"]
        )
        count = int(section["count"])
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexFormatError(f"malformed lsm {label} layout: {exc}") from exc
    if count != len(entries):
        raise IndexFormatError(
            f"lsm {label} layout lists {len(entries)} entries but records "
            f"count {count}"
        )
    return entries


def live_state_from_manifest(manifest: dict) -> LiveState | None:
    """The live layout a manifest records, or ``None`` for a manifest
    that predates the live format (classic or plain-sharded).

    Raises:
        IndexFormatError: if the ``lsm`` section is malformed — a
            non-contiguous layout, an empty base, or tombstones that
            are unsorted, duplicated, or out of range.
    """
    section = manifest.get("lsm")
    if section is None:
        return None
    try:
        generation = int(section["generation"])
        raw_tombstones = list(section.get("tombstones", []))
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexFormatError(f"malformed lsm section: {exc}") from exc
    if generation < 1:
        raise IndexFormatError(
            f"lsm generation must be >= 1, got {generation} (live "
            "manifests are only written by mutations)"
        )
    base = _entries_from(section.get("base", {}), "base")
    deltas = _entries_from(
        section.get("deltas", {"count": 0, "layout": []}), "deltas"
    )
    if not base:
        raise IndexFormatError("lsm manifest records no base shards")
    expected = 0
    for entry in base + deltas:
        if entry.base != expected:
            raise IndexFormatError(
                f"lsm entry {entry.name or '<top level>'} starts at stored "
                f"ordinal {entry.base}, expected {expected} (layout must "
                "be contiguous)"
            )
        expected = entry.stop
    try:
        tombstones = tuple(int(ordinal) for ordinal in raw_tombstones)
    except (TypeError, ValueError) as exc:
        raise IndexFormatError(f"malformed lsm tombstones: {exc}") from exc
    for previous, ordinal in zip((-1,) + tombstones, tombstones):
        if ordinal <= previous:
            raise IndexFormatError(
                "lsm tombstones must be sorted and unique, got "
                f"{list(tombstones)}"
            )
        if not 0 <= ordinal < expected:
            raise IndexFormatError(
                f"lsm tombstone {ordinal} outside stored ordinal range "
                f"0..{expected - 1}"
            )
    return LiveState(generation, base, deltas, tombstones)


def promote_manifest(manifest: dict) -> LiveState:
    """A generation-0 :class:`LiveState` for a pre-live manifest.

    A plain-sharded manifest's shards become the base layout; a classic
    single-directory manifest becomes one base entry named ``""``.
    The promotion is purely in memory — nothing is written until the
    first mutation commits a live manifest.
    """
    from repro.sharding.manifest import layout_from_manifest

    state = live_state_from_manifest(manifest)
    if state is not None:
        return state
    layout = layout_from_manifest(manifest)
    if layout is not None:
        return LiveState(0, tuple(layout), (), ())
    try:
        entry = ShardLayoutEntry(
            name="",
            base=0,
            sequences=int(manifest["sequences"]),
            bases=int(manifest["bases"]),
            index_bytes=int(manifest["index_bytes"]),
            store_bytes=int(manifest["store_bytes"]),
            checksums=dict(manifest.get("checksums") or {}),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexFormatError(
            f"cannot promote manifest to a live layout: {exc}"
        ) from exc
    return LiveState(0, (entry,), (), ())


def make_live_manifest(
    coding: str,
    params: IndexParameters,
    state: LiveState,
    coarse: dict | None = None,
) -> dict:
    """The top-level manifest of a live (LSM) database directory.

    The flat totals describe the *stored* collection (everything on
    disk, tombstoned records included) so they keep matching the files
    the entries digest; the logical view is derived by subtracting the
    tombstones.  ``coarse`` carries the database's coarse-backend
    section forward across mutations (``None`` means the inverted
    default).
    """
    from repro.sharding.manifest import _coarse_or_default

    entries = state.entries
    manifest = {
        "version": MANIFEST_VERSION,
        "sequences": sum(entry.sequences for entry in entries),
        "bases": sum(entry.bases for entry in entries),
        "coding": coding,
        "params": params.describe(),
        "coarse": _coarse_or_default(coarse),
        "index_bytes": sum(entry.index_bytes for entry in entries),
        "store_bytes": sum(entry.store_bytes for entry in entries),
        "lsm": state.describe(),
    }
    return manifest


def entry_from_shard_manifest(
    name: str, base: int, shard_manifest: dict
) -> ShardLayoutEntry:
    """A layout entry describing one just-built shard directory."""
    return ShardLayoutEntry(
        name=name,
        base=base,
        sequences=int(shard_manifest["sequences"]),
        bases=int(shard_manifest["bases"]),
        index_bytes=int(shard_manifest["index_bytes"]),
        store_bytes=int(shard_manifest["store_bytes"]),
        checksums=dict(shard_manifest["checksums"]),
    )


def renumber(entries: list[ShardLayoutEntry]) -> tuple[ShardLayoutEntry, ...]:
    """The same entries with contiguous stored ordinals from 0."""
    renumbered = []
    base = 0
    for entry in entries:
        renumbered.append(replace(entry, base=base))
        base += entry.sequences
    return tuple(renumbered)


def entry_directory(directory: Path, entry: ShardLayoutEntry) -> Path:
    """Filesystem directory holding an entry's files."""
    return directory / entry.name if entry.name else directory


def orphan_directories(directory: Path, state: LiveState | None) -> list[Path]:
    """Shard/delta-style directories the live manifest does not reference.

    These are the visible residue of an interrupted ingest or
    compaction (or of a completed compaction whose cleanup was
    interrupted): harmless, invisible to readers, and safe to delete.
    """
    referenced = state.referenced_names() if state is not None else set()
    orphans = []
    for child in sorted(directory.iterdir()):
        if not child.is_dir():
            continue
        if not child.name.startswith(LSM_DIRECTORY_PREFIXES):
            continue
        if child.name not in referenced:
            orphans.append(child)
    return orphans

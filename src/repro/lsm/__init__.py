"""Incremental (LSM-style) layer: delta shards, tombstones, compaction.

Turns the batch-built database into a live one.  New records append as
small, complete delta shard databases; deletes tombstone stored
ordinals in the generation-stamped top-level manifest; background
compaction folds both back into fresh base shards.  Every mutation
commits through one atomic manifest replace, so an interrupted
mutation or compaction is invisible on reopen.
"""

from repro.lsm.manifest import (
    LiveState,
    compacted_shard_name,
    delta_name,
    entry_directory,
    live_state_from_manifest,
    make_live_manifest,
    orphan_directories,
    promote_manifest,
)
from repro.lsm.mutate import (
    append_delta,
    cleanup_unreferenced,
    compact_database,
    tombstone,
)

__all__ = [
    "LiveState",
    "append_delta",
    "cleanup_unreferenced",
    "compact_database",
    "compacted_shard_name",
    "delta_name",
    "entry_directory",
    "live_state_from_manifest",
    "make_live_manifest",
    "orphan_directories",
    "promote_manifest",
    "tombstone",
]

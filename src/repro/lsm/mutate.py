"""Ingest, delete, and compaction over a live database directory.

Every mutation follows the same discipline: build any new files into
fresh directories first, then commit by atomically replacing the
top-level manifest with one stamped ``generation + 1``.  A crash at any
point before the manifest rename leaves the old generation fully
intact (the fresh directories become orphans); a crash after it leaves
the new generation fully intact (the superseded directories become
garbage that :func:`cleanup_unreferenced` reclaims).  There is no
intermediate state a reader can observe.
"""

from __future__ import annotations

import logging
import shutil
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Iterable, Sequence as TypingSequence

from repro.errors import IndexParameterError
from repro.index.builder import IndexParameters
from repro.index.merge import merge_index_files
from repro.index.store import SequenceStore, write_store
from repro.lsm.manifest import (
    LiveState,
    compacted_shard_name,
    delta_name,
    entry_directory,
    entry_from_shard_manifest,
    make_live_manifest,
    orphan_directories,
    promote_manifest,
)
from repro.coarse_backends.base import (
    ARTIFACT_NAMES,
    coarse_from_manifest,
)
from repro.sequences.record import Sequence
from repro.sharding.build import _build_shard_task, build_shard_directory
from repro.sharding.manifest import (
    INDEX_NAME,
    STORE_NAME,
    load_manifest,
    make_manifest,
    write_manifest,
)
from repro.sharding.planner import plan_shards

_LOG = logging.getLogger(__name__)


def _open_manifest(
    directory: Path,
) -> tuple[dict, LiveState, IndexParameters, dict]:
    manifest = load_manifest(directory)
    state = promote_manifest(manifest)
    params = IndexParameters.from_description(manifest["params"])
    return manifest, state, params, coarse_from_manifest(manifest)


def _commit(
    directory: Path,
    coding: str,
    params: IndexParameters,
    state: LiveState,
    coarse: dict | None = None,
) -> None:
    """The single commit point: one atomic manifest replace."""
    write_manifest(
        directory, make_live_manifest(coding, params, state, coarse=coarse)
    )


def append_delta(
    directory: str | Path, records: TypingSequence[Sequence]
) -> LiveState:
    """Ingest ``records`` as one new delta shard.

    The delta is a complete checksummed v2 database of its own, built
    under ``delta-g<generation>``; the manifest swap that references it
    is the last write.  Re-running after a crash overwrites the orphan
    directory and converges.

    Returns the committed :class:`LiveState`.

    Raises:
        IndexParameterError: if ``records`` is empty.
    """
    if not records:
        raise IndexParameterError("no records to ingest")
    directory = Path(directory)
    manifest, state, params, coarse = _open_manifest(directory)
    generation = state.generation + 1
    name = delta_name(generation)
    shard_manifest = build_shard_directory(
        directory / name, list(records), params, manifest["coding"], coarse
    )
    entry = entry_from_shard_manifest(
        name, state.stored_sequences, shard_manifest
    )
    committed = LiveState(
        generation, state.base, state.deltas + (entry,), state.tombstones
    )
    _commit(directory, manifest["coding"], params, committed, coarse)
    return committed


def tombstone(
    directory: str | Path, stored_ordinals: Iterable[int]
) -> LiveState:
    """Mark stored ordinals deleted; purely a manifest swap.

    Returns the committed :class:`LiveState`.

    Raises:
        IndexParameterError: if no ordinals are given, an ordinal is
            out of range, or an ordinal is already tombstoned.
    """
    directory = Path(directory)
    manifest, state, params, coarse = _open_manifest(directory)
    doomed = sorted(set(int(ordinal) for ordinal in stored_ordinals))
    if not doomed:
        raise IndexParameterError("no records to delete")
    stored = state.stored_sequences
    existing = set(state.tombstones)
    for ordinal in doomed:
        if not 0 <= ordinal < stored:
            raise IndexParameterError(
                f"stored ordinal {ordinal} out of range 0..{stored - 1}"
            )
        if ordinal in existing:
            raise IndexParameterError(
                f"stored ordinal {ordinal} is already deleted"
            )
    merged = tuple(sorted(existing | set(doomed)))
    committed = LiveState(
        state.generation + 1, state.base, state.deltas, merged
    )
    _commit(directory, manifest["coding"], params, committed, coarse)
    return committed


def _live_records(
    directory: Path, state: LiveState
) -> list[Sequence]:
    """Every surviving record, in stored-ordinal (= logical) order."""
    dead = set(state.tombstones)
    records: list[Sequence] = []
    for entry in state.entries:
        store_path = entry_directory(directory, entry) / STORE_NAME
        with SequenceStore(store_path) as store:
            for local in range(len(store)):
                if entry.base + local in dead:
                    continue
                records.append(store.record(local))
    return records


def compact_database(
    directory: str | Path,
    shards: int | None = None,
    workers: int = 1,
) -> LiveState:
    """Fold the deltas and tombstones back into base shards.

    With no tombstones and a single-shard target the new base is
    produced by the streaming external-memory index merge
    (:func:`~repro.index.merge.merge_index_files`) over the part index
    files — the same path a chunked build uses, so the result is
    bit-identical to a fresh single build.  Otherwise (tombstones to
    drop, or a multi-shard target whose boundaries cut across the
    parts) the surviving records are re-planned and each new base shard
    rebuilt, optionally on a process pool.

    Either way the new shards land in fresh ``shard-g...`` directories
    and the generation bump is one atomic manifest replace; a crash
    anywhere during compaction is invisible on reopen, and the
    superseded directories are reclaimed best-effort afterwards.

    Args:
        directory: the live database directory.
        shards: base shard count to compact into; ``None`` keeps the
            current count.
        workers: rebuild processes for the multi-shard path.

    Returns:
        The committed :class:`LiveState` (unchanged if there was
        nothing to compact).

    Raises:
        IndexParameterError: if compaction would leave an empty
            collection, or ``workers`` < 1.
    """
    if workers < 1:
        raise IndexParameterError(f"workers must be >= 1, got {workers}")
    directory = Path(directory)
    manifest, state, params, coarse = _open_manifest(directory)
    target = len(state.base) if shards is None else int(shards)
    if target < 1:
        raise IndexParameterError(f"shards must be >= 1, got {target}")
    if (
        not state.deltas
        and not state.tombstones
        and target == len(state.base)
    ):
        return state
    if state.live_sequences == 0:
        raise IndexParameterError(
            "cannot compact to an empty collection (all records deleted)"
        )
    coding = manifest["coding"]
    generation = state.generation + 1

    # The streaming index merge only understands the inverted RPIX
    # format; signature shards (whose block sizing depends on the
    # merged collection) are always rebuilt from their records.
    if (
        not state.tombstones
        and target == 1
        and coarse["backend"] == "inverted"
    ):
        out = directory / compacted_shard_name(generation, 0)
        out.mkdir(parents=True, exist_ok=True)
        index_bytes = merge_index_files(
            [
                str(entry_directory(directory, entry) / INDEX_NAME)
                for entry in state.entries
            ],
            str(out / INDEX_NAME),
        )
        records = _live_records(directory, state)
        store_bytes = write_store(records, out / STORE_NAME, coding)
        shard_manifest = make_manifest(
            out,
            len(records),
            int(sum(len(record) for record in records)),
            coding,
            params,
            index_bytes,
            store_bytes,
            coarse=coarse,
        )
        write_manifest(out, shard_manifest)
        entries = (entry_from_shard_manifest(out.name, 0, shard_manifest),)
    else:
        records = _live_records(directory, state)
        plan = plan_shards(len(records), target)
        jobs = [
            (
                str(directory / compacted_shard_name(generation, spec.shard_id)),
                records[spec.base : spec.stop],
                params,
                coding,
                coarse,
            )
            for spec in plan
        ]
        pool_size = min(workers, len(jobs))
        if pool_size == 1:
            shard_manifests = [_build_shard_task(job) for job in jobs]
        else:
            _LOG.info(
                "compacting into %d shards with %d worker processes",
                len(jobs),
                pool_size,
            )
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                shard_manifests = list(pool.map(_build_shard_task, jobs))
        entries = tuple(
            entry_from_shard_manifest(
                compacted_shard_name(generation, spec.shard_id),
                spec.base,
                shard_manifest,
            )
            for spec, shard_manifest in zip(plan, shard_manifests)
        )

    committed = LiveState(generation, entries, (), ())
    _commit(directory, coding, params, committed, coarse)
    cleanup_unreferenced(directory, committed)
    return committed


def cleanup_unreferenced(directory: str | Path, state: LiveState) -> list[Path]:
    """Best-effort removal of directories the live generation dropped.

    Runs strictly after the manifest swap, so nothing it touches is
    reachable; failures are logged and left for the next compaction
    (or ``repro verify``, which reports them as notes).

    Returns the paths actually removed.
    """
    directory = Path(directory)
    removed: list[Path] = []
    for orphan in orphan_directories(directory, state):
        try:
            shutil.rmtree(orphan)
        except OSError:
            _LOG.warning("could not remove superseded %s", orphan)
        else:
            removed.append(orphan)
    if "" not in {entry.name for entry in state.entries}:
        for name in (*ARTIFACT_NAMES.values(), STORE_NAME):
            stale = directory / name
            try:
                if stale.exists():
                    stale.unlink()
                    removed.append(stale)
            except OSError:
                _LOG.warning("could not remove superseded %s", stale)
    return removed

"""repro — partitioned interval-index search for nucleotide databases.

A reproduction of Williams & Zobel, *Indexing Nucleotide Databases for
Fast Query Evaluation* (EDBT 1996): a compressed inverted index of
fixed-length substrings ("intervals") selects candidate sequences,
which are then ranked by local alignment — several times faster than
exhaustive scanning at a small cost in accuracy.

Quickstart::

    from repro import (
        PartitionedSearchEngine, build_index, MemorySequenceSource,
        Sequence,
    )

    collection = [Sequence.from_text("s1", "ACGT..."), ...]
    index = build_index(collection)
    engine = PartitionedSearchEngine(
        index, MemorySequenceSource(collection), coarse_cutoff=100
    )
    report = engine.search(Sequence.from_text("q", "ACGTT..."))
    for hit in report.hits:
        print(hit.identifier, hit.score)
"""

from repro.align import (
    Alignment,
    ScoringScheme,
    best_local_score,
    local_align,
)
from repro.coarse_backends import get_backend
from repro.database import AutoCompactPolicy, Database, VerificationReport
from repro.errors import CorruptionError, ReproError, StorageError
from repro.index import (
    DiskIndex,
    IndexParameters,
    InvertedIndex,
    MemorySequenceSource,
    SequenceStore,
    build_index,
    collect_statistics,
    read_index,
    read_store,
    stop_most_frequent,
    write_index,
    write_store,
)
from repro.search import (
    BlastLikeSearcher,
    Deadline,
    ExhaustiveSearcher,
    FastaLikeSearcher,
    PartitionedSearchEngine,
    RetryPolicy,
    SearchHit,
    SearchReport,
    ShardResilience,
)
from repro.serving import SearchServer, ServerConfig
from repro.sequences import MutationModel, Sequence, read_fasta, write_fasta
from repro.sharding import (
    ShardedSearchEngine,
    ShardedSequenceSource,
    plan_shards,
)
from repro.workloads import (
    WorkloadSpec,
    generate_collection,
    make_family_queries,
)

__version__ = "1.0.0"

__all__ = [
    "Alignment",
    "AutoCompactPolicy",
    "CorruptionError",
    "Database",
    "StorageError",
    "VerificationReport",
    "BlastLikeSearcher",
    "Deadline",
    "DiskIndex",
    "ExhaustiveSearcher",
    "FastaLikeSearcher",
    "IndexParameters",
    "InvertedIndex",
    "MemorySequenceSource",
    "MutationModel",
    "PartitionedSearchEngine",
    "ReproError",
    "RetryPolicy",
    "ScoringScheme",
    "SearchHit",
    "SearchReport",
    "SearchServer",
    "Sequence",
    "SequenceStore",
    "ServerConfig",
    "ShardResilience",
    "ShardedSearchEngine",
    "ShardedSequenceSource",
    "WorkloadSpec",
    "best_local_score",
    "build_index",
    "collect_statistics",
    "generate_collection",
    "get_backend",
    "local_align",
    "make_family_queries",
    "plan_shards",
    "read_fasta",
    "read_index",
    "read_store",
    "stop_most_frequent",
    "write_fasta",
    "write_index",
    "write_store",
]

"""Closed/open-loop load generation against a running search server.

The harness answers the question the single-shot benchmarks cannot:
*what does the service do under concurrent load, possibly with a shard
on fire?*  Two driving modes:

* **closed** — ``clients`` workers each keep exactly one request in
  flight (classic closed loop; throughput is latency-bound);
* **open** — requests are fired on a fixed schedule of ``rate`` per
  second regardless of completions (an arrival process; saturation
  shows up as queueing, shedding, and deadline expiry instead of a
  gentle slowdown).

Every exchange is timed and every response's resilience annotations
(shed / deadline-expired / degraded) are tallied; the result exports as
a ``repro.bench/v1`` document (suite ``serving``) so the regression
gate can watch serving latency like any other benchmark.

:func:`run_serving_benchmark` is the self-contained harness: it builds
a small on-disk sharded collection, optionally zeroes one shard's
posting blob (the ``faults`` harness), boots an in-process server over
a resilient sharded engine, hammers it, and tears everything down.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from urllib.parse import urlsplit

import numpy as np

from repro.bench.schema import BenchDocument, standard_meta
from repro.errors import SearchError

__all__ = [
    "LOADGEN_MODES",
    "LoadgenResult",
    "run_loadgen",
    "run_serving_benchmark",
]

#: Supported driving modes.
LOADGEN_MODES = ("closed", "open")


@dataclass
class LoadgenResult:
    """Everything one load-generation run measured.

    Attributes:
        mode / clients / duration_seconds: the run configuration
            (duration is the measured wall clock, not the request).
        latencies_ms: per-exchange wall latency, every status counted.
        statuses: HTTP status → count.
        shed / deadline_expired / degraded / partial: resilience
            tallies (shed is 429s; the rest come from 200-response
            annotations).
        transport_errors: exchanges that died below HTTP (reset
            connections, timeouts at the socket).
    """

    mode: str
    clients: int
    duration_seconds: float
    latencies_ms: list[float] = field(default_factory=list)
    statuses: dict[int, int] = field(default_factory=dict)
    shed: int = 0
    deadline_expired: int = 0
    degraded: int = 0
    partial: int = 0
    transport_errors: int = 0

    @property
    def requests(self) -> int:
        """Completed HTTP exchanges (any status)."""
        return len(self.latencies_ms)

    @property
    def ok(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def client_errors(self) -> int:
        """4xx responses other than shed (429)."""
        return sum(
            count
            for status, count in self.statuses.items()
            if 400 <= status < 500 and status != 429
        )

    @property
    def server_errors(self) -> int:
        """5xx responses — zero for a healthy deployment, even with a
        shard fault injected (the resilience acceptance criterion)."""
        return sum(
            count for status, count in self.statuses.items() if status >= 500
        )

    @property
    def throughput_qps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def mean_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.mean(np.asarray(self.latencies_ms)))

    def merge_exchange(
        self, status: int, elapsed_ms: float, payload: dict | None
    ) -> None:
        """Tally one completed exchange (single-threaded use only; the
        workers keep private results and merge after joining)."""
        self.latencies_ms.append(elapsed_ms)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status == 429:
            self.shed += 1
        if status == 200 and payload is not None:
            if payload.get("deadline_expired"):
                self.deadline_expired += 1
            if payload.get("shards_degraded"):
                self.degraded += 1
            if payload.get("partial"):
                self.partial += 1

    def merge(self, other: "LoadgenResult") -> None:
        """Fold a worker's private tallies into this one."""
        self.latencies_ms.extend(other.latencies_ms)
        for status, count in other.statuses.items():
            self.statuses[status] = self.statuses.get(status, 0) + count
        self.shed += other.shed
        self.deadline_expired += other.deadline_expired
        self.degraded += other.degraded
        self.partial += other.partial
        self.transport_errors += other.transport_errors

    def to_document(self, meta: dict | None = None) -> BenchDocument:
        """Export as a ``repro.bench/v1`` document (suite ``serving``).

        Latency percentiles and the 5xx count gate regressions
        (``lower``), throughput gates the other way (``higher``), and
        the remaining tallies are ``info`` — how much load was shed is
        configuration-dependent, not a regression by itself.
        """
        document = BenchDocument(
            suite="serving",
            meta=standard_meta(
                {
                    "mode": self.mode,
                    "clients": self.clients,
                    **(meta or {}),
                }
            ),
        )
        if self.requests:
            document.add(
                "serving.p50_ms", self.percentile_ms(50), "ms", "lower"
            )
            document.add(
                "serving.p90_ms", self.percentile_ms(90), "ms", "lower"
            )
            document.add(
                "serving.p99_ms", self.percentile_ms(99), "ms", "lower"
            )
            document.add("serving.mean_ms", self.mean_ms(), "ms", "lower")
        # With zero completed requests (a dead or unreachable server)
        # there are no latencies: emitting gated 0.0 percentiles would
        # either poison a baseline or make every real latency look like
        # a regression, so the latency metrics are omitted entirely.
        # The zero throughput stays — a dead server SHOULD fail a
        # higher-is-better throughput gate.
        document.add(
            "serving.throughput_qps", self.throughput_qps, "q/s", "higher"
        )
        document.add(
            "serving.server_errors", self.server_errors, "", "lower"
        )
        for name, value in (
            ("serving.requests", self.requests),
            ("serving.ok", self.ok),
            ("serving.shed", self.shed),
            ("serving.client_errors", self.client_errors),
            ("serving.deadline_expired", self.deadline_expired),
            ("serving.degraded_responses", self.degraded),
            ("serving.partial_responses", self.partial),
            ("serving.transport_errors", self.transport_errors),
        ):
            document.add(name, value, "", "info")
        return document

    def summary(self) -> str:
        """A one-paragraph human report."""
        return (
            f"{self.requests} requests in {self.duration_seconds:.2f}s "
            f"({self.throughput_qps:.1f} q/s, {self.mode} loop, "
            f"{self.clients} clients): "
            f"p50 {self.percentile_ms(50):.1f}ms / "
            f"p90 {self.percentile_ms(90):.1f}ms / "
            f"p99 {self.percentile_ms(99):.1f}ms; "
            f"{self.ok} ok, {self.shed} shed, "
            f"{self.client_errors} client errors, "
            f"{self.server_errors} server errors, "
            f"{self.transport_errors} transport errors; "
            f"{self.deadline_expired} deadline-expired, "
            f"{self.degraded} degraded"
        )


def _post_search(
    connection: HTTPConnection, body: bytes
) -> tuple[int, dict | None]:
    """One POST /search exchange on a kept-alive connection."""
    connection.request(
        "POST",
        "/search",
        body=body,
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    raw = response.read()
    try:
        payload = json.loads(raw) if raw else None
    except json.JSONDecodeError:
        payload = None
    return response.status, payload


def run_loadgen(
    url: str,
    queries: list[str],
    clients: int = 4,
    duration_seconds: float = 5.0,
    mode: str = "closed",
    rate: float | None = None,
    top_k: int = 10,
    deadline_ms: float | None = None,
) -> LoadgenResult:
    """Hammer a running server and measure what comes back.

    Args:
        url: server base URL (``http://host:port``).
        queries: query sequence texts, cycled round-robin.
        clients: concurrent worker connections.
        duration_seconds: how long to keep driving load.
        mode: ``"closed"`` (one in-flight request per client) or
            ``"open"`` (fire on a fixed schedule — needs ``rate``).
        rate: open-loop arrival rate, requests/second across all
            clients.
        top_k / deadline_ms: forwarded in every request body
            (``deadline_ms`` ``None`` leaves the server default).

    Raises:
        SearchError: on a bad configuration.
    """
    if not queries:
        raise SearchError("loadgen needs at least one query")
    if clients < 1:
        raise SearchError(f"clients must be >= 1, got {clients}")
    if duration_seconds <= 0:
        raise SearchError(
            f"duration_seconds must be > 0, got {duration_seconds}"
        )
    if mode not in LOADGEN_MODES:
        raise SearchError(
            f"unknown loadgen mode {mode!r}; expected one of {LOADGEN_MODES}"
        )
    if mode == "open" and (rate is None or rate <= 0):
        raise SearchError("open-loop mode needs a positive rate")
    parts = urlsplit(url)
    if not parts.hostname or not parts.port:
        raise SearchError(f"url must include host and port, got {url!r}")

    bodies = []
    for slot, text in enumerate(queries):
        request: dict = {"query": text, "id": f"loadgen-{slot}", "top_k": top_k}
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        bodies.append(json.dumps(request).encode("utf-8"))

    started = time.perf_counter()
    stop_at = started + duration_seconds
    worker_results = [
        LoadgenResult(mode, clients, 0.0) for _ in range(clients)
    ]

    def worker(slot: int) -> None:
        result = worker_results[slot]
        connection = HTTPConnection(
            parts.hostname, parts.port, timeout=30.0
        )
        sent = 0
        try:
            while True:
                now = time.perf_counter()
                if now >= stop_at:
                    break
                if mode == "open":
                    # Worker `slot` owns arrivals slot, slot+clients, …
                    # of the global schedule; sleep until the next one
                    # (never skipping — lateness is the signal).
                    due = started + (slot + sent * clients) / rate
                    if due >= stop_at:
                        break
                    delay = due - now
                    if delay > 0:
                        time.sleep(delay)
                body = bodies[(slot + sent * clients) % len(bodies)]
                exchange_started = time.perf_counter()
                try:
                    status, payload = _post_search(connection, body)
                except (HTTPException, OSError):
                    result.transport_errors += 1
                    connection.close()
                    connection = HTTPConnection(
                        parts.hostname, parts.port, timeout=30.0
                    )
                else:
                    result.merge_exchange(
                        status,
                        (time.perf_counter() - exchange_started) * 1000.0,
                        payload,
                    )
                sent += 1
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, args=(slot,), name=f"loadgen-{slot}")
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    merged = LoadgenResult(mode, clients, elapsed)
    for result in worker_results:
        merged.merge(result)
    return merged


def run_serving_benchmark(
    shards: int = 3,
    fault_shard: int | None = None,
    clients: int = 4,
    duration_seconds: float = 3.0,
    mode: str = "closed",
    rate: float | None = None,
    deadline_ms: float = 500.0,
    top_k: int = 5,
    max_in_flight: int = 4,
    queue_limit: int = 8,
    num_families: int = 6,
    family_size: int = 4,
    num_background: int = 40,
    mean_length: int = 300,
    query_length: int = 120,
    seed: int = 17,
    root: str | Path | None = None,
) -> tuple[LoadgenResult, BenchDocument]:
    """The self-contained fault-injected serving benchmark.

    Builds a synthetic collection split over ``shards`` on-disk
    indexes, optionally zeroes ``fault_shard``'s entire posting blob
    (every posting fetch there then fails its CRC), boots an in-process
    server over a *resilient* sharded engine, drives it with
    :func:`run_loadgen`, and returns the measured result plus its bench
    document.  Temporary artefacts live under ``root`` (a fresh temp
    directory when ``None``) and are removed afterwards.

    Raises:
        SearchError: on a bad shard/fault configuration.
    """
    # Imported here so `import repro.serving.loadgen` stays cheap for
    # pure client use (no engine/index machinery pulled in).
    from repro.index.builder import IndexParameters, build_index
    from repro.index.storage import DiskIndex, write_index
    from repro.index.store import MemorySequenceSource
    from repro.instrumentation.faults import index_sections, zero_page
    from repro.search.resilience import RetryPolicy, ShardResilience
    from repro.serving.server import SearchServer, ServerConfig
    from repro.sharding.engine import ShardedSearchEngine
    from repro.workloads.queries import make_family_queries
    from repro.workloads.synthetic import WorkloadSpec, generate_collection

    if shards < 1:
        raise SearchError(f"shards must be >= 1, got {shards}")
    if fault_shard is not None and not 0 <= fault_shard < shards:
        raise SearchError(
            f"fault_shard must lie in [0, {shards}), got {fault_shard}"
        )

    spec = WorkloadSpec(
        num_families=num_families,
        family_size=family_size,
        num_background=num_background,
        mean_length=mean_length,
        seed=seed,
    )
    collection = generate_collection(spec)
    sequences = list(collection.sequences)
    cases = make_family_queries(
        collection, num_families, query_length=query_length, seed=seed + 1
    )
    queries = [case.query.text for case in cases]

    cleanup = root is None
    root = Path(tempfile.mkdtemp(prefix="repro-serving-")) if cleanup else Path(root)
    root.mkdir(parents=True, exist_ok=True)
    per_shard = max(1, (len(sequences) + shards - 1) // shards)
    opened: list[DiskIndex] = []
    engine = None
    try:
        shard_pairs = []
        for slot in range(shards):
            part = sequences[slot * per_shard : (slot + 1) * per_shard]
            if not part:
                raise SearchError(
                    f"shard {slot} is empty: {len(sequences)} sequences "
                    f"over {shards} shards"
                )
            path = root / f"shard{slot}.rpix"
            write_index(
                build_index(part, IndexParameters(interval_length=8)), path
            )
            if slot == fault_shard:
                # Zero the whole posting blob: the header and vocabulary
                # stay valid (the index *opens*), but every posting
                # fetch fails its CRC — a deterministically broken shard.
                start, end = index_sections(path)["blob"]
                zero_page(path, start, end - start)
            opened.append(DiskIndex(path))
            shard_pairs.append((opened[-1], MemorySequenceSource(part)))

        engine = ShardedSearchEngine(
            shard_pairs,
            on_corruption="raise",
            resilience=ShardResilience(
                shard_timeout=max(1.0, 4 * deadline_ms / 1000.0),
                retry=RetryPolicy(
                    max_attempts=2, base_delay=0.005, max_delay=0.05
                ),
                breaker_failures=3,
                breaker_reset_seconds=60.0,
                seed=seed,
            ),
        )
        config = ServerConfig(
            default_deadline_seconds=deadline_ms / 1000.0,
            max_in_flight=max_in_flight,
            queue_limit=queue_limit,
            default_top_k=top_k,
        )
        with SearchServer(engine, config) as server:
            result = run_loadgen(
                server.url,
                queries,
                clients=clients,
                duration_seconds=duration_seconds,
                mode=mode,
                rate=rate,
                top_k=top_k,
                deadline_ms=deadline_ms,
            )
            breakers = engine.breaker_states()
        document = result.to_document(
            {
                "shards": shards,
                "fault_shard": fault_shard,
                "deadline_ms": deadline_ms,
                "max_in_flight": max_in_flight,
                "queue_limit": queue_limit,
                "rate": rate,
                "breakers": {str(k): v for k, v in breakers.items()},
                "workload": {
                    "num_families": num_families,
                    "family_size": family_size,
                    "num_background": num_background,
                    "mean_length": mean_length,
                    "query_length": query_length,
                    "seed": seed,
                },
            }
        )
        return result, document
    finally:
        if engine is not None:
            engine.close()
        for index in opened:
            index.close()
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)

"""A long-lived threaded HTTP/JSON search server.

The server is a thin, resilient shell around any engine whose
``search(query, top_k=..., deadline=...)`` returns a
:class:`~repro.search.results.SearchReport` — the partitioned engine,
the sharded engine, or the database facade.  Its job is to make the
engine safe to expose:

* every request gets a :class:`~repro.search.deadline.Deadline` (the
  client's ``deadline_ms`` clamped to a server maximum, else the
  configured default), so no query runs away;
* an :class:`~repro.serving.admission.AdmissionController` bounds
  in-flight work and sheds the overflow with ``429`` + ``Retry-After``;
* every response carries its resilience annotations — ``partial``,
  ``deadline_expired``, ``shards_degraded`` — so a degraded answer is
  never mistaken for a complete one;
* client mistakes are ``4xx`` and *engine* trouble degrades (the
  resilient sharded engine absorbs shard failures), so a healthy
  deployment returns zero ``5xx`` even under injected faults.

Endpoints: ``POST /search``, ``GET /health``, ``GET /metrics``
(Prometheus text), ``GET /stats`` (JSON).  See ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import AlphabetError, ReproError, SearchError
from repro.instrumentation.export import prometheus_text
from repro.instrumentation.instruments import Instruments, coalesce
from repro.search.deadline import Deadline
from repro.search.results import SearchReport
from repro.sequences.record import Sequence
from repro.serving.admission import AdmissionController

__all__ = ["SearchServer", "ServerConfig"]

_LOG = logging.getLogger(__name__)

#: JSON content type used for every response body.
_JSON = "application/json"


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for one :class:`SearchServer`.

    Args:
        host / port: bind address; port 0 picks an ephemeral port
            (read the real one from ``server.port`` after start).
        default_deadline_seconds: per-request budget when the client
            sends none; ``None`` means such requests are unbounded.
        max_deadline_seconds: ceiling a client ``deadline_ms`` is
            clamped to (a client cannot buy an unbounded query).
        max_in_flight / queue_limit / admission_wait_seconds: admission
            control — concurrent evaluations, callers allowed to queue,
            and how long a queued caller waits before being shed.
        retry_after_seconds: value of the ``Retry-After`` header on a
            shed (429) response.
        default_top_k / max_top_k: answer-count default and ceiling.
        max_body_bytes: requests with larger bodies are rejected (413).

    Raises:
        SearchError: if a knob is out of range.
    """

    host: str = "127.0.0.1"
    port: int = 0
    default_deadline_seconds: float | None = 2.0
    max_deadline_seconds: float = 30.0
    max_in_flight: int = 4
    queue_limit: int = 16
    admission_wait_seconds: float = 0.5
    retry_after_seconds: float = 1.0
    default_top_k: int = 10
    max_top_k: int = 100
    max_body_bytes: int = 1_000_000

    def __post_init__(self) -> None:
        if (
            self.default_deadline_seconds is not None
            and self.default_deadline_seconds <= 0
        ):
            raise SearchError(
                "default_deadline_seconds must be > 0 or None, got "
                f"{self.default_deadline_seconds}"
            )
        if self.max_deadline_seconds <= 0:
            raise SearchError(
                "max_deadline_seconds must be > 0, got "
                f"{self.max_deadline_seconds}"
            )
        if self.admission_wait_seconds < 0:
            raise SearchError(
                "admission_wait_seconds must be >= 0, got "
                f"{self.admission_wait_seconds}"
            )
        if self.retry_after_seconds < 0:
            raise SearchError(
                "retry_after_seconds must be >= 0, got "
                f"{self.retry_after_seconds}"
            )
        if not 1 <= self.default_top_k <= self.max_top_k:
            raise SearchError(
                f"default_top_k must lie in [1, {self.max_top_k}], got "
                f"{self.default_top_k}"
            )
        if self.max_body_bytes < 1:
            raise SearchError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )


class _BadRequest(ReproError):
    """A client mistake: becomes a 400 with the message as the error."""


class SearchServer:
    """Serve an engine's ``search`` over HTTP with resilience built in.

    Args:
        engine: anything with ``search(query, top_k=..., deadline=...)``
            returning a :class:`SearchReport`.  If it also exposes
            ``breaker_states()`` (the resilient sharded engine), those
            states appear in ``/health`` and ``/stats``.
        config: server knobs; defaults are sensible for tests.
        instruments: observability sink shared with the engine when
            you want one scrape to cover the whole stack.

    The request-handling core (:meth:`handle_request`) is transport
    free — tests can drive it without sockets — and the HTTP shell is
    a stdlib :class:`ThreadingHTTPServer` started by :meth:`start`.
    """

    def __init__(
        self,
        engine,
        config: ServerConfig | None = None,
        instruments: Instruments | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self.instruments = coalesce(instruments)
        self.admission = AdmissionController(
            max_in_flight=self.config.max_in_flight,
            queue_limit=self.config.queue_limit,
        )
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- the transport-free request core --------------------------------

    def handle_request(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, str], bytes]:
        """Dispatch one request: ``(status, extra headers, body)``.

        Never raises: anything unexpected becomes a 500 payload (and a
        ``serving.server_errors`` count — the soak test pins this at
        zero for healthy deployments).
        """
        instruments = self.instruments
        instruments.count("serving.requests")
        started = time.perf_counter()
        try:
            if method == "POST" and path == "/search":
                status, headers, payload = self._search(body)
            elif method == "GET" and path == "/health":
                status, headers, payload = 200, {}, self._health()
            elif method == "GET" and path == "/stats":
                status, headers, payload = 200, {}, self._stats()
            elif method == "GET" and path == "/metrics":
                text = prometheus_text(instruments.metrics)
                return (
                    200,
                    {"Content-Type": "text/plain; version=0.0.4"},
                    text.encode("utf-8"),
                )
            else:
                instruments.count("serving.client_errors")
                status, headers, payload = (
                    404,
                    {},
                    {"error": f"no such endpoint: {method} {path}"},
                )
        except _BadRequest as exc:
            instruments.count("serving.client_errors")
            status, headers, payload = 400, {}, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the 5xx boundary
            _LOG.exception("unhandled error serving %s %s", method, path)
            instruments.count("serving.server_errors")
            status, headers, payload = 500, {}, {"error": str(exc)}
        instruments.observe(
            "serving.request_seconds", time.perf_counter() - started
        )
        headers = {"Content-Type": _JSON, **headers}
        return status, headers, json.dumps(payload).encode("utf-8")

    def _parse_search(self, body: bytes) -> tuple[Sequence, int, Deadline]:
        if len(body) > self.config.max_body_bytes:
            raise _BadRequest(
                f"request body exceeds {self.config.max_body_bytes} bytes"
            )
        try:
            request = json.loads(body or b"")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}")
        if not isinstance(request, dict):
            raise _BadRequest("request body must be a JSON object")
        text = request.get("query")
        if not isinstance(text, str) or not text:
            raise _BadRequest('"query" must be a non-empty string')
        identifier = request.get("id", "query")
        if not isinstance(identifier, str):
            raise _BadRequest('"id" must be a string')
        try:
            query = Sequence.from_text(identifier, text)
        except AlphabetError as exc:
            raise _BadRequest(f"bad query sequence: {exc}")

        top_k = request.get("top_k", self.config.default_top_k)
        if not isinstance(top_k, int) or isinstance(top_k, bool):
            raise _BadRequest('"top_k" must be an integer')
        if not 1 <= top_k <= self.config.max_top_k:
            raise _BadRequest(
                f'"top_k" must lie in [1, {self.config.max_top_k}], '
                f"got {top_k}"
            )

        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            seconds = self.config.default_deadline_seconds
        else:
            if not isinstance(deadline_ms, (int, float)) or isinstance(
                deadline_ms, bool
            ):
                raise _BadRequest('"deadline_ms" must be a number')
            if deadline_ms <= 0:
                raise _BadRequest(
                    f'"deadline_ms" must be > 0, got {deadline_ms}'
                )
            seconds = min(
                deadline_ms / 1000.0, self.config.max_deadline_seconds
            )
        return query, top_k, Deadline.after(seconds)

    def _search(self, body: bytes) -> tuple[int, dict[str, str], dict]:
        query, top_k, deadline = self._parse_search(body)
        if not self.admission.try_admit(self.config.admission_wait_seconds):
            self.instruments.count("serving.shed")
            return (
                429,
                {"Retry-After": f"{self.config.retry_after_seconds:g}"},
                {
                    "error": "server saturated, retry later",
                    "retry_after_seconds": self.config.retry_after_seconds,
                },
            )
        started = time.perf_counter()
        try:
            try:
                report = self.engine.search(
                    query, top_k=top_k, deadline=deadline
                )
            except SearchError as exc:
                # The engine rejected the *request* (query too short,
                # bad top_k): the client's fault, not the server's.
                raise _BadRequest(str(exc))
        finally:
            self.admission.release()
        elapsed = time.perf_counter() - started
        instruments = self.instruments
        instruments.count("serving.ok")
        if report.deadline_expired:
            instruments.count("serving.deadline_expired")
        if report.shards_degraded:
            instruments.count("serving.degraded_responses")
        return 200, {}, self._report_payload(report, elapsed)

    @staticmethod
    def _report_payload(report: SearchReport, elapsed: float) -> dict:
        return {
            "query_id": report.query_identifier,
            "hits": [
                {
                    "ordinal": hit.ordinal,
                    "identifier": hit.identifier,
                    "score": hit.score,
                    "coarse_score": hit.coarse_score,
                    "strand": hit.strand,
                    "evalue": hit.evalue,
                }
                for hit in report.hits
            ],
            "candidates_examined": report.candidates_examined,
            "elapsed_ms": elapsed * 1000.0,
            # The resilience contract: a caller can always tell whether
            # the ranking covered the whole collection.
            "partial": report.partial,
            "deadline_expired": report.deadline_expired,
            "degraded": report.degraded,
            "shards_degraded": list(report.shards_degraded),
        }

    def _breaker_states(self) -> dict[str, str]:
        states = getattr(self.engine, "breaker_states", None)
        if states is None:
            return {}
        return {str(slot): state for slot, state in states().items()}

    def _health(self) -> dict:
        breakers = self._breaker_states()
        broken = sorted(
            slot for slot, state in breakers.items() if state != "closed"
        )
        return {
            "status": "degraded" if broken else "ok",
            "breakers": breakers,
            "shards_broken": broken,
            "in_flight": self.admission.in_flight,
        }

    def _stats(self) -> dict:
        from repro.compression import fastunpack

        return {
            "admission": self.admission.snapshot(),
            "breakers": self._breaker_states(),
            "kernel_tier": fastunpack.active_tier(),
            "coarse_backend": getattr(
                self.engine, "coarse_backend", "inverted"
            ),
            "lsm": getattr(self.engine, "lsm_info", None),
            "metrics": self.instruments.metrics.snapshot(),
        }

    # -- the HTTP shell --------------------------------------------------

    def start(self) -> None:
        """Bind and serve on a daemon thread (idempotent).

        Raises:
            SearchError: when already started.
        """
        if self._httpd is not None:
            raise SearchError("server already started")
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Keep-alive needs correct Content-Length framing, which
            # _respond always provides.
            protocol_version = "HTTP/1.1"

            def _respond(self) -> None:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                status, headers, payload = server.handle_request(
                    self.command, self.path, body
                )
                self.send_response(status)
                for name, value in headers.items():
                    self.send_header(name, value)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            do_GET = _respond
            do_POST = _respond

            def log_message(self, format, *args):  # noqa: A002
                _LOG.debug("%s - %s", self.address_string(), format % args)

        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="search-server",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("serving on http://%s:%d", self.host, self.port)

    @property
    def host(self) -> str:
        if self._httpd is not None:
            return self._httpd.server_address[0]
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral port 0 after start)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self.config.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Stop serving and join the server thread (idempotent).

        The engine is *not* closed — the caller that built it owns it.
        """
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "SearchServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Admission control: bound the work a saturated server accepts.

A search request is expensive (posting decodes + alignment kernels), so
an overloaded server must *shed* load — answer 429 quickly — rather
than queue unboundedly and time every request out.  The controller
enforces two limits:

* ``max_in_flight`` — requests actually evaluating at once;
* ``queue_limit`` — requests allowed to *wait* for an execution slot;
  anyone beyond that is shed immediately, and a queued request that
  cannot start within its wait budget is shed too.

Implemented with a condition variable rather than a semaphore so the
queue depth is observable and the shed decision (queue full) is taken
atomically with the wait.
"""

from __future__ import annotations

import time
from threading import Condition

from repro.errors import SearchError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-concurrency gate with a bounded wait queue.

    Args:
        max_in_flight: concurrent admissions (execution slots).
        queue_limit: callers allowed to block waiting for a slot; a
            caller arriving with the queue full is rejected at once.
            0 disables queueing (immediate shed when saturated).

    Raises:
        SearchError: if a limit is out of range.
    """

    def __init__(self, max_in_flight: int = 4, queue_limit: int = 16) -> None:
        if max_in_flight < 1:
            raise SearchError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if queue_limit < 0:
            raise SearchError(f"queue_limit must be >= 0, got {queue_limit}")
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self._condition = Condition()
        self._in_flight = 0
        self._waiting = 0
        self._shed = 0

    @property
    def in_flight(self) -> int:
        """Requests currently holding an execution slot."""
        with self._condition:
            return self._in_flight

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        with self._condition:
            return self._waiting

    @property
    def shed(self) -> int:
        """Requests rejected since construction."""
        with self._condition:
            return self._shed

    def try_admit(self, wait_seconds: float = 0.0) -> bool:
        """Claim an execution slot, waiting up to ``wait_seconds``.

        Returns True when admitted — the caller **must** pair it with
        :meth:`release`.  False means the request was shed: the queue
        was already full, or no slot freed up within the wait budget.
        """
        with self._condition:
            if self._in_flight < self.max_in_flight:
                self._in_flight += 1
                return True
            if wait_seconds <= 0 or self._waiting >= self.queue_limit:
                self._shed += 1
                return False
            self._waiting += 1
            expires_at = time.monotonic() + wait_seconds
            try:
                while self._in_flight >= self.max_in_flight:
                    remaining = expires_at - time.monotonic()
                    if remaining <= 0:
                        self._shed += 1
                        return False
                    # Re-check the predicate after every wake-up, timed
                    # out or not — a slot freed at the timeout boundary
                    # should still admit.
                    self._condition.wait(remaining)
                self._in_flight += 1
                return True
            finally:
                self._waiting -= 1

    def release(self) -> None:
        """Return an execution slot (wakes one queued waiter).

        Raises:
            SearchError: when called with nothing admitted (a pairing
                bug in the caller).
        """
        with self._condition:
            if self._in_flight < 1:
                raise SearchError("release() without a matching admit")
            self._in_flight -= 1
            self._condition.notify()

    def snapshot(self) -> dict[str, int]:
        """Current occupancy + lifetime shed count (one lock trip)."""
        with self._condition:
            return {
                "in_flight": self._in_flight,
                "waiting": self._waiting,
                "shed": self._shed,
                "max_in_flight": self.max_in_flight,
                "queue_limit": self.queue_limit,
            }

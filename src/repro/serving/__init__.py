"""The search service layer: a resilient HTTP/JSON server + load harness.

Everything below ``repro.serving`` treats the engines as backends:

* :mod:`repro.serving.admission` — bounded-concurrency admission
  control (max in-flight, bounded wait queue, load shedding);
* :mod:`repro.serving.server` — a long-lived threaded HTTP server over
  a :class:`~repro.database.Database` or engine, with per-request
  deadlines, degraded-shard annotations, and Prometheus metrics;
* :mod:`repro.serving.loadgen` — closed/open-loop load generation
  emitting latency percentiles and shed/degraded counts as a
  ``repro.bench/v1`` document.

See ``docs/SERVING.md`` for the endpoint and response contracts.
"""

from repro.serving.admission import AdmissionController
from repro.serving.loadgen import (
    LoadgenResult,
    run_loadgen,
    run_serving_benchmark,
)
from repro.serving.server import SearchServer, ServerConfig

__all__ = [
    "AdmissionController",
    "LoadgenResult",
    "SearchServer",
    "ServerConfig",
    "run_loadgen",
    "run_serving_benchmark",
]

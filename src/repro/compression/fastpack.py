"""Vectorised variable-length code packing.

Index construction encodes millions of small integers; doing that one
``write_bits`` call at a time dominates build time.  This module
computes whole *arrays* of Elias-gamma and Golomb code patterns with
numpy and packs them into a byte buffer with eight scatter-OR passes —
bit-identical to the scalar :class:`~repro.compression.bitio.BitWriter`
output, which the tests pin down.

The vector path covers codes up to :data:`MAX_VECTOR_BITS` bits (a
pattern must fit an aligned 64-bit window at any intra-byte offset);
the rare longer code — a huge Golomb quotient — is spliced in with a
scalar fallback.
"""

from __future__ import annotations

import numpy as np

from repro.compression.golomb import GolombCodec
from repro.errors import CodecValueError

#: Longest code the scatter windows can hold: 7 offset bits + the code
#: must fit in 64.
MAX_VECTOR_BITS = 57

#: Largest value whose gamma code fits the vector window:
#: value + 1 < 2**29 gives a code of at most 2*28 + 1 = 57 bits.
MAX_GAMMA_VALUE = (1 << 28) - 1


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """bit_length of each value (values >= 1, exactly, via frexp)."""
    _, exponents = np.frexp(values.astype(np.float64))
    return exponents.astype(np.int64)


def gamma_code_array(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Elias-gamma patterns and bit lengths for an array of values.

    Matches ``EliasGammaCodec`` (which encodes ``value + 1``): the
    pattern is ``low_bits`` one-bits, a zero, then the low bits of the
    shifted value.

    Raises:
        CodecValueError: if any value is negative or exceeds
            :data:`MAX_GAMMA_VALUE` (whose code would not fit the
            vector window).
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and (int(values.min(initial=0)) < 0
                        or int(values.max(initial=0)) > MAX_GAMMA_VALUE):
        raise CodecValueError("gamma vector path: value out of range")
    shifted = (values + 1).astype(np.uint64)
    low_bits = (_bit_lengths(values + 1) - 1).astype(np.uint64)
    ones = (np.uint64(1) << low_bits) - np.uint64(1)
    mask = ones  # the low `low_bits` bits
    patterns = (ones << (low_bits + np.uint64(1))) | (shifted & mask)
    lengths = (2 * low_bits.astype(np.int64) + 1)
    return patterns, lengths


def golomb_code_array(
    values: np.ndarray, parameter: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Golomb patterns, bit lengths, and an overflow mask.

    Matches ``GolombCodec``: a unary quotient (ones then zero) followed
    by a truncated-binary remainder.  Codes longer than
    :data:`MAX_VECTOR_BITS` get a zero pattern and a set overflow flag;
    the caller must encode those scalars itself.

    Raises:
        CodecValueError: if the parameter is invalid or a value is
            negative.
    """
    if parameter < 1:
        raise CodecValueError(f"Golomb parameter must be >= 1, got {parameter}")
    values = np.asarray(values, dtype=np.int64)
    if values.size and int(values.min(initial=0)) < 0:
        raise CodecValueError("golomb vector path: negative value")
    quotients = (values // parameter).astype(np.uint64)
    remainders = (values % parameter).astype(np.uint64)

    if parameter > 1:
        ceil_bits = (parameter - 1).bit_length()
        threshold = (1 << ceil_bits) - parameter
        short = remainders < np.uint64(threshold)
        remainder_bits = np.where(short, ceil_bits - 1, ceil_bits).astype(
            np.uint64
        )
        remainder_values = np.where(
            short, remainders, remainders + np.uint64(threshold)
        ).astype(np.uint64)
    else:
        remainder_bits = np.zeros(values.shape[0], dtype=np.uint64)
        remainder_values = np.zeros(values.shape[0], dtype=np.uint64)

    lengths = quotients.astype(np.int64) + 1 + remainder_bits.astype(np.int64)
    overflow = lengths > MAX_VECTOR_BITS
    safe_quotients = np.where(overflow, np.uint64(0), quotients)
    ones = (np.uint64(1) << safe_quotients) - np.uint64(1)
    patterns = (
        ones << (remainder_bits + np.uint64(1))
    ) | remainder_values
    patterns = np.where(overflow, np.uint64(0), patterns)
    return patterns, lengths, overflow


def pack_patterns(
    patterns: np.ndarray,
    lengths: np.ndarray,
    long_values: list[tuple[int, int, int]] | None = None,
) -> bytes:
    """Concatenate MSB-first codes into a zero-padded byte string.

    Args:
        patterns: uint64 code patterns, right-aligned.
        lengths: bit length of each code (0 allowed; emits nothing).
        long_values: optional scalar splices for overflow codes, as
            ``(slot, quotient, tail_pattern_bits)`` is *not* the
            interface — see :func:`encode_golomb_stream` which handles
            overflow before calling here.  This function requires every
            length <= :data:`MAX_VECTOR_BITS`.

    Raises:
        CodecValueError: if a length exceeds the vector window.
    """
    patterns = np.asarray(patterns, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size and int(lengths.max(initial=0)) > MAX_VECTOR_BITS:
        raise CodecValueError(
            "pack_patterns handles codes up to "
            f"{MAX_VECTOR_BITS} bits; splice longer codes separately"
        )
    del long_values
    total_bits = int(lengths.sum())
    if not total_bits:
        return b""
    ends = np.cumsum(lengths)
    starts = ends - lengths
    byte_slots = (starts >> 3).astype(np.int64)
    bit_offsets = (starts & 7).astype(np.uint64)

    # Each code sits inside an 8-byte window anchored at its byte slot:
    # shift it up so its first bit lands at the window's bit_offset.
    window = patterns << (
        np.uint64(64) - bit_offsets - lengths.astype(np.uint64)
    )
    out = np.zeros((total_bits + 7) // 8 + 8, dtype=np.uint8)
    for byte_index in range(8):
        shift = np.uint64(56 - 8 * byte_index)
        chunk = ((window >> shift) & np.uint64(0xFF)).astype(np.uint8)
        np.bitwise_or.at(out, byte_slots + byte_index, chunk)
    return out[: (total_bits + 7) // 8].tobytes()


def interleave_codes(
    *streams: tuple[np.ndarray, np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Zip per-field code arrays into one per-entry code sequence.

    Given k (patterns, lengths) pairs of equal size n, produces arrays
    of size k*n ordered entry-by-entry — the layout the postings
    codec's section A uses (doc gap, then count, per entry).
    """
    if not streams:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    size = streams[0][0].shape[0]
    patterns = np.empty(size * len(streams), dtype=np.uint64)
    lengths = np.empty(size * len(streams), dtype=np.int64)
    for slot, (stream_patterns, stream_lengths) in enumerate(streams):
        patterns[slot :: len(streams)] = stream_patterns
        lengths[slot :: len(streams)] = stream_lengths
    return patterns, lengths


def golomb_code_array_multi(
    values: np.ndarray, parameters: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Golomb patterns with a *per-value* parameter.

    The whole-index bulk encoder derives a different parameter for
    every posting list; this computes all lists' codes in one pass.
    Semantics otherwise identical to :func:`golomb_code_array`.

    Raises:
        CodecValueError: if shapes disagree, a parameter is < 1, or a
            value is negative.
    """
    values = np.asarray(values, dtype=np.int64)
    parameters = np.asarray(parameters, dtype=np.int64)
    if values.shape != parameters.shape:
        raise CodecValueError("values and parameters must be parallel")
    if parameters.size and int(parameters.min(initial=1)) < 1:
        raise CodecValueError("Golomb parameters must be >= 1")
    if values.size and int(values.min(initial=0)) < 0:
        raise CodecValueError("golomb vector path: negative value")

    quotients = (values // parameters).astype(np.uint64)
    remainders = (values % parameters).astype(np.uint64)
    # ceil(log2 b) via bit_length(b - 1); b == 1 gets zero remainder bits.
    multi = parameters > 1
    ceil_bits = np.zeros(values.shape[0], dtype=np.uint64)
    if bool(multi.any()):
        ceil_bits[multi] = _bit_lengths(parameters[multi] - 1).astype(
            np.uint64
        )
    thresholds = (np.uint64(1) << ceil_bits) - parameters.astype(np.uint64)
    short = remainders < thresholds
    remainder_bits = np.where(
        multi, np.where(short, ceil_bits - np.uint64(1), ceil_bits),
        np.uint64(0),
    ).astype(np.uint64)
    remainder_values = np.where(
        multi,
        np.where(short, remainders, remainders + thresholds),
        np.uint64(0),
    ).astype(np.uint64)

    lengths = quotients.astype(np.int64) + 1 + remainder_bits.astype(np.int64)
    overflow = lengths > MAX_VECTOR_BITS
    safe_quotients = np.where(overflow, np.uint64(0), quotients)
    ones = (np.uint64(1) << safe_quotients) - np.uint64(1)
    patterns = (ones << (remainder_bits + np.uint64(1))) | remainder_values
    patterns = np.where(overflow, np.uint64(0), patterns)
    return patterns, lengths, overflow


def pack_grouped(
    patterns: np.ndarray, lengths: np.ndarray, group_ids: np.ndarray
) -> tuple[bytes, np.ndarray]:
    """Pack codes into one buffer with byte alignment between groups.

    Args:
        patterns / lengths: as for :func:`pack_patterns`.
        group_ids: non-decreasing group index per code (0..G-1, every
            group non-empty).

    Returns:
        ``(buffer, bounds)`` where ``bounds`` has G+1 byte offsets;
        group g's bytes are ``buffer[bounds[g]:bounds[g+1]]`` — exactly
        what encoding each group separately would produce.

    Raises:
        CodecValueError: if a code exceeds the vector window or the
            group ids are not non-decreasing.
    """
    patterns = np.asarray(patterns, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if lengths.size and int(lengths.max(initial=0)) > MAX_VECTOR_BITS:
        raise CodecValueError("pack_grouped: code exceeds the vector window")
    if group_ids.size and int(np.diff(group_ids).min(initial=0)) < 0:
        raise CodecValueError("pack_grouped: group ids must be non-decreasing")
    if not lengths.size:
        return b"", np.zeros(1, dtype=np.int64)

    num_groups = int(group_ids[-1]) + 1
    group_bits = np.bincount(group_ids, weights=lengths,
                             minlength=num_groups).astype(np.int64)
    group_bytes = (group_bits + 7) // 8
    bounds = np.zeros(num_groups + 1, dtype=np.int64)
    np.cumsum(group_bytes, out=bounds[1:])

    global_prefix = np.cumsum(lengths) - lengths
    first_of_group = np.zeros(num_groups, dtype=np.int64)
    unique_groups, first_indices = np.unique(group_ids, return_index=True)
    first_of_group[unique_groups] = global_prefix[first_indices]
    starts = (
        bounds[group_ids] * 8 + (global_prefix - first_of_group[group_ids])
    )

    byte_slots = (starts >> 3).astype(np.int64)
    bit_offsets = (starts & 7).astype(np.uint64)
    window = patterns << (
        np.uint64(64) - bit_offsets - lengths.astype(np.uint64)
    )
    out = np.zeros(int(bounds[-1]) + 8, dtype=np.uint8)
    for byte_index in range(8):
        shift = np.uint64(56 - 8 * byte_index)
        chunk = ((window >> shift) & np.uint64(0xFF)).astype(np.uint8)
        np.bitwise_or.at(out, byte_slots + byte_index, chunk)
    return out[: int(bounds[-1])].tobytes(), bounds


def encode_gap_stream(
    gaps: np.ndarray, golomb_parameter: int
) -> bytes | None:
    """Fast path: Golomb-encode a gap array, or None on overflow.

    Bit-identical to encoding each gap with ``GolombCodec``; returns
    ``None`` when a code exceeds the vector window so the caller can
    fall back to the scalar writer.
    """
    patterns, lengths, overflow = golomb_code_array(gaps, golomb_parameter)
    if bool(overflow.any()):
        return None
    return pack_patterns(patterns, lengths)


def scalar_reference_bits(values: np.ndarray, codec: GolombCodec) -> bytes:
    """Scalar encoding used by equivalence tests."""
    from repro.compression.bitio import BitWriter

    writer = BitWriter()
    for value in np.asarray(values).tolist():
        codec.encode_value(writer, int(value))
    return writer.getvalue()

"""Golomb and Rice codes (Golomb, 1966) with the classic parameter rule.

The paper compresses document-gap sequences with Golomb codes, choosing
the parameter from the list density as in Witten, Moffat & Bell: for a
list of ``n`` pointers over a universe of ``N`` slots the Bernoulli
model gives p = n / N and

    b = ceil( log(2 - p) / -log(1 - p) )

which makes the expected code length nearly optimal.  The remainder is
written in truncated binary so non-power-of-two parameters lose nothing.
"""

from __future__ import annotations

import math

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.integer import IntegerCodec, register_codec
from repro.errors import CodecValueError


def optimal_golomb_parameter(num_pointers: int, universe: int) -> int:
    """The Bernoulli-model Golomb parameter for a gap list.

    Args:
        num_pointers: how many gaps the list holds.
        universe: the range the cumulative gaps span (e.g. collection
            size in sequences for document gaps).

    Returns:
        The parameter ``b`` >= 1.

    Raises:
        CodecValueError: if either argument is non-positive.
    """
    if num_pointers <= 0 or universe <= 0:
        raise CodecValueError(
            f"need positive pointer count and universe, got "
            f"{num_pointers}/{universe}"
        )
    density = min(num_pointers / universe, 1.0 - 1e-12)
    if density <= 0.0:
        return 1
    parameter = math.ceil(math.log(2.0 - density) / -math.log(1.0 - density))
    return max(1, parameter)


@register_codec
class GolombCodec(IntegerCodec):
    """Golomb code with arbitrary parameter ``b``.

    A value n >= 0 is split into quotient q = n // b (unary) and
    remainder r = n % b (truncated binary).

    Raises:
        CodecValueError: at construction if ``b`` < 1.
    """

    name = "golomb"

    def __init__(self, parameter: int = 16) -> None:
        if parameter < 1:
            raise CodecValueError(f"Golomb parameter must be >= 1, got {parameter}")
        self.parameter = parameter
        # Truncated binary: ceil(log2 b) bits normally, one fewer for the
        # first `threshold` remainders.
        if parameter > 1:
            ceil_bits = (parameter - 1).bit_length()
            self._remainder_bits = ceil_bits
            self._threshold = (1 << ceil_bits) - parameter
        else:
            self._remainder_bits = 0
            self._threshold = 0

    @classmethod
    def for_density(cls, num_pointers: int, universe: int) -> "GolombCodec":
        """A codec with the Bernoulli-optimal parameter for a gap list."""
        return cls(optimal_golomb_parameter(num_pointers, universe))

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_non_negative(value)
        quotient, remainder = divmod(value, self.parameter)
        writer.write_unary(quotient)
        if not self._remainder_bits:
            return
        if remainder < self._threshold:
            writer.write_bits(remainder, self._remainder_bits - 1)
        else:
            writer.write_bits(remainder + self._threshold, self._remainder_bits)

    def decode_value(self, reader: BitReader) -> int:
        quotient = reader.read_unary()
        if not self._remainder_bits:
            return quotient * self.parameter
        remainder = reader.read_bits(self._remainder_bits - 1)
        if remainder >= self._threshold:
            remainder = (
                (remainder << 1) | reader.read_bits(1)
            ) - self._threshold
        return quotient * self.parameter + remainder

    def code_length(self, value: int) -> int:
        self._check_non_negative(value)
        quotient, remainder = divmod(value, self.parameter)
        if not self._remainder_bits:
            return quotient + 1
        remainder_bits = self._remainder_bits - (remainder < self._threshold)
        return quotient + 1 + remainder_bits


@register_codec
class RiceCodec(GolombCodec):
    """Rice code: Golomb restricted to power-of-two parameters.

    The remainder is then a plain fixed-width field, which is the form
    hardware and byte-oriented implementations prefer.

    Raises:
        CodecValueError: at construction if ``log2_parameter`` < 0.
    """

    name = "rice"

    def __init__(self, log2_parameter: int = 4) -> None:
        if log2_parameter < 0:
            raise CodecValueError(
                f"Rice log2 parameter must be >= 0, got {log2_parameter}"
            )
        super().__init__(1 << log2_parameter)
        self.log2_parameter = log2_parameter

    @classmethod
    def for_density(cls, num_pointers: int, universe: int) -> "RiceCodec":
        """The Rice codec nearest the Bernoulli-optimal Golomb parameter."""
        target = optimal_golomb_parameter(num_pointers, universe)
        log2 = max(0, round(math.log2(target))) if target > 1 else 0
        return cls(log2)

"""Variable-byte integer code.

Seven payload bits per byte with a continuation flag in the high bit
(1 = more bytes follow), least-significant group first.  Byte alignment
makes it the fastest of the codecs to decode at a modest cost in space —
the trade-off the E2 experiment quantifies.
"""

from __future__ import annotations

from typing import Iterable

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.integer import IntegerCodec, register_codec


@register_codec
class VByteCodec(IntegerCodec):
    """Variable-byte code over non-negative integers."""

    name = "vbyte"

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_non_negative(value)
        while value >= 0x80:
            writer.write_bits(0x80 | (value & 0x7F), 8)
            value >>= 7
        writer.write_bits(value, 8)

    def decode_value(self, reader: BitReader) -> int:
        value = 0
        shift = 0
        while True:
            byte = reader.read_bits(8)
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def code_length(self, value: int) -> int:
        self._check_non_negative(value)
        return 8 * max(1, (value.bit_length() + 6) // 7)

    def encode_array(self, values: Iterable[int]) -> bytes:
        """Byte-level fast path (no bit accumulator)."""
        out = bytearray()
        for value in values:
            self._check_non_negative(value)
            while value >= 0x80:
                out.append(0x80 | (value & 0x7F))
                value >>= 7
            out.append(value)
        return bytes(out)

    def decode_array(self, data: bytes, count: int) -> list[int]:
        """Byte-level fast path matching :meth:`encode_array`."""
        values: list[int] = []
        value = 0
        shift = 0
        for byte in data:
            value |= (byte & 0x7F) << shift
            if byte & 0x80:
                shift += 7
            else:
                values.append(value)
                value = 0
                shift = 0
                if len(values) == count:
                    return values
        if len(values) < count:
            from repro.errors import BitStreamError

            raise BitStreamError(
                f"vbyte stream held {len(values)} values, wanted {count}"
            )
        return values

"""Integer-codec interface and the unary baseline codec.

All codecs encode **non-negative** integers.  Codes whose textbook form
is defined only for positive integers (Elias gamma/delta) shift by one
internally, so from the caller's perspective every codec shares the same
domain and round-trips the same values.  This matches how the paper's
index uses them: document gaps are >= 1, in-sequence offsets and counts
can be stored directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from repro.compression.bitio import BitReader, BitWriter
from repro.errors import CodecError, CodecValueError


class IntegerCodec(ABC):
    """A self-delimiting binary code over non-negative integers."""

    #: Registry key; subclasses set a class attribute.
    name: str = ""

    @abstractmethod
    def encode_value(self, writer: BitWriter, value: int) -> None:
        """Append the code for ``value`` to ``writer``."""

    @abstractmethod
    def decode_value(self, reader: BitReader) -> int:
        """Read one code from ``reader`` and return its value."""

    @abstractmethod
    def code_length(self, value: int) -> int:
        """Length in bits of the code for ``value`` (without encoding it)."""

    def encode_array(self, values: Iterable[int]) -> bytes:
        """Encode a stream of values into a zero-padded byte string."""
        writer = BitWriter()
        for value in values:
            self.encode_value(writer, value)
        return writer.getvalue()

    def decode_array(self, data: bytes, count: int) -> list[int]:
        """Decode exactly ``count`` values from ``data``.

        Raises:
            BitStreamError: if the stream holds fewer than ``count`` codes.
        """
        reader = BitReader(data)
        return [self.decode_value(reader) for _ in range(count)]

    def encoded_bit_length(self, values: Iterable[int]) -> int:
        """Total code length in bits for a stream of values."""
        return sum(self.code_length(value) for value in values)

    def _check_non_negative(self, value: int) -> None:
        if value < 0:
            raise CodecValueError(
                f"{self.name or type(self).__name__} cannot encode {value}"
            )


class UnaryCodec(IntegerCodec):
    """Unary code: ``n`` one-bits followed by a zero-bit.

    Only sensible for very small values; included as the baseline the
    parameterised codes are measured against.
    """

    name = "unary"

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_non_negative(value)
        writer.write_unary(value)

    def decode_value(self, reader: BitReader) -> int:
        return reader.read_unary()

    def code_length(self, value: int) -> int:
        self._check_non_negative(value)
        return value + 1


class FixedWidthCodec(IntegerCodec):
    """Plain binary in a fixed number of bits — the "uncompressed" control.

    Raises:
        CodecValueError: at construction if ``width`` is not positive, or
            at encode time if a value does not fit.
    """

    name = "fixed"

    def __init__(self, width: int = 32) -> None:
        if width <= 0:
            raise CodecValueError(f"fixed width must be positive, got {width}")
        self.width = width

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_non_negative(value)
        writer.write_bits(value, self.width)

    def decode_value(self, reader: BitReader) -> int:
        return reader.read_bits(self.width)

    def code_length(self, value: int) -> int:
        self._check_non_negative(value)
        if value.bit_length() > self.width:
            raise CodecValueError(
                f"{value} does not fit in {self.width} bits"
            )
        return self.width


_REGISTRY: dict[str, type[IntegerCodec]] = {}


def register_codec(cls: type[IntegerCodec]) -> type[IntegerCodec]:
    """Class decorator adding a codec to the by-name registry."""
    if not cls.name:
        raise CodecError(f"codec {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def codec_names() -> Sequence[str]:
    """Registered codec names, sorted."""
    return sorted(_REGISTRY)


def make_codec(name: str, **kwargs) -> IntegerCodec:
    """Instantiate a registered codec by name.

    Raises:
        CodecError: if the name is unknown.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; known: {', '.join(codec_names())}"
        ) from None
    return cls(**kwargs)


register_codec(UnaryCodec)
register_codec(FixedWidthCodec)

"""Elias gamma and delta codes (Elias, 1975).

The paper's index uses gamma codes for within-document frequencies; the
delta code is included because it wins for larger magnitudes and appears
in the E2 codec comparison.  Both are non-parameterised.  The textbook
codes are defined for positive integers; these implementations shift by
one so the public domain is all non-negative integers, consistent with
:class:`repro.compression.integer.IntegerCodec`.
"""

from __future__ import annotations

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.integer import IntegerCodec, register_codec


@register_codec
class EliasGammaCodec(IntegerCodec):
    """Elias gamma: unary length prefix, then the low bits of the value.

    For n >= 0 let m = n + 1 with binary length L: the code is
    ``unary(L - 1)`` followed by the L - 1 low-order bits of m.
    """

    name = "gamma"

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_non_negative(value)
        shifted = value + 1
        low_bits = shifted.bit_length() - 1
        writer.write_unary(low_bits)
        writer.write_bits(shifted & ((1 << low_bits) - 1), low_bits)

    def decode_value(self, reader: BitReader) -> int:
        low_bits = reader.read_unary()
        return ((1 << low_bits) | reader.read_bits(low_bits)) - 1

    def code_length(self, value: int) -> int:
        self._check_non_negative(value)
        return 2 * (value + 1).bit_length() - 1


@register_codec
class EliasDeltaCodec(IntegerCodec):
    """Elias delta: the length field itself is gamma-coded.

    Asymptotically shorter than gamma (log + O(log log) vs. 2 log); the
    crossover is around n = 15, which is why short d-gap distributions
    favour gamma/Golomb and long ones favour delta.
    """

    name = "delta"

    def __init__(self) -> None:
        self._gamma = EliasGammaCodec()

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_non_negative(value)
        shifted = value + 1
        low_bits = shifted.bit_length() - 1
        self._gamma.encode_value(writer, low_bits)
        writer.write_bits(shifted & ((1 << low_bits) - 1), low_bits)

    def decode_value(self, reader: BitReader) -> int:
        low_bits = self._gamma.decode_value(reader)
        return ((1 << low_bits) | reader.read_bits(low_bits)) - 1

    def code_length(self, value: int) -> int:
        self._check_non_negative(value)
        low_bits = (value + 1).bit_length() - 1
        return self._gamma.code_length(low_bits) + low_bits

"""Compiled (numba) postings-decode kernels — the optional top tier.

Importing this module requires numba; :mod:`repro.compression.fastunpack`
probes the import once and silently falls back to its numpy block
decoder when the compiler is missing, so nothing outside this file may
assume numba exists.

The kernels are deliberately scalar bit-cursor loops — exactly the
shape the pure-Python decoder has — because that is what a JIT turns
into tight branch-free machine code.  They return ``None`` for any
stream they cannot finish (truncation, preposterous code lengths); the
caller then re-decodes on the numpy tier, which reproduces the scalar
path's values or exception bit-for-bit.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 — the probe import that gates this tier


@njit(cache=True)
def _section_a_kernel(
    buf: np.ndarray,
    df: int,
    parameter: int,
    remainder_bits: int,
    threshold: int,
    docs: np.ndarray,
    counts: np.ndarray,
) -> int:
    """Decode ``df`` (Golomb gap, gamma count) pairs from bit 0.

    Returns the bit position after the last code, or -1 when the
    stream ends early or a code is too long for int64 arithmetic.
    """
    total_bits = buf.shape[0] * 8
    position = 0
    previous_doc = -1
    for slot in range(df):
        quotient = 0
        while True:
            if position >= total_bits:
                return -1
            bit = (buf[position >> 3] >> (7 - (position & 7))) & 1
            position += 1
            if bit == 0:
                break
            quotient += 1
        remainder = 0
        if remainder_bits > 0:
            width = remainder_bits - 1
            if position + width > total_bits:
                return -1
            for _ in range(width):
                remainder = (remainder << 1) | (
                    (buf[position >> 3] >> (7 - (position & 7))) & 1
                )
                position += 1
            if remainder >= threshold:
                if position >= total_bits:
                    return -1
                remainder = (
                    (remainder << 1)
                    | ((buf[position >> 3] >> (7 - (position & 7))) & 1)
                ) - threshold
                position += 1
        previous_doc += quotient * parameter + remainder + 1
        docs[slot] = previous_doc

        low_bits = 0
        while True:
            if position >= total_bits:
                return -1
            bit = (buf[position >> 3] >> (7 - (position & 7))) & 1
            position += 1
            if bit == 0:
                break
            low_bits += 1
        if low_bits > 62 or position + low_bits > total_bits:
            return -1
        shifted = 1
        for _ in range(low_bits):
            shifted = (shifted << 1) | (
                (buf[position >> 3] >> (7 - (position & 7))) & 1
            )
            position += 1
        counts[slot] = shifted  # gamma value + 1 == the stored count
    return position


def decode_docs_counts(
    raw: np.ndarray, df: int, parameter: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Section-A decode on the compiled tier, or None to fall back."""
    docs = np.empty(df, dtype=np.int64)
    counts = np.empty(df, dtype=np.int64)
    if not df:
        return docs, counts
    if parameter > 1:
        remainder_bits = (parameter - 1).bit_length()
        threshold = (1 << remainder_bits) - parameter
    else:
        remainder_bits = 0
        threshold = 0
    end = _section_a_kernel(
        raw, df, parameter, remainder_bits, threshold, docs, counts
    )
    if end < 0:
        return None
    return docs, counts

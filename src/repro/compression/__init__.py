"""Compression substrate: bit I/O, integer codes, direct sequence coding."""

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.direct import (
    DirectCodingStats,
    decode_sequence,
    encode_sequence,
    measure,
    raw_two_bit_size,
)
from repro.compression.elias import EliasDeltaCodec, EliasGammaCodec
from repro.compression.golomb import (
    GolombCodec,
    RiceCodec,
    optimal_golomb_parameter,
)
from repro.compression.integer import (
    FixedWidthCodec,
    IntegerCodec,
    UnaryCodec,
    codec_names,
    make_codec,
    register_codec,
)
from repro.compression.vbyte import VByteCodec

__all__ = [
    "BitReader",
    "BitWriter",
    "DirectCodingStats",
    "EliasDeltaCodec",
    "EliasGammaCodec",
    "FixedWidthCodec",
    "GolombCodec",
    "IntegerCodec",
    "RiceCodec",
    "UnaryCodec",
    "VByteCodec",
    "codec_names",
    "decode_sequence",
    "encode_sequence",
    "make_codec",
    "measure",
    "optimal_golomb_parameter",
    "raw_two_bit_size",
    "register_codec",
]

"""Direct coding of nucleotide sequences (the cino scheme).

Bases are packed two bits each, four to a byte, which both compresses
the collection close to 2 bits/base and allows vectorised decoding.
Wildcards are rare, so they are carried losslessly in a side list: a
gamma-coded count, Golomb-coded position gaps (parameter derived from
the wildcard density, so the decoder can recompute it), and a four-bit
identity per wildcard.  The two-bit payload is byte-aligned so decoding
is a single numpy shift-and-mask pass — the property behind the paper's
"extremely fast decompression" claim and the E8 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.elias import EliasGammaCodec
from repro.compression.golomb import GolombCodec
from repro.errors import CodecError
from repro.sequences.alphabet import (
    IUPAC_ALPHABET,
    NUM_BASES,
    WILDCARD_MIN_CODE,
)

_GAMMA = EliasGammaCodec()
_PACK_WEIGHTS = np.array([64, 16, 4, 1], dtype=np.uint8)
_WILDCARD_ID_BITS = 4


def _pack_bases(codes: np.ndarray) -> bytes:
    """Pack base codes (wildcards already zeroed) four to a byte."""
    length = codes.shape[0]
    padded_length = -(-length // 4) * 4
    padded = np.zeros(padded_length, dtype=np.uint8)
    padded[:length] = codes
    return (padded.reshape(-1, 4) * _PACK_WEIGHTS).sum(
        axis=1, dtype=np.uint8
    ).tobytes()


def _unpack_bases(packed: np.ndarray, length: int) -> np.ndarray:
    """Expand packed bytes back into ``length`` base codes."""
    expanded = np.empty((packed.shape[0], 4), dtype=np.uint8)
    expanded[:, 0] = packed >> 6
    expanded[:, 1] = (packed >> 4) & 3
    expanded[:, 2] = (packed >> 2) & 3
    expanded[:, 3] = packed & 3
    return expanded.reshape(-1)[:length]


def encode_sequence(codes: np.ndarray) -> bytes:
    """Direct-code an array of IUPAC codes into a byte string.

    Raises:
        CodecError: if a code is outside the IUPAC range.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max(initial=0)) >= len(IUPAC_ALPHABET):
        raise CodecError("sequence holds codes outside the IUPAC alphabet")

    writer = BitWriter()
    length = int(codes.shape[0])
    _GAMMA.encode_value(writer, length)

    wildcard_positions = np.flatnonzero(codes >= WILDCARD_MIN_CODE)
    _GAMMA.encode_value(writer, int(wildcard_positions.shape[0]))
    if wildcard_positions.shape[0]:
        golomb = GolombCodec.for_density(
            int(wildcard_positions.shape[0]), max(length, 1)
        )
        previous = -1
        for position in wildcard_positions:
            golomb.encode_value(writer, int(position) - previous - 1)
            previous = int(position)
        for position in wildcard_positions:
            writer.write_bits(
                int(codes[position]) - WILDCARD_MIN_CODE, _WILDCARD_ID_BITS
            )

    writer.align()
    if length:
        base_codes = codes.copy()
        base_codes[wildcard_positions] = 0
        writer.write_bytes(_pack_bases(base_codes))
    return writer.getvalue()


def decode_sequence(data: bytes) -> np.ndarray:
    """Invert :func:`encode_sequence`.

    Raises:
        BitStreamError: if the byte string is truncated.
    """
    reader = BitReader(data)
    length = _GAMMA.decode_value(reader)
    wildcard_count = _GAMMA.decode_value(reader)
    # Corruption guards: a valid payload always holds the 2-bit body,
    # and wildcards are positions, so neither field can exceed what the
    # byte count admits.
    if length > 4 * len(data):
        raise CodecError(
            f"corrupt direct coding: length {length} exceeds payload"
        )
    if wildcard_count > length:
        raise CodecError(
            f"corrupt direct coding: {wildcard_count} wildcards in a "
            f"{length}-base sequence"
        )

    wildcard_positions = np.empty(wildcard_count, dtype=np.int64)
    wildcard_codes = np.empty(wildcard_count, dtype=np.uint8)
    if wildcard_count:
        golomb = GolombCodec.for_density(wildcard_count, max(length, 1))
        previous = -1
        for slot in range(wildcard_count):
            previous += golomb.decode_value(reader) + 1
            wildcard_positions[slot] = previous
        if previous >= length:
            raise CodecError(
                f"corrupt direct coding: wildcard offset {previous} past "
                f"the sequence end {length}"
            )
        for slot in range(wildcard_count):
            wildcard_codes[slot] = (
                reader.read_bits(_WILDCARD_ID_BITS) + WILDCARD_MIN_CODE
            )

    reader.align()
    if not length:
        return np.empty(0, dtype=np.uint8)
    packed = reader.read_aligned_bytes(-(-length // 4))
    codes = _unpack_bases(packed, length)
    if wildcard_count:
        codes[wildcard_positions] = wildcard_codes
    return codes


@dataclass(frozen=True)
class DirectCodingStats:
    """Space accounting for a direct-coded sequence batch."""

    total_bases: int
    total_wildcards: int
    compressed_bytes: int

    @property
    def bits_per_base(self) -> float:
        """Compressed bits per input position (bases + wildcards)."""
        positions = self.total_bases + self.total_wildcards
        if not positions:
            return 0.0
        return 8.0 * self.compressed_bytes / positions


def measure(sequences: list[np.ndarray]) -> DirectCodingStats:
    """Direct-code a batch and report the space statistics."""
    total_bases = 0
    total_wildcards = 0
    compressed = 0
    for codes in sequences:
        codes = np.asarray(codes, dtype=np.uint8)
        wildcards = int(np.count_nonzero(codes >= WILDCARD_MIN_CODE))
        total_wildcards += wildcards
        total_bases += int(codes.shape[0]) - wildcards
        compressed += len(encode_sequence(codes))
    return DirectCodingStats(total_bases, total_wildcards, compressed)


def raw_two_bit_size(length: int) -> int:
    """Bytes a bare 2-bit packing of ``length`` bases would need."""
    if length < 0:
        raise CodecError(f"negative sequence length {length}")
    return -(-length * 2 // 8)


assert NUM_BASES == 4, "direct coding packs exactly four bases per byte"

"""Vectorised variable-length code unpacking — the decode twin of
:mod:`repro.compression.fastpack`.

Query evaluation decodes millions of small Golomb/Elias codes; doing
that one ``read_bits`` call at a time dominates the coarse phase.  This
module block-decodes a whole d-gap stream in one numpy pass:

1. **bit unpack** — the blob becomes a bit array plus an aligned
   64-bit window per byte offset, so any code of up to
   :data:`~repro.compression.fastpack.MAX_VECTOR_BITS` bits can be read
   at any bit position with one gather;
2. **terminator location** — every unary run ends at the first zero
   bit at or after its start, found for *all* positions at once with a
   reversed ``minimum.accumulate`` (a suffix-min);
3. **transition tables** — for every bit position the table answers
   "if a Golomb (or gamma) code started here, what value would it
   decode to and where would the next code start";
4. **chain resolution** — the code boundaries of one list are the
   orbit of position 0 under the table's next-pointer, computed in
   O(log n) gather rounds by pointer doubling.

The rare code the vector window cannot hold (a huge unary run) and any
truncated stream are *spliced*: the vector prefix is kept and the
scalar codec finishes from the first bad position, so the result —
values or exception — is bit-identical to
:meth:`~repro.compression.integer.IntegerCodec.decode_array`.

The batched entry points decode the posting lists of many intervals in
one table build (per-position Golomb parameters, one 2-D doubling
pass), which is what makes tiny-df lists profitable to vectorise: the
per-bit table cost is paid once per *query*, not once per list, and it
scales with the total compressed size rather than with the entry
count.  :func:`decode_docs_counts_flat` goes one step further and
returns lane-major *flat* arrays so a scorer can accumulate evidence
without ever materialising per-list objects.

Tier selection lives here too (see :func:`resolve_tier`): the
``REPRO_KERNEL`` environment variable picks ``numba`` (compiled kernel,
silently falling back when numba is not importable), ``numpy`` (this
module's block decoder), or ``python`` (the scalar floor); ``auto``
takes the best available.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from repro.compression.bitio import BitReader
from repro.compression.fastpack import MAX_VECTOR_BITS, _bit_lengths
from repro.errors import ReproError

__all__ = [
    "KERNEL_ENV_VAR",
    "TIERS",
    "active_tier",
    "decode_docs_counts",
    "decode_docs_counts_batch",
    "decode_docs_counts_flat",
    "decode_gap_stream",
    "decode_postings",
    "forced_tier",
    "numba_available",
    "resolve_tier",
    "set_active_tier",
]

#: Environment variable selecting the decode tier.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Selectable tiers, fastest first ("auto" resolves to the best available).
TIERS = ("numba", "numpy", "python")

# -- tier selection ---------------------------------------------------

_NUMBA_MODULE = None
_NUMBA_CHECKED = False
_ACTIVE: str | None = None


def _numba_kernels():
    """The compiled kernel module, or None when numba is unavailable."""
    global _NUMBA_MODULE, _NUMBA_CHECKED
    if not _NUMBA_CHECKED:
        try:
            from repro.compression import _kernels_numba

            _NUMBA_MODULE = _kernels_numba
        except Exception:
            _NUMBA_MODULE = None
        _NUMBA_CHECKED = True
    return _NUMBA_MODULE


def numba_available() -> bool:
    """Whether the compiled (numba) tier can actually run here."""
    return _numba_kernels() is not None


def resolve_tier(requested: str | None = None) -> str:
    """Resolve a tier request to a runnable tier name.

    Args:
        requested: ``"auto"``, ``"numba"``, ``"numpy"`` or ``"python"``;
            ``None`` reads the ``REPRO_KERNEL`` environment variable
            (missing/empty means ``"auto"``).

    ``numba`` silently degrades to ``numpy`` when the compiler is not
    importable — the flag states a *preference*, not a hard dependency.

    Raises:
        ReproError: if the name is not a known tier.
    """
    name = requested
    if name is None:
        name = os.environ.get(KERNEL_ENV_VAR, "auto")
    name = (name or "auto").strip().lower() or "auto"
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name not in TIERS:
        raise ReproError(
            f"unknown {KERNEL_ENV_VAR} tier {name!r}; expected one of "
            f"{('auto',) + TIERS}"
        )
    if name == "numba" and not numba_available():
        return "numpy"
    return name


def active_tier() -> str:
    """The tier decodes run on (resolved once, then cached)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve_tier()
    return _ACTIVE


def set_active_tier(name: str | None) -> str | None:
    """Force the active tier (``None`` re-resolves lazily from the
    environment).  Returns the previous cached value."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolve_tier(name) if name is not None else None
    return previous


@contextmanager
def forced_tier(name: str | None):
    """Context manager pinning the active tier (tests, benchmarks)."""
    previous = set_active_tier(name)
    try:
        yield active_tier() if name is not None else None
    finally:
        global _ACTIVE
        _ACTIVE = previous


# -- bit-stream tables ------------------------------------------------

_ARANGE_CACHE = np.arange(0, dtype=np.int64)


def _shared_arange(size: int) -> np.ndarray:
    """A read-only view of a shared, growing ``arange`` buffer.

    Every stream build and ragged expansion needs ``arange(n)``; the
    buffer amortises that allocation across calls.  Callers must treat
    the view as immutable.
    """
    global _ARANGE_CACHE
    if _ARANGE_CACHE.shape[0] < size:
        _ARANGE_CACHE = np.arange(
            max(size, 2 * _ARANGE_CACHE.shape[0]), dtype=np.int64
        )
    return _ARANGE_CACHE[:size]



#: Extra sentinel slots on the extended next-zero table: an unclamped
#: Golomb pointer can overshoot ``total_bits`` by at most 1 (terminator)
#: + 63 (short field) + 1 (extension bit), so 65 slots of ``total_bits``
#: fixed point make every such gather safe without a clamping pass.
_POINTER_SLACK = 65


class _StreamTables:
    """Precomputed per-position views of one byte buffer.

    Attributes:
        total_bits: stream length in bits (zero padding included — the
            scalar reader serves padding bits too, so they are real).
        windows: uint64 per byte offset, holding that byte and the next
            seven big-endian (zero-padded past the end).  Built lazily:
            only the single-list ``read_bits`` path needs fields wider
            than the 32-bit window.
        windows32: uint32 per byte offset (that byte and the next
            three) — every batched read fits it, at half the memory
            traffic of the 64-bit gathers.
        next_zero: per bit position, the index of the first zero bit at
            or after it (``total_bits`` when none remains).
        positions: cached ``arange(total_bits + 1)`` — every transition
            table needs it, so it is built once per stream.
    """

    __slots__ = (
        "total_bits", "windows32", "next_zero",
        "next_zero_ext", "positions", "_padded", "_windows",
    )

    def __init__(self, raw: np.ndarray) -> None:
        num_bytes = raw.shape[0]
        total_bits = num_bytes * 8
        padded = np.zeros(num_bytes + 8, dtype=np.uint8)
        padded[:num_bytes] = raw
        windows32 = padded[0 : num_bytes + 1].astype(np.uint32)
        for lane in range(1, 4):
            windows32 <<= np.uint32(8)
            windows32 |= padded[lane : lane + num_bytes + 1]
        positions = _shared_arange(total_bits + 1)
        # next_zero[i] = index of the first zero bit at or after i.  It
        # is a step function that jumps at each zero bit, so build it by
        # run-length expansion: zero k covers the positions after zero
        # k-1 up to and including itself, and the total_bits sentinel
        # covers everything past the last zero (including slot
        # total_bits itself, which is why no separate sentinel store is
        # needed).  This is a prefix-sum-free construction — plain
        # cumsum over the bit array is several times slower, and so is
        # ``np.diff(..., prepend=...)``, whose internal concatenation
        # costs more than the subtraction it wraps.  The extended
        # table carries _POINTER_SLACK extra sentinel slots so the
        # unclamped Golomb pointer table can be gathered as-is.
        zeros = np.flatnonzero(np.unpackbits(raw) == 0)
        targets = np.empty(zeros.shape[0] + 1, dtype=np.int64)
        targets[:-1] = zeros
        targets[-1] = total_bits
        reps = np.empty_like(targets)
        reps[0] = targets[0] + 1
        np.subtract(targets[1:], targets[:-1], out=reps[1:])
        reps[-1] += _POINTER_SLACK
        next_zero_ext = np.repeat(targets, reps)
        self.total_bits = total_bits
        self.windows32 = windows32
        self.next_zero = next_zero_ext[: total_bits + 1]
        self.next_zero_ext = next_zero_ext
        self.positions = positions
        self._padded = padded
        self._windows: np.ndarray | None = None

    @property
    def windows(self) -> np.ndarray:
        """The 64-bit windows, built on first (single-list) use."""
        windows = self._windows
        if windows is None:
            padded = self._padded
            num_windows = padded.shape[0] - 7
            windows = padded[0:num_windows].astype(np.uint64)
            for lane in range(1, 8):
                windows <<= np.uint64(8)
                windows |= padded[lane : lane + num_windows]
            self._windows = windows
        return windows

    def read_bits(
        self, positions: np.ndarray, widths: np.ndarray
    ) -> np.ndarray:
        """Gather ``widths`` bits (<= 57 each) at each bit position."""
        byte_index = positions >> 3
        widths64 = widths.astype(np.uint64)
        shift = (
            np.uint64(64)
            - (positions & 7).astype(np.uint64)
            - widths64
        )
        # width 0 at offset 0 would shift by 64 (undefined); the mask
        # below already forces those reads to 0, so clamp the shift.
        shift = np.minimum(shift, np.uint64(63))
        mask = (np.uint64(1) << widths64) - np.uint64(1)
        return (self.windows[byte_index] >> shift) & mask


def _golomb_table(
    tables: _StreamTables,
    parameters: np.ndarray | int,
    remainder_bits: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(value, next position, valid) for a Golomb code at every position.

    ``parameters`` is a scalar or a per-position int64 array (the
    batched decoder concatenates lists with different parameters);
    ``remainder_bits`` may carry the matching precomputed
    ``bit_length(parameter - 1)`` values.  Positions where the code
    runs off the stream, or whose remainder field exceeds the vector
    window, are invalid and pin to the ``total_bits`` fixed point.
    """
    total_bits = tables.total_bits
    position = tables.positions
    terminator = tables.next_zero
    quotient = terminator - position
    tail = np.minimum(terminator + 1, total_bits)

    parameters = np.broadcast_to(
        np.asarray(parameters, dtype=np.int64), position.shape
    )
    if remainder_bits is None:
        remainder_bits = _bit_lengths(np.maximum(parameters - 1, 0))
    thresholds = (
        np.int64(1) << np.minimum(remainder_bits, MAX_VECTOR_BITS)
    ) - parameters

    # One windowed read of the full remainder field: its top bits *are*
    # the short field (``full >> 1``), so the short/extended split costs
    # no second gather.  The stray low bit read past a short code's end
    # never leaks: it is only used when the code is extended.
    short_width = np.maximum(remainder_bits - 1, 0)
    full = tables.read_bits(
        tail, np.minimum(remainder_bits, MAX_VECTOR_BITS)
    ).astype(np.int64)
    first = full >> 1
    extended = (remainder_bits > 0) & (first >= thresholds)
    remainder = np.where(extended, full - thresholds, first)
    value = quotient * parameters + remainder
    following = tail + short_width + extended
    valid = (
        (terminator < total_bits)
        & (following <= total_bits)
        & (remainder_bits <= MAX_VECTOR_BITS)
    )
    following = np.where(valid, following, total_bits)
    return value, following, valid


def _gamma_table(
    tables: _StreamTables,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(value, next position, valid) for an Elias-gamma code at every
    position.  A suffix longer than the vector window (value >= 2**57)
    is invalid here and spliced through the scalar codec by the caller.
    """
    total_bits = tables.total_bits
    position = tables.positions
    terminator = tables.next_zero
    low_bits = terminator - position
    tail = np.minimum(terminator + 1, total_bits)
    readable = np.minimum(low_bits, MAX_VECTOR_BITS)
    suffix = tables.read_bits(tail, readable).astype(np.int64)
    value = ((np.int64(1) << readable) | suffix) - 1
    following = tail + readable
    valid = (
        (terminator < total_bits)
        & (position + 2 * low_bits + 1 <= total_bits)
        & (low_bits <= MAX_VECTOR_BITS)
    )
    following = np.where(valid, following, total_bits)
    return value, following, valid


def _chain(next_table: np.ndarray, count: int, start: int) -> np.ndarray:
    """``count + 1`` chained positions from ``start`` by pointer
    doubling: O(log count) gather rounds instead of a scalar walk."""
    positions = np.empty(count + 1, dtype=np.int64)
    positions[0] = start
    filled = 1
    total = count + 1
    jump = next_table
    while filled < total:
        take = min(filled, total - filled)
        positions[filled : filled + take] = jump[positions[:take]]
        filled += take
        if filled < total:
            jump = jump[jump]
    return positions


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(c)`` for each c in ``counts``."""
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return _shared_arange(total) - np.repeat(ends - counts, counts)


def _grouped_prefix_values(
    gaps: np.ndarray, group_sizes: np.ndarray
) -> np.ndarray:
    """Per group, ``cumsum(gaps + 1) - 1`` restarted at each group —
    the gap-to-absolute rule both sections share (previous starts at
    -1, each code advances by gap + 1)."""
    if not gaps.shape[0]:
        return np.zeros(0, dtype=np.int64)
    steps = gaps + 1
    running = np.cumsum(steps)
    # Size-0 groups contribute nothing to the repeat; clamp their first
    # index so a trailing empty group cannot index past the last gap.
    group_first = np.minimum(
        np.cumsum(group_sizes) - group_sizes, gaps.shape[0] - 1
    )
    base = np.repeat(
        running[group_first] - steps[group_first], group_sizes
    )
    return running - base - 1


# -- single-list decode -----------------------------------------------


def _scalar_docs_counts_from(
    data: bytes,
    df: int,
    parameter: int,
    start_slot: int,
    start_bit: int,
    previous_doc: int,
    docs: np.ndarray,
    counts: np.ndarray,
) -> int:
    """Finish section A with the scalar codec from a bit position.

    Used to splice past a code the vector window cannot hold; raises
    exactly what the scalar decoder would on truncated data.  Returns
    the bit position after the last decoded entry.
    """
    from repro.compression.elias import EliasGammaCodec
    from repro.compression.golomb import GolombCodec

    doc_codec = GolombCodec(parameter)
    count_codec = EliasGammaCodec()
    reader = BitReader(data)
    reader.skip_bits(start_bit)
    for slot in range(start_slot, df):
        previous_doc += doc_codec.decode_value(reader) + 1
        docs[slot] = previous_doc
        counts[slot] = count_codec.decode_value(reader) + 1
    return 8 * len(data) - reader.bits_remaining


def _decode_section_a(
    data: bytes, df: int, parameter: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Decode section A, returning (docs, counts, end bit position)."""
    docs = np.empty(df, dtype=np.int64)
    counts = np.empty(df, dtype=np.int64)
    if not df:
        return docs, counts, 0
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    tables = _StreamTables(raw)
    g_value, g_next, g_valid = _golomb_table(tables, parameter)
    c_value, c_next, c_valid = _gamma_table(tables)
    entry_next = c_next[g_next]
    starts = _chain(entry_next, df, start=0)
    heads = starts[:df]
    mids = g_next[heads]
    entry_valid = g_valid[heads] & c_valid[mids]
    good = int(df if bool(entry_valid.all()) else np.argmin(entry_valid))
    if good:
        gaps = g_value[heads[:good]]
        docs[:good] = np.cumsum(gaps + 1) - 1
        counts[:good] = c_value[mids[:good]] + 1
    if good == df:
        return docs, counts, int(starts[df])
    # Splice: the scalar codec takes over at the first code the vector
    # pass could not decode (overflow or truncation — the latter raises
    # the same BitStreamError the pure path would).
    previous_doc = int(docs[good - 1]) if good else -1
    end_bit = _scalar_docs_counts_from(
        data, df, parameter, good, int(starts[good]), previous_doc,
        docs, counts,
    )
    return docs, counts, end_bit


def decode_docs_counts(
    data: bytes, df: int, parameter: int
) -> tuple[np.ndarray, np.ndarray]:
    """Block-decode one section-A stream (doc gaps + counts).

    Bit-identical to the scalar interleaved decode, including raising
    :class:`~repro.errors.BitStreamError` on truncated data.

    Args:
        data: the compressed blob (section A at bit 0).
        df: number of (gap, count) entries.
        parameter: the list's derived Golomb parameter.
    """
    if active_tier() == "numba":
        kernels = _numba_kernels()
        if kernels is not None:
            decoded = kernels.decode_docs_counts(
                np.frombuffer(bytes(data), dtype=np.uint8), df, parameter
            )
            if decoded is not None:
                return decoded[0], decoded[1]
    docs, counts, _ = _decode_section_a(data, df, parameter)
    return docs, counts


def decode_gap_stream(
    data: bytes, count: int, parameter: int, start_bit: int = 0
) -> tuple[np.ndarray, int]:
    """Decode ``count`` Golomb gaps from ``start_bit``, with splice.

    The decode twin of :func:`repro.compression.fastpack.encode_gap_stream`.
    Returns the gap array and the bit position after the last code.
    """
    gaps = np.empty(count, dtype=np.int64)
    if not count:
        return gaps, start_bit
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    tables = _StreamTables(raw)
    g_value, g_next, g_valid = _golomb_table(tables, parameter)
    starts = _chain(g_next, count, start=start_bit)
    heads = starts[:count]
    valid = g_valid[heads]
    good = int(count if bool(valid.all()) else np.argmin(valid))
    gaps[:good] = g_value[heads[:good]]
    if good == count:
        return gaps, int(starts[count])
    from repro.compression.golomb import GolombCodec

    codec = GolombCodec(parameter)
    reader = BitReader(data)
    reader.skip_bits(int(starts[good]))
    for slot in range(good, count):
        gaps[slot] = codec.decode_value(reader)
    return gaps, 8 * len(data) - reader.bits_remaining


def decode_postings(
    data: bytes, df: int, doc_parameter: int, position_parameter: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode a full posting list: section A then the offset gaps.

    Returns ``(docs, counts, flat_positions)`` where ``flat_positions``
    concatenates every entry's absolute offsets (split on
    ``cumsum(counts)`` to recover per-entry arrays).
    """
    docs, counts, end_bit = _decode_section_a(data, df, doc_parameter)
    total = int(counts.sum()) if df else 0
    gaps, _ = decode_gap_stream(
        data, total, position_parameter, start_bit=end_bit
    )
    positions = _grouped_prefix_values(gaps, counts)
    return docs, counts, positions


# -- batched decode ---------------------------------------------------

#: Upper bound on rows x columns of one pointer-doubling grid; batches
#: whose (lists x max codes) area exceeds it are split so a single
#: stop-word-dense interval cannot balloon memory.
_BATCH_GRID_LIMIT = 2_000_000

#: Below this many lists the per-bit table build costs more than the
#: scalar loop it replaces; the batch wrapper reports ``None`` and the
#: caller falls back (which is also the correct answer — the scalar
#: codec *is* the reference).
_MIN_BATCH_LISTS = 4


def _concatenate_blobs(
    blobs: list[bytes],
) -> tuple[_StreamTables, np.ndarray, np.ndarray]:
    """One stream-table build over every blob back to back.

    Returns ``(tables, byte_offsets, lengths)``; blob ``i`` occupies
    bits ``byte_offsets[i] * 8`` up to ``(byte_offsets[i] +
    lengths[i]) * 8`` of the shared stream.
    """
    lengths = np.fromiter(
        (len(blob) for blob in blobs), dtype=np.int64, count=len(blobs)
    )
    buffer = np.frombuffer(b"".join(blobs), dtype=np.uint8)
    byte_offsets = np.zeros(len(blobs) + 1, dtype=np.int64)
    np.cumsum(lengths, out=byte_offsets[1:])
    return _StreamTables(buffer), byte_offsets[:-1], lengths


def _grid_chunks(counts: np.ndarray) -> list[np.ndarray]:
    """Lane subsets whose doubling grids stay within the area cap.

    The common case — every lane in one grid — preserves lane order and
    costs one ``arange``; only oversized batches pay the sort + greedy
    split (grouping similar code counts so padding stays small).
    """
    lanes = counts.shape[0]
    width = int(counts.max(initial=0)) + 1
    if lanes * width <= _BATCH_GRID_LIMIT:
        return [np.arange(lanes, dtype=np.int64)]
    order = np.argsort(counts, kind="stable")
    chunks: list[np.ndarray] = []
    chunk: list[int] = []
    for slot in order.tolist():
        width = int(counts[slot]) + 1
        if chunk and (len(chunk) + 1) * width > _BATCH_GRID_LIMIT:
            chunks.append(np.array(chunk, dtype=np.int64))
            chunk = []
        chunk.append(slot)
    if chunk:
        chunks.append(np.array(chunk, dtype=np.int64))
    return chunks


def _chain_grid(
    next_table: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Per-lane code boundaries by 2-D pointer doubling.

    Row ``i`` holds the first ``counts[i] + 1`` chained positions from
    ``starts[i]`` (padded to the widest lane with fixed-point noise —
    callers index only each lane's own prefix).

    Short, numerous lanes step column by column — that evaluates the
    table only at visited positions, O(width) tiny gathers.  Doubling
    squares the whole table per round, O(log width) stream-sized
    gathers, and wins only when one lane is much longer than the
    stream is wide.
    """
    lanes = starts.shape[0]
    width = int(counts.max(initial=0)) + 1
    grid = np.empty((lanes, width), dtype=np.int64)
    grid[:, 0] = starts
    if width * 128 < next_table.shape[0]:
        for col in range(1, width):
            grid[:, col] = next_table[grid[:, col - 1]]
        return grid
    filled = 1
    jump = next_table
    while filled < width:
        take = min(filled, width - filled)
        grid[:, filled : filled + take] = jump[grid[:, :take]]
        filled += take
        if filled < width:
            jump = jump[jump]
    return grid


def _section_a_byte_bounds(
    dfs: np.ndarray,
    parameters: np.ndarray,
    cfs: np.ndarray,
    universe: int,
) -> np.ndarray:
    """Provable per-list byte bound on the section-A prefix.

    For a *valid* list the document gaps sum below the universe size,
    which caps the total unary length at ``df + universe / parameter``;
    remainders cost ``rb`` bits each and the gamma counts at most
    ``df + 2 * df * log2(cf / df)`` bits (concavity of ``log``).  The
    coarse batch decoder clips each blob to this bound so the per-bit
    tables never pay for section B, which coarse ranking never reads.
    A corrupt list that overruns the bound simply decodes past the
    clipped end, fails validation, and falls back to the scalar codec.
    """
    rb = _bit_lengths(np.maximum(parameters - 1, 0))
    unary = dfs + universe // np.maximum(parameters, 1)
    safe_dfs = np.maximum(dfs, 1)
    ratio = np.maximum(cfs, safe_dfs) / safe_dfs
    gamma = dfs + 2 * np.ceil(
        safe_dfs * np.log2(ratio)
    ).astype(np.int64)
    bound_bits = unary + dfs * rb + gamma
    return (bound_bits >> 3) + 2


def _lane_read_constants(
    parameters: np.ndarray,
) -> tuple[np.ndarray, ...]:
    """Per-lane read constants for the 32-bit Golomb field reads.

    Returns ``(rb, narrow, short, thresholds)``: remainder bit widths;
    which lanes those widths let the 32-bit window serve (wide lanes
    must be excluded at lane level — their other constants are pinned
    to safe values so the shared passes stay branch-free); the
    short-field widths; and the truncated-binary thresholds as uint32
    (pinned to a large sentinel when ``rb`` is 0 or the lane is wide,
    so the extension test always fails there).
    """
    rb = _bit_lengths(np.maximum(parameters - 1, 0))
    narrow = rb <= _TABLE_MAX_BITS
    short = np.where(narrow & (rb > 0), rb - 1, 0).astype(np.uint8)
    thresholds = np.where(
        narrow & (rb > 0),
        (np.int64(1) << np.minimum(rb, _TABLE_MAX_BITS)) - parameters,
        np.int64(1) << 30,
    ).astype(np.uint32)
    return rb, narrow, short, thresholds


#: Widest remainder field the 32-bit pointer-table reads can serve
#: (up to 7 offset bits + the field must fit the 32-bit window).  A
#: lane with a wider document-gap parameter is flagged for the scalar
#: fallback — real posting lists have single-digit ``rb``.
_TABLE_MAX_BITS = 25

#: Doubled-threshold sentinel for the pointer-table pass: above any
#: real doubled threshold (< 2**26), so pinned lanes never extend.
_TABLE_SENTINEL = np.uint32(1) << np.uint32(31)


def _golomb_next_table(
    tables: _StreamTables,
    short_pos: np.ndarray,
    thr_pos: np.ndarray,
) -> np.ndarray:
    """Where the next code starts if a Golomb code began at each bit.

    Only the *pointer* is computed here — values and validity are
    evaluated later at the O(entries) chain heads, so the O(bits) pass
    stays as thin as possible: 32-bit window reads (``short_pos`` must
    be pinned to :data:`_TABLE_MAX_BITS`-safe values), shift-only field
    extraction, and a deliberately UNCLAMPED result — positions past
    the stream overshoot ``total_bits`` by at most
    :data:`_POINTER_SLACK`, which the extended next-zero table absorbs.
    Callers that chain this table directly must clamp it themselves.
    """
    tail = tables.next_zero + 1
    full = tables.windows32[tail >> 3]
    # Shift the field's leading bits off the top, then align: cheaper
    # than subtract + shift + mask, and needs no mask array at all.
    full <<= (tail & 7).astype(np.uint32)
    full >>= np.uint32(31) - short_pos
    # full >> 1 >= threshold  <=>  full >= 2 * threshold, so the caller
    # passes doubled thresholds and the short/extended split costs one
    # comparison on the unshifted field.
    extended = full >= thr_pos
    np.add(tail, short_pos, out=tail)
    np.add(tail, extended, out=tail)
    return tail


def _entry_next_from(
    tables: _StreamTables, g_next: np.ndarray
) -> np.ndarray:
    """Compose the gamma pointer directly onto a Golomb pointer table.

    A gamma code is the unary length then that many suffix bits, so its
    pointer is pure arithmetic on the terminator position — evaluating
    it only at the Golomb pointers (rather than building a full gamma
    table and gathering) keeps this a single extended-table gather plus
    in-place passes.  The result is clamped to ``[0, total_bits]`` so
    every downstream chain stays in bounds, and position
    ``total_bits`` maps back to itself (the fixed point).
    """
    out = tables.next_zero_ext[g_next]
    out += out
    out += 1
    out -= g_next
    np.minimum(out, tables.total_bits, out=out)
    if tables.total_bits < 64:
        # In-bounds pointers always compose to a non-negative position;
        # only an overshot pointer into a stream shorter than the
        # overshoot slack can go negative, so the lower clamp is only
        # ever needed for tiny streams.
        np.maximum(out, 0, out=out)
    return out


def _golomb_at(
    tables: _StreamTables,
    heads: np.ndarray,
    parameters: np.ndarray,
    short: np.ndarray,
    thresholds: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """(value, valid) of the Golomb codes at selected head positions.

    The per-lane constant arrays must already be expanded per head.
    Works on O(entries)-sized arrays — the expensive full-stream pass
    only ever computes pointers.  Reads go through the 32-bit windows:
    callers guarantee (via the lane-level ``narrow`` gate) that only
    lanes whose remainder fields fit them can ever count as decoded,
    so no per-head width check is needed here.
    """
    total_bits = tables.total_bits
    terminator = tables.next_zero_ext[heads]
    tail = terminator + 1
    quotient = terminator - heads
    full = tables.windows32[tail >> 3]
    full <<= (tail & 7).astype(np.uint32)
    full >>= np.uint32(31) - short
    first = full >> np.uint32(1)
    extended = first >= thresholds
    remainder = np.where(extended, full - thresholds, first).astype(np.int64)
    value = quotient * parameters + remainder
    valid = (
        (terminator < total_bits)
        & (tail + short + extended <= total_bits)
    )
    return value, valid


def _gamma_counts_at(
    tables: _StreamTables, mids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(count, valid) of the gamma codes at selected positions.

    The wire stores ``count - 1``; gamma encodes ``value + 1``, so the
    decoded count is directly ``(1 << length) | suffix``.  Reads go
    through the 32-bit windows, so a suffix longer than
    :data:`_TABLE_MAX_BITS` (a count of 2**25 or more — far past any
    real occurrence count) is invalid here and sends its lane to the
    scalar fallback, same as truncation.
    """
    total_bits = tables.total_bits
    terminator = tables.next_zero_ext[mids]
    # mids may overshoot the stream (unclamped pointer table), making
    # the nominal length negative; clip so the shift arithmetic stays
    # defined — the validity test rejects those positions regardless.
    length = terminator - mids
    readable = np.clip(length, 0, _TABLE_MAX_BITS)
    tail = terminator + 1
    masks = (np.uint32(1) << readable.astype(np.uint32)) - np.uint32(1)
    shifts = (np.minimum(32 - readable, 31) - (tail & 7)).astype(np.uint32)
    suffix = (tables.windows32[tail >> 3] >> shifts) & masks
    count = (np.int64(1) << readable) | suffix.astype(np.int64)
    valid = (
        (terminator < total_bits)
        & (mids + 2 * length + 1 <= total_bits)
        & (length <= _TABLE_MAX_BITS)
    )
    return count, valid


def _repeat_with_sentinel(
    values: np.ndarray, repeats: np.ndarray, size: int, sentinel
) -> np.ndarray:
    """Per-position array: per-lane ``values`` repeated to ``size``
    positions plus one trailing ``sentinel`` (the fixed-point slot)."""
    out = np.empty(size + 1, dtype=values.dtype)
    out[size] = sentinel
    out[:size] = np.repeat(values, repeats)
    return out


def _batch_entries(
    tables: _StreamTables,
    lane_starts: np.ndarray,
    dfs: np.ndarray,
    parameters: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Decode every lane's (Golomb gap, gamma count) entries at once.

    The full-stream work is pointer-only (one Golomb next table with
    per-position parameters repeated from the per-lane values, one
    arithmetic gamma next table, one composition); values, counts and
    validity are then evaluated only at each lane's chain heads, so the
    per-bit cost is paid once per batch and stays independent of how
    the entries distribute across lists.

    Returns ``(gaps, counts, ends, ok)``: flat lane-major gap/count
    arrays (lanes with ``ok`` False hold garbage in their segment),
    each lane's bit position after its last entry, and the per-lane
    validity flags.
    """
    total_bits = tables.total_bits
    lanes = dfs.shape[0]
    bits_per = lengths * 8
    rb, narrow, short, thresholds = _lane_read_constants(parameters)
    # The pointer pass compares the undivided field against doubled
    # thresholds (full >> 1 >= thr <=> full >= 2 * thr); the pinned
    # sentinel doubles to _TABLE_SENTINEL, above any 26-bit field.
    g_next = _golomb_next_table(
        tables,
        _repeat_with_sentinel(short, bits_per, total_bits, 0),
        _repeat_with_sentinel(
            thresholds + thresholds, bits_per, total_bits, _TABLE_SENTINEL
        ),
    )
    entry_next = _entry_next_from(tables, g_next)

    total = int(dfs.sum())
    ok = narrow.copy()
    chunks = _grid_chunks(dfs)
    if len(chunks) == 1:
        # The common case: every lane in one grid, in lane order.  The
        # flat outputs are lane-major, so the evaluated head arrays ARE
        # the outputs — no scatter, and per-head constants come from
        # cheap repeats instead of fancy gathers.
        grid = _chain_grid(entry_next, lane_starts, dfs)
        width = grid.shape[1]
        rows = np.repeat(_shared_arange(lanes), dfs)
        heads = grid.ravel()[rows * width + _ragged_arange(dfs)]
        gaps, g_ok = _golomb_at(
            tables, heads,
            np.repeat(parameters, dfs), np.repeat(short, dfs),
            np.repeat(thresholds, dfs),
        )
        counts, c_ok = _gamma_counts_at(tables, g_next[heads])
        good = g_ok & c_ok
        if not good.all():
            ok &= np.bincount(rows[~good], minlength=lanes) == 0
        ends = grid[_shared_arange(lanes), dfs]
        return gaps, counts, ends, ok

    gaps = np.empty(total, dtype=np.int64)
    counts = np.empty(total, dtype=np.int64)
    ends = lane_starts.astype(np.int64).copy()
    lane_first = np.cumsum(dfs) - dfs
    for subset in chunks:
        sub_dfs = dfs[subset]
        grid = _chain_grid(entry_next, lane_starts[subset], sub_dfs)
        width = grid.shape[1]
        rows = np.repeat(
            np.arange(subset.shape[0], dtype=np.int64), sub_dfs
        )
        cols = _ragged_arange(sub_dfs)
        heads = grid.ravel()[rows * width + cols]
        lids = subset[rows]
        gap_values, g_ok = _golomb_at(
            tables, heads, parameters[lids], short[lids],
            thresholds[lids],
        )
        count_values, c_ok = _gamma_counts_at(tables, g_next[heads])
        dest = np.repeat(lane_first[subset], sub_dfs) + cols
        gaps[dest] = gap_values
        counts[dest] = count_values
        good = g_ok & c_ok
        if not good.all():
            ok[subset] &= (
                np.bincount(rows[~good],
                            minlength=subset.shape[0]) == 0
            )
        ends[subset] = grid.ravel()[
            np.arange(subset.shape[0], dtype=np.int64) * width + sub_dfs
        ]
    return gaps, counts, ends, ok


def decode_docs_counts_flat(
    blobs: list[bytes],
    dfs: np.ndarray,
    parameters: np.ndarray,
    cfs: np.ndarray | None = None,
    universe: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Block-decode many section-A streams into flat lane-major arrays.

    Returns ``(docs, counts, ok)`` where ``docs``/``counts`` concatenate
    every list's entries in order (list ``i`` occupies
    ``cumsum(dfs)[i-1] : cumsum(dfs)[i]``) and ``ok`` flags the lists
    the vector pass decoded.  A list with ``ok`` False — overflow code,
    truncation, a stream that ran past its own blob — holds garbage in
    its segment: the caller must re-decode it with the scalar codec,
    which reproduces the pure path's values or exception exactly.

    When ``cfs`` (per-list total occurrence counts) and ``universe``
    (the document count) are given, each blob is clipped to its
    provable section-A bound first (:func:`_section_a_byte_bounds`),
    so the per-bit tables skip the offset section entirely.

    The flat layout is the point: a scorer can weight and accumulate
    the whole batch with a handful of array ops and never materialise a
    per-list object.
    """
    num_lists = len(blobs)
    dfs = np.asarray(dfs, dtype=np.int64)
    parameters = np.asarray(parameters, dtype=np.int64)
    total = int(dfs.sum()) if num_lists else 0
    if not total:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.ones(num_lists, dtype=bool),
        )

    if active_tier() == "numba":
        kernels = _numba_kernels()
        if kernels is not None:
            docs = np.empty(total, dtype=np.int64)
            counts = np.empty(total, dtype=np.int64)
            ok = np.zeros(num_lists, dtype=bool)
            start = 0
            for slot in range(num_lists):
                stop = start + int(dfs[slot])
                decoded = kernels.decode_docs_counts(
                    np.frombuffer(bytes(blobs[slot]), dtype=np.uint8),
                    int(dfs[slot]),
                    int(parameters[slot]),
                )
                if decoded is not None:
                    docs[start:stop] = decoded[0]
                    counts[start:stop] = decoded[1]
                    ok[slot] = True
                start = stop
            return docs, counts, ok

    if cfs is not None and universe is not None:
        bounds = _section_a_byte_bounds(
            dfs, parameters, np.asarray(cfs, dtype=np.int64), int(universe)
        ).tolist()
        blobs = [
            blob if len(blob) <= bound else blob[:bound]
            for blob, bound in zip(blobs, bounds)
        ]
    tables, byte_offsets, lengths = _concatenate_blobs(blobs)
    gaps, counts, ends, ok = _batch_entries(
        tables, byte_offsets * 8, dfs, parameters, lengths
    )
    # Positions only ever advance, so "the last entry ended inside this
    # list's own blob" bounds every intermediate position too: a stream
    # that leaks into its neighbour is caught here and sent to the
    # scalar fallback.  (With clipped blobs the check is stricter than
    # the full-blob one — never looser — so identity is preserved.)
    ok &= ends <= (byte_offsets + lengths) * 8
    docs = _grouped_prefix_values(gaps, dfs)
    return docs, counts, ok


def decode_docs_counts_batch(
    blobs: list[bytes],
    dfs: np.ndarray,
    parameters: np.ndarray,
    cfs: np.ndarray | None = None,
    universe: int | None = None,
) -> list[tuple[np.ndarray, np.ndarray] | None]:
    """Per-list view of :func:`decode_docs_counts_flat`.

    Returns one ``(docs, counts)`` per blob, or ``None`` for a list the
    vector pass did not decode (or a batch too small to beat the scalar
    loop): the caller must decode those with the scalar codec.
    """
    num_lists = len(blobs)
    if not num_lists:
        return []
    if num_lists < _MIN_BATCH_LISTS and active_tier() != "numba":
        return [None] * num_lists
    dfs = np.asarray(dfs, dtype=np.int64)
    docs, counts, ok = decode_docs_counts_flat(
        blobs, dfs, parameters, cfs, universe
    )
    first = np.cumsum(dfs) - dfs
    results: list[tuple[np.ndarray, np.ndarray] | None] = [None] * num_lists
    for slot in np.flatnonzero(ok).tolist():
        start = int(first[slot])
        stop = start + int(dfs[slot])
        results[slot] = (docs[start:stop], counts[start:stop])
    return results


def decode_postings_batch(
    blobs: list[bytes],
    dfs: np.ndarray,
    doc_parameters: np.ndarray,
    position_parameters: np.ndarray,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray] | None]:
    """Block-decode many full posting lists (sections A and B) at once.

    Per list the result is ``(docs, counts, flat_positions)`` as in
    :func:`decode_postings`, or ``None`` under exactly the fallback
    rules of :func:`decode_docs_counts_flat` (extended to the offset
    stream).  Section B builds a second Golomb table under the
    position parameters and chains it from each lane's section-A end —
    a corrupt count that would balloon the offset grid is detected
    against the lane's remaining bit budget and sent to the scalar
    fallback instead.
    """
    num_lists = len(blobs)
    if not num_lists:
        return []
    results: list[tuple[np.ndarray, np.ndarray, np.ndarray] | None]
    results = [None] * num_lists
    if num_lists < _MIN_BATCH_LISTS:
        return results
    dfs = np.asarray(dfs, dtype=np.int64)
    doc_parameters = np.asarray(doc_parameters, dtype=np.int64)
    position_parameters = np.asarray(position_parameters, dtype=np.int64)
    if not int(dfs.sum()):
        return results

    tables, byte_offsets, lengths = _concatenate_blobs(blobs)
    own_end = (byte_offsets + lengths) * 8
    gaps, counts, a_ends, a_ok = _batch_entries(
        tables, byte_offsets * 8, dfs, doc_parameters, lengths
    )
    lane_of_entry = np.repeat(
        np.arange(num_lists, dtype=np.int64), dfs
    )
    totals = np.bincount(
        lane_of_entry, weights=counts, minlength=num_lists
    ).astype(np.int64)
    # A Golomb code is at least one bit, so more offset codes than
    # remaining bits is corrupt: zero the lane (skip its grid rows) and
    # let the scalar fallback raise or decode as appropriate.
    feasible = a_ok & (totals <= own_end - a_ends)
    totals = np.where(feasible, totals, 0)

    bits_per = lengths * 8
    total_bits = tables.total_bits
    rb_b, narrow_b, short_b, thr_b = _lane_read_constants(
        position_parameters
    )
    b_next = _golomb_next_table(
        tables,
        _repeat_with_sentinel(short_b, bits_per, total_bits, 0),
        _repeat_with_sentinel(
            thr_b + thr_b, bits_per, total_bits, _TABLE_SENTINEL
        ),
    )
    # Section B chains this table directly, so the unclamped pointers
    # must be pinned back inside the stream here.
    np.minimum(b_next, total_bits, out=b_next)

    pos_total = int(totals.sum())
    pos_gaps = np.empty(pos_total, dtype=np.int64)
    b_ends = a_ends.copy()
    b_ok = feasible & narrow_b
    pos_first = np.cumsum(totals) - totals
    for subset in _grid_chunks(totals):
        sub_totals = totals[subset]
        grid = _chain_grid(b_next, a_ends[subset], sub_totals)
        width = grid.shape[1]
        rows = np.repeat(
            np.arange(subset.shape[0], dtype=np.int64), sub_totals
        )
        cols = _ragged_arange(sub_totals)
        heads = grid.ravel()[rows * width + cols]
        lids = subset[rows]
        gap_values, code_ok = _golomb_at(
            tables, heads, position_parameters[lids],
            short_b[lids], thr_b[lids],
        )
        dest = np.repeat(pos_first[subset], sub_totals) + cols
        pos_gaps[dest] = gap_values
        if not code_ok.all():
            b_ok[subset] &= (
                np.bincount(rows[~code_ok],
                            minlength=subset.shape[0]) == 0
            )
        b_ends[subset] = grid.ravel()[
            np.arange(subset.shape[0], dtype=np.int64) * width
            + sub_totals
        ]
    list_ok = b_ok & (b_ends <= own_end)

    # Positions restart per entry; entries of infeasible lanes occupy
    # no space in the flat gap array, so zero their group sizes.
    group_counts = np.where(feasible[lane_of_entry], counts, 0)
    positions = _grouped_prefix_values(pos_gaps, group_counts)
    docs = _grouped_prefix_values(gaps, dfs)
    doc_first = np.cumsum(dfs) - dfs
    for slot in np.flatnonzero(list_ok).tolist():
        a0 = int(doc_first[slot])
        a1 = a0 + int(dfs[slot])
        b0 = int(pos_first[slot])
        b1 = b0 + int(totals[slot])
        results[slot] = (docs[a0:a1], counts[a0:a1], positions[b0:b1])
    return results

"""Bit-level stream I/O used by the integer and sequence codecs.

Bits are written and read most-significant-first.  The writer keeps an
integer accumulator and flushes whole bytes into a ``bytearray``; the
reader walks a ``bytes`` buffer with an equivalent accumulator.  Both
support byte alignment so codecs can mix bit-packed headers with
byte-aligned payloads (the direct-coding sequence codec relies on this
for vectorised decoding).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BitStreamError, CodecValueError


class BitWriter:
    """Accumulates bits most-significant-first into a growable buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._pending_bits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits holding ``value`` (MSB first).

        Raises:
            CodecValueError: if ``value`` does not fit in ``width`` bits
                or ``width`` is negative.
        """
        if width < 0:
            raise CodecValueError(f"negative bit width {width}")
        if value < 0 or (width < 64 and value >> width):
            raise CodecValueError(f"value {value} does not fit in {width} bits")
        self._accumulator = (self._accumulator << width) | value
        self._pending_bits += width
        while self._pending_bits >= 8:
            self._pending_bits -= 8
            self._buffer.append(
                (self._accumulator >> self._pending_bits) & 0xFF
            )
        self._accumulator &= (1 << self._pending_bits) - 1

    def write_unary(self, value: int) -> None:
        """Append the unary code for ``value`` >= 0: ``value`` ones, then a zero."""
        if value < 0:
            raise CodecValueError(f"unary code undefined for {value}")
        # Emit in chunks so huge values cannot build an enormous accumulator.
        remaining = value
        while remaining >= 32:
            self.write_bits((1 << 32) - 1, 32)
            remaining -= 32
        self.write_bits(((1 << remaining) - 1) << 1, remaining + 1)

    def write_bit_chunk(self, data: bytes, bit_length: int) -> None:
        """Append the first ``bit_length`` bits of ``data`` (MSB first).

        Lets independently encoded fragments (e.g. skip blocks) be
        spliced into a stream at any bit position.

        Raises:
            CodecValueError: if ``data`` holds fewer than ``bit_length``
                bits.
        """
        if bit_length < 0 or bit_length > 8 * len(data):
            raise CodecValueError(
                f"chunk of {len(data)} bytes cannot supply {bit_length} bits"
            )
        whole_bytes, tail_bits = divmod(bit_length, 8)
        for byte in data[:whole_bytes]:
            self.write_bits(byte, 8)
        if tail_bits:
            self.write_bits(data[whole_bytes] >> (8 - tail_bits), tail_bits)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes; the stream must be byte-aligned.

        Raises:
            BitStreamError: if called while the stream is mid-byte.
        """
        if self._pending_bits:
            raise BitStreamError("write_bytes requires byte alignment")
        self._buffer.extend(data)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._pending_bits:
            self.write_bits(0, 8 - self._pending_bits)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._pending_bits

    def getvalue(self) -> bytes:
        """The stream contents, zero-padded to a whole number of bytes."""
        if not self._pending_bits:
            return bytes(self._buffer)
        tail = (self._accumulator << (8 - self._pending_bits)) & 0xFF
        return bytes(self._buffer) + bytes([tail])


class BitReader:
    """Reads bits most-significant-first from a ``bytes`` buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._byte_position = 0
        self._accumulator = 0
        self._available_bits = 0

    def _fill(self, want: int) -> None:
        while self._available_bits < want:
            if self._byte_position >= len(self._data):
                raise BitStreamError(
                    f"bit stream exhausted (wanted {want} bits, "
                    f"have {self._available_bits})"
                )
            self._accumulator = (
                (self._accumulator << 8) | self._data[self._byte_position]
            )
            self._byte_position += 1
            self._available_bits += 8

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer.

        Raises:
            BitStreamError: if fewer than ``width`` bits remain.
        """
        if width < 0:
            raise CodecValueError(f"negative bit width {width}")
        if width == 0:
            return 0
        self._fill(width)
        self._available_bits -= width
        value = self._accumulator >> self._available_bits
        self._accumulator &= (1 << self._available_bits) - 1
        return value

    def read_unary(self) -> int:
        """Read a unary code: count ones until the terminating zero."""
        count = 0
        while True:
            self._fill(1)
            # Scan the accumulator for a zero bit without single-bit calls.
            width = self._available_bits
            chunk = self._accumulator
            ones = 0
            while ones < width and (chunk >> (width - 1 - ones)) & 1:
                ones += 1
            if ones < width:
                self._available_bits = width - ones - 1
                self._accumulator = chunk & ((1 << self._available_bits) - 1)
                return count + ones
            count += width
            self._available_bits = 0
            self._accumulator = 0

    def skip_bits(self, count: int) -> None:
        """Discard ``count`` bits without decoding them.

        Whole buffered/byte spans are skipped by advancing the cursor,
        so skipping is O(1) in the skipped length.

        Raises:
            BitStreamError: if fewer than ``count`` bits remain.
            CodecValueError: if ``count`` is negative.
        """
        if count < 0:
            raise CodecValueError(f"cannot skip {count} bits")
        if count <= self._available_bits:
            self._available_bits -= count
            self._accumulator &= (1 << self._available_bits) - 1
            return
        count -= self._available_bits
        self._available_bits = 0
        self._accumulator = 0
        whole_bytes, tail_bits = divmod(count, 8)
        if self._byte_position + whole_bytes > len(self._data):
            raise BitStreamError(
                f"bit stream exhausted (wanted to skip {count} bits)"
            )
        self._byte_position += whole_bytes
        if tail_bits:
            self.read_bits(tail_bits)

    def align(self) -> None:
        """Discard bits up to the next byte boundary."""
        self._available_bits -= self._available_bits % 8
        self._accumulator &= (1 << self._available_bits) - 1

    def read_aligned_bytes(self, count: int) -> np.ndarray:
        """Read ``count`` whole bytes as a numpy ``uint8`` view.

        The stream must be byte-aligned (call :meth:`align` first).

        Raises:
            BitStreamError: if mid-byte or fewer than ``count`` bytes remain.
        """
        if self._available_bits % 8:
            raise BitStreamError("read_aligned_bytes requires byte alignment")
        # Give back whole buffered bytes before slicing the raw data.
        while self._available_bits >= 8:
            self._available_bits -= 8
            self._byte_position -= 1
        self._accumulator = 0
        end = self._byte_position + count
        if end > len(self._data):
            raise BitStreamError(
                f"bit stream exhausted (wanted {count} aligned bytes)"
            )
        view = np.frombuffer(self._data, dtype=np.uint8, count=count,
                             offset=self._byte_position)
        self._byte_position = end
        return view

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits (including the zero padding, if any)."""
        return (len(self._data) - self._byte_position) * 8 + self._available_bits

"""A simple sequence-evolution model: substitutions, insertions, deletions.

The synthetic workloads (see :mod:`repro.workloads`) derive homologous
families by repeatedly applying this model to an ancestor sequence, which
gives every query a known set of true relatives — the ground truth the
paper obtained from exhaustive-search oracles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sequences.alphabet import NUM_BASES


@dataclass(frozen=True)
class MutationModel:
    """Per-position mutation probabilities.

    Attributes:
        substitution_rate: probability a position is substituted by a
            uniformly chosen *different* base.
        insertion_rate: probability a random base is inserted before a
            position.
        deletion_rate: probability a position is deleted.
    """

    substitution_rate: float = 0.05
    insertion_rate: float = 0.01
    deletion_rate: float = 0.01

    def __post_init__(self) -> None:
        rates = (self.substitution_rate, self.insertion_rate, self.deletion_rate)
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise WorkloadError(f"mutation rates must lie in [0, 1]: {rates}")

    def mutate(self, codes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply one round of mutation and return the mutated copy.

        Wildcard codes, if present, are carried through untouched by the
        substitution step (they are already "uncertain" residues) but may
        still be deleted or have bases inserted around them.
        """
        codes = np.asarray(codes, dtype=np.uint8)
        length = codes.shape[0]
        if length == 0:
            return codes.copy()

        mutated = codes.copy()
        if self.substitution_rate > 0.0:
            hit = rng.random(length) < self.substitution_rate
            hit &= mutated < NUM_BASES
            count = int(np.count_nonzero(hit))
            if count:
                # Adding 1..3 modulo 4 always lands on a *different* base.
                shift = rng.integers(1, NUM_BASES, size=count, dtype=np.uint8)
                mutated[hit] = (mutated[hit] + shift) % NUM_BASES

        if self.deletion_rate == 0.0 and self.insertion_rate == 0.0:
            return mutated

        keep = rng.random(length) >= self.deletion_rate
        pieces: list[np.ndarray] = []
        if self.insertion_rate > 0.0:
            insert_before = rng.random(length + 1) < self.insertion_rate
            insertion_points = np.flatnonzero(insert_before)
            inserted = rng.integers(
                0, NUM_BASES, size=insertion_points.shape[0], dtype=np.uint8
            )
            cursor = 0
            for point, base in zip(insertion_points, inserted):
                segment = mutated[cursor:point][keep[cursor:point]]
                pieces.append(segment)
                pieces.append(np.array([base], dtype=np.uint8))
                cursor = point
            pieces.append(mutated[cursor:][keep[cursor:]])
            return np.concatenate(pieces) if pieces else mutated[keep]
        return mutated[keep]

    def expected_identity(self) -> float:
        """Rough expected per-position identity after one application."""
        survive = (1.0 - self.deletion_rate) * (1.0 - self.insertion_rate)
        return survive * (1.0 - self.substitution_rate)


def divergence(first: np.ndarray, second: np.ndarray) -> float:
    """Hamming divergence between equal-length prefixes of two code arrays.

    A coarse observable for tests: fraction of differing positions over
    the shared prefix length (alignment-free, so indels inflate it).
    """
    first = np.asarray(first)
    second = np.asarray(second)
    shared = min(first.shape[0], second.shape[0])
    if shared == 0:
        return 1.0 if first.shape[0] != second.shape[0] else 0.0
    return float(np.count_nonzero(first[:shared] != second[:shared])) / float(shared)

"""FASTA reading and writing.

The reader is tolerant of the variation found in real collections — blank
lines, lower-case residues, arbitrary line widths — but strict about
structure: data before the first header, empty records, and non-IUPAC
characters all raise :class:`~repro.errors.FastaFormatError`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.errors import AlphabetError, FastaFormatError
from repro.sequences import alphabet
from repro.sequences.record import Sequence


def _open_text(source: str | Path | IO[str]) -> tuple[IO[str], bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def parse_header(line: str) -> tuple[str, str]:
    """Split a ``>`` header line into (identifier, description).

    Raises:
        FastaFormatError: if the header has no identifier token.
    """
    body = line[1:].strip()
    if not body:
        raise FastaFormatError("FASTA header with no identifier")
    identifier, _, description = body.partition(" ")
    return identifier, description.strip()


def read_fasta(source: str | Path | IO[str]) -> Iterator[Sequence]:
    """Yield :class:`Sequence` records from a FASTA file or stream.

    Raises:
        FastaFormatError: on structural problems (data before the first
            header, a record with no residues, invalid characters).
    """
    stream, owned = _open_text(source)
    try:
        identifier: str | None = None
        description = ""
        chunks: list[str] = []

        def finish() -> Sequence:
            assert identifier is not None
            body = "".join(chunks)
            if not body:
                raise FastaFormatError(f"record {identifier!r} has no residues")
            try:
                codes = alphabet.encode(body)
            except AlphabetError as exc:
                raise FastaFormatError(
                    f"record {identifier!r}: {exc}"
                ) from exc
            return Sequence(identifier, codes, description)

        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if identifier is not None:
                    yield finish()
                identifier, description = parse_header(line)
                chunks = []
            elif line.startswith(";"):
                continue  # classic FASTA comment line
            else:
                if identifier is None:
                    raise FastaFormatError(
                        f"line {line_number}: sequence data before first header"
                    )
                chunks.append(line)
        if identifier is not None:
            yield finish()
    finally:
        if owned:
            stream.close()


def read_fasta_text(text: str) -> list[Sequence]:
    """Parse FASTA records from an in-memory string."""
    return list(read_fasta(io.StringIO(text)))


def write_fasta(
    sequences: Iterable[Sequence],
    target: str | Path | IO[str],
    line_width: int = 70,
) -> int:
    """Write records in FASTA format; returns the number written.

    Raises:
        ValueError: if ``line_width`` is not positive.
    """
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    stream, owned = (
        (open(target, "w", encoding="ascii"), True)
        if isinstance(target, (str, Path))
        else (target, False)
    )
    try:
        count = 0
        for record in sequences:
            header = record.identifier
            if record.description:
                header = f"{header} {record.description}"
            stream.write(f">{header}\n")
            text = record.text
            for start in range(0, len(text), line_width):
                stream.write(text[start : start + line_width])
                stream.write("\n")
            count += 1
        return count
    finally:
        if owned:
            stream.close()


def format_fasta(sequences: Iterable[Sequence], line_width: int = 70) -> str:
    """Render records as a FASTA string."""
    buffer = io.StringIO()
    write_fasta(sequences, buffer, line_width=line_width)
    return buffer.getvalue()

"""Sequence model: alphabet, records, FASTA I/O, and a mutation model."""

from repro.sequences.alphabet import (
    BASES,
    IUPAC_ALPHABET,
    NUM_BASES,
    WILDCARD_MIN_CODE,
    complement,
    decode,
    encode,
    is_wildcard,
    reverse_complement,
)
from repro.sequences.fasta import (
    format_fasta,
    read_fasta,
    read_fasta_text,
    write_fasta,
)
from repro.sequences.mutate import MutationModel, divergence
from repro.sequences.record import Sequence

__all__ = [
    "BASES",
    "IUPAC_ALPHABET",
    "NUM_BASES",
    "WILDCARD_MIN_CODE",
    "MutationModel",
    "Sequence",
    "complement",
    "decode",
    "divergence",
    "encode",
    "format_fasta",
    "is_wildcard",
    "read_fasta",
    "read_fasta_text",
    "reverse_complement",
    "write_fasta",
]

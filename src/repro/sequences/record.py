"""The :class:`Sequence` record: an identified nucleotide sequence.

A record couples an identifier and free-text description with the coded
representation of its residues (see :mod:`repro.sequences.alphabet`).  The
coded array is the working representation everywhere in the library; the
string form is materialised only on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sequences import alphabet


@dataclass(frozen=True)
class Sequence:
    """An identified nucleotide sequence.

    Attributes:
        identifier: short unique name (the FASTA header token).
        codes: ``uint8`` array of IUPAC codes; never mutated after creation.
        description: optional free text following the identifier.
    """

    identifier: str
    codes: np.ndarray = field(repr=False)
    description: str = ""

    def __post_init__(self) -> None:
        codes = np.ascontiguousarray(self.codes, dtype=np.uint8)
        codes.setflags(write=False)
        object.__setattr__(self, "codes", codes)

    @classmethod
    def from_text(
        cls, identifier: str, text: str, description: str = ""
    ) -> "Sequence":
        """Build a record from a nucleotide string.

        Raises:
            AlphabetError: if ``text`` contains non-IUPAC characters.
        """
        return cls(identifier, alphabet.encode(text), description)

    @property
    def text(self) -> str:
        """The sequence as an upper-case IUPAC string."""
        return alphabet.decode(self.codes)

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return (
            self.identifier == other.identifier
            and self.description == other.description
            and np.array_equal(self.codes, other.codes)
        )

    def __hash__(self) -> int:
        return hash((self.identifier, self.codes.tobytes()))

    def slice(self, start: int, stop: int) -> "Sequence":
        """A sub-sequence record covering ``[start, stop)``.

        The identifier is suffixed with the coordinate range so sliced
        records remain distinguishable.
        """
        return Sequence(
            f"{self.identifier}[{start}:{stop}]",
            self.codes[start:stop].copy(),
            self.description,
        )

    def reverse_complement(self) -> "Sequence":
        """The reverse-complement record (identifier suffixed ``/rc``)."""
        return Sequence(
            f"{self.identifier}/rc",
            alphabet.reverse_complement(self.codes),
            self.description,
        )

    def wildcard_count(self) -> int:
        """Number of wildcard (non-ACGT) positions."""
        return int(np.count_nonzero(alphabet.is_wildcard(self.codes)))

    def base_composition(self) -> dict[str, int]:
        """Count of each of the 15 IUPAC characters present."""
        counts = np.bincount(self.codes, minlength=len(alphabet.IUPAC_ALPHABET))
        return {
            char: int(counts[code])
            for code, char in enumerate(alphabet.IUPAC_ALPHABET)
            if counts[code]
        }

    def gc_fraction(self) -> float:
        """Fraction of concrete bases that are G or C (wildcards excluded)."""
        bases = self.codes[~alphabet.is_wildcard(self.codes)]
        if not bases.size:
            return 0.0
        gc = np.count_nonzero((bases == 1) | (bases == 2))
        return float(gc) / float(bases.size)

"""Nucleotide alphabet: base codes, IUPAC wildcards, and fast translation.

The whole library represents sequences as numpy ``uint8`` arrays of *codes*
rather than strings.  Codes 0-3 are the four bases in the fixed order
``A C G T``; codes 4-14 are the eleven IUPAC wildcard characters.  Keeping
bases in the 0-3 range means an interval (k-mer) of bases packs into an
integer with plain base-4 arithmetic, and a wildcard is detectable with a
single comparison (``code >= WILDCARD_MIN_CODE``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlphabetError

#: The four nucleotide bases, in code order.  ``BASES[code]`` is the base
#: character for codes 0-3.
BASES = "ACGT"

#: Number of plain bases (the radix used to pack intervals into integers).
NUM_BASES = 4

#: All supported characters in code order: bases first, wildcards after.
IUPAC_ALPHABET = "ACGTRYKMSWBDHVN"

#: Smallest code that denotes a wildcard rather than a concrete base.
WILDCARD_MIN_CODE = 4

#: Expansion of every IUPAC character into the set of bases it stands for.
IUPAC_EXPANSIONS: dict[str, frozenset[str]] = {
    "A": frozenset("A"),
    "C": frozenset("C"),
    "G": frozenset("G"),
    "T": frozenset("T"),
    "R": frozenset("AG"),
    "Y": frozenset("CT"),
    "K": frozenset("GT"),
    "M": frozenset("AC"),
    "S": frozenset("CG"),
    "W": frozenset("AT"),
    "B": frozenset("CGT"),
    "D": frozenset("AGT"),
    "H": frozenset("ACT"),
    "V": frozenset("ACG"),
    "N": frozenset("ACGT"),
}

#: Watson-Crick complement for every IUPAC character.
IUPAC_COMPLEMENTS: dict[str, str] = {
    "A": "T",
    "C": "G",
    "G": "C",
    "T": "A",
    "R": "Y",
    "Y": "R",
    "K": "M",
    "M": "K",
    "S": "S",
    "W": "W",
    "B": "V",
    "D": "H",
    "H": "D",
    "V": "B",
    "N": "N",
}

_INVALID = 255


def _build_encode_table() -> np.ndarray:
    table = np.full(256, _INVALID, dtype=np.uint8)
    for code, char in enumerate(IUPAC_ALPHABET):
        table[ord(char)] = code
        table[ord(char.lower())] = code
    return table


def _build_decode_table() -> np.ndarray:
    table = np.zeros(len(IUPAC_ALPHABET), dtype=np.uint8)
    for code, char in enumerate(IUPAC_ALPHABET):
        table[code] = ord(char)
    return table


def _build_complement_table() -> np.ndarray:
    table = np.zeros(len(IUPAC_ALPHABET), dtype=np.uint8)
    for code, char in enumerate(IUPAC_ALPHABET):
        table[code] = IUPAC_ALPHABET.index(IUPAC_COMPLEMENTS[char])
    return table


_ENCODE_TABLE = _build_encode_table()
_DECODE_TABLE = _build_decode_table()
_COMPLEMENT_TABLE = _build_complement_table()


def encode(text: str | bytes) -> np.ndarray:
    """Translate a nucleotide string into an array of IUPAC codes.

    Accepts upper- or lower-case characters from the 15-letter IUPAC
    alphabet and returns a ``uint8`` array of codes.

    Raises:
        AlphabetError: if any character is outside the IUPAC alphabet.
    """
    if isinstance(text, str):
        raw = text.encode("ascii", errors="replace")
    else:
        raw = bytes(text)
    codes = _ENCODE_TABLE[np.frombuffer(raw, dtype=np.uint8)]
    bad = np.flatnonzero(codes == _INVALID)
    if bad.size:
        offender = chr(raw[bad[0]])
        raise AlphabetError(
            f"invalid nucleotide character {offender!r} at position {int(bad[0])}"
        )
    return codes


def decode(codes: np.ndarray) -> str:
    """Translate an array of IUPAC codes back into a string.

    Raises:
        AlphabetError: if any code is out of range.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max(initial=0)) >= len(IUPAC_ALPHABET):
        raise AlphabetError(f"code {int(codes.max())} is outside the IUPAC alphabet")
    return _DECODE_TABLE[codes].tobytes().decode("ascii")


def is_wildcard(codes: np.ndarray) -> np.ndarray:
    """Boolean mask marking the positions holding wildcard codes."""
    return np.asarray(codes) >= WILDCARD_MIN_CODE


def complement(codes: np.ndarray) -> np.ndarray:
    """Complement every code (A<->T, C<->G, wildcards per IUPAC)."""
    return _COMPLEMENT_TABLE[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse-complement an array of codes."""
    return complement(codes)[::-1]


def validate_bases(codes: np.ndarray) -> None:
    """Check that an array holds only the four plain bases.

    Raises:
        AlphabetError: if a wildcard (or out-of-range) code is present.
    """
    codes = np.asarray(codes)
    if codes.size and int(codes.max(initial=0)) >= WILDCARD_MIN_CODE:
        position = int(np.argmax(codes >= WILDCARD_MIN_CODE))
        raise AlphabetError(f"wildcard code at position {position}; bases required")

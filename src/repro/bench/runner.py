"""Benchmark producers: every suite ends in one canonical document.

Five producers, one output shape (:class:`~repro.bench.schema.BenchDocument`):

* :func:`run_quick` — a self-contained synthetic workload (CI-sized,
  seconds not minutes): index build time, per-phase latency
  percentiles from the instrumentation layer, mean query latency,
  throughput.  Needs nothing outside the installed package.
* :func:`run_experiments` — drives the E1–E8 tables in
  ``benchmarks/harness.py`` and flattens every numeric cell into a
  gated metric.  Needs the repository root on ``sys.path``
  (``PYTHONPATH=src:.``), like CI runs it.
* :func:`run_shard_sweep` — wraps the shard-scaling sweep in
  ``benchmarks/bench_e3_scaling.py``.
* :func:`run_kernel_bench` — times the coarse phase on the
  pure-Python decode floor versus the resolved vector tier
  (interleaved, min-of-rounds) and asserts hit-for-hit ranking
  identity between them.  Needs ``benchmarks/workload_setup.py``.
* :func:`run_lsm_bench` — the live-ingest suite: delta-shard ingest,
  base+delta+tombstone search, compaction, and hit-for-hit parity
  against a fresh rebuild of the same logical collection.  Needs
  nothing outside the installed package.

Flattened metric names are stable — ``e3.150.part_ms_q`` — because the
regression gate matches baseline and current by name.
"""

from __future__ import annotations

import importlib
import math
import re
import statistics
import time
from pathlib import Path

import numpy as np

from repro.bench.schema import BenchDocument, standard_meta
from repro.errors import ReproError

#: Column-name tokens marking a bigger-is-better metric (checked first).
_HIGHER_TOKENS = frozenset(
    {
        "speedup", "recall", "overlap", "oracle", "precision", "qps",
        "saved", "mgaps", "rate", "ap", "r", "p", "flat", "parity",
    }
)

#: Column-name tokens marking a smaller-is-better metric.
_LOWER_TOKENS = frozenset(
    {"ms", "seconds", "sec", "bytes", "bits", "kb", "mb"}
)

_UNIT_BY_TOKEN = {
    "ms": "ms",
    "seconds": "s",
    "sec": "s",
    "bytes": "bytes",
    "bits": "bits",
    "qps": "q/s",
    "mgaps": "Mgaps/s",
}


def _tokens(text: str) -> list[str]:
    return [token for token in re.split(r"[^a-z0-9]+", text.lower()) if token]


def _slug(text: str) -> str:
    return "_".join(_tokens(str(text))) or "row"


def column_direction(column: str) -> str:
    """Which way is better for a harness table column (by name)."""
    tokens = set(_tokens(column))
    if tokens & _HIGHER_TOKENS:
        return "higher"
    if tokens & _LOWER_TOKENS:
        return "lower"
    return "info"


def _column_unit(column: str) -> str:
    for token in _tokens(column):
        unit = _UNIT_BY_TOKEN.get(token)
        if unit:
            return unit
    return ""


def _as_float(value) -> float | None:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def flatten_table(table, document: BenchDocument) -> int:
    """Add every numeric cell of a harness Table as a canonical metric.

    Metric names are ``{experiment}.{row-key}.{column}``; the row key is
    the first column (first two columns when the first alone is not
    unique, as in E5's scorer/cutoff grid).  Returns how many metrics
    were added.
    """
    first_column = [row[0] for row in table.rows]
    wide_keys = len(set(map(str, first_column))) < len(table.rows)
    added = 0
    for row in table.rows:
        key = _slug(row[0])
        if wide_keys and len(row) > 1:
            key = f"{key}_{_slug(row[1])}"
        for column, value in zip(table.columns[1:], row[1:]):
            number = _as_float(value)
            if number is None:
                continue
            name = f"{table.experiment.lower()}.{key}.{_slug(column)}"
            document.add(
                name,
                number,
                unit=_column_unit(column),
                direction=column_direction(column),
            )
            added += 1
    return added


def _load_benchmarks(module: str):
    """Import a ``benchmarks.*`` module, with a helpful failure mode."""
    try:
        return importlib.import_module(f"benchmarks.{module}")
    except ImportError as exc:
        raise ReproError(
            f"this suite drives benchmarks/{module}.py, which needs the "
            "repository root on the module path — run from the checkout "
            "with PYTHONPATH=src:."
        ) from exc


def run_quick(
    families: int = 8,
    family_size: int = 4,
    background: int = 60,
    mean_length: int = 400,
    num_queries: int = 8,
    query_length: int = 120,
    seed: int = 1,
    repeat: int = 2,
    cutoff: int = 50,
    top_k: int = 10,
    cache_entries: int = 4096,
    inject_sleep_seconds: float = 0.0,
) -> BenchDocument:
    """The CI-sized synthetic suite: build + query the quick workload.

    ``inject_sleep_seconds`` adds an artificial per-query stall inside
    the timed region; it exists so the regression gate can be tested
    end-to-end (a slowed run must trip ``repro bench --compare``).
    """
    from repro.index.builder import IndexParameters, build_index
    from repro.index.store import MemorySequenceSource
    from repro.instrumentation.instruments import Instruments
    from repro.instrumentation.profiling import snapshot_from_instruments
    from repro.search.engine import PartitionedSearchEngine
    from repro.sequences.mutate import MutationModel
    from repro.workloads.queries import make_family_queries
    from repro.workloads.synthetic import WorkloadSpec, generate_collection

    spec = WorkloadSpec(
        num_families=families,
        family_size=family_size,
        num_background=background,
        mean_length=mean_length,
        mutation=MutationModel(0.1, 0.02, 0.02),
        seed=seed,
    )
    collection = generate_collection(spec)
    cases = make_family_queries(
        collection, num_queries, query_length, seed=seed + 1
    )
    queries = [case.query for case in cases]

    started = time.perf_counter()
    index = build_index(collection.sequences, IndexParameters())
    build_seconds = time.perf_counter() - started
    if cache_entries:
        index.enable_decode_cache(cache_entries)
    instruments = Instruments()
    engine = PartitionedSearchEngine(
        index,
        MemorySequenceSource(collection.sequences),
        coarse_cutoff=cutoff,
        instruments=instruments,
    )

    latencies = []
    wall_started = time.perf_counter()
    for _ in range(max(1, repeat)):
        for query in queries:
            query_started = time.perf_counter()
            engine.search(query, top_k=top_k)
            if inject_sleep_seconds > 0:
                time.sleep(inject_sleep_seconds)
            latencies.append(time.perf_counter() - query_started)
    wall_seconds = time.perf_counter() - wall_started
    evaluated = len(latencies)

    document = BenchDocument(
        "quick",
        meta=standard_meta(
            {
                "workload": {
                    "families": families,
                    "family_size": family_size,
                    "background": background,
                    "mean_length": mean_length,
                    "num_queries": num_queries,
                    "query_length": query_length,
                    "seed": seed,
                    "repeat": max(1, repeat),
                    "cutoff": cutoff,
                    "decode_cache": cache_entries,
                },
                "inject_sleep_seconds": inject_sleep_seconds,
            }
        ),
    )
    document.add("quick.build_seconds", build_seconds, "s", "lower")
    document.add(
        "quick.query_ms_mean", statistics.mean(latencies) * 1000.0, "ms"
    )
    document.add("quick.query_ms_max", max(latencies) * 1000.0, "ms")
    document.add(
        "quick.throughput_qps",
        evaluated / wall_seconds if wall_seconds > 0 else 0.0,
        "q/s",
        "higher",
    )
    snapshot = snapshot_from_instruments(
        instruments, queries=evaluated, wall_seconds=wall_seconds
    )
    for name, phase in sorted(snapshot.phases.items()):
        prefix = "quick." + name.removesuffix("_seconds")
        document.add(prefix + ".p50_ms", phase["p50_ms"], "ms")
        document.add(prefix + ".p99_ms", phase["p99_ms"], "ms")
    hit_rate = snapshot.decode_cache.get("hit_rate")
    if hit_rate is not None:
        document.add("quick.decode_cache_hit_rate", hit_rate, "", "higher")
    document.add("quick.queries", evaluated, "", "info")
    document.add(
        "quick.sequences", len(collection.sequences), "", "info"
    )
    document.add(
        "quick.total_bases", collection.total_bases, "", "info"
    )
    return document


def run_experiments(names) -> BenchDocument:
    """Run harness experiments and flatten their tables into one doc."""
    harness = _load_benchmarks(module="harness")
    requested = [str(name).upper() for name in names]
    unknown = [name for name in requested if name not in harness.EXPERIMENTS]
    if unknown:
        raise ReproError(
            f"unknown experiment(s) {unknown}; "
            f"known: {sorted(harness.EXPERIMENTS)}"
        )
    document = BenchDocument(
        "experiments", meta=standard_meta({"experiments": requested})
    )
    for name in requested:
        table = harness.EXPERIMENTS[name]()
        flatten_table(table, document)
    return document


def run_shard_sweep(
    shard_counts=(1, 2, 4),
    workers: int = 4,
    num_sequences: int = 400,
    num_queries: int = 6,
    raw_output: str | Path | None = None,
) -> BenchDocument:
    """The shard-scaling sweep as a canonical document.

    ``raw_output`` optionally keeps the sweep's native JSON next to the
    canonical one (the perf-trajectory tooling reads the native form).
    Build speedup is recorded as ``info``: it is bounded by the cores
    the host actually has, so gating on it would flag every smaller CI
    machine.  Hit-for-hit parity with the one-shard baseline *is*
    gated — it is a correctness property, not a timing.
    """
    import tempfile

    sweep = _load_benchmarks(module="bench_e3_scaling")
    cleanup = None
    if raw_output is None:
        handle = tempfile.NamedTemporaryFile(
            suffix=".json", delete=False
        )
        handle.close()
        raw_output = cleanup = Path(handle.name)
    try:
        native = sweep.run_shard_sweep(
            list(shard_counts), workers, num_sequences, num_queries,
            str(raw_output),
        )
    finally:
        if cleanup is not None:
            cleanup.unlink(missing_ok=True)
    document = BenchDocument(
        "shard_sweep",
        meta=standard_meta(
            {
                "workers": workers,
                "sequences": native["collection_sequences"],
                "queries": native["queries"],
                "cpu_count": native.get("cpu_count"),
            }
        ),
    )
    multi_key = f"build_seconds_{workers}_workers"
    for row in native["results"]:
        prefix = f"shards{row['shards']}"
        document.add(
            f"{prefix}.build_seconds_1_worker",
            row["build_seconds_1_worker"], "s", "lower",
        )
        document.add(
            f"{prefix}.build_seconds_parallel", row[multi_key], "s", "lower"
        )
        document.add(
            f"{prefix}.build_speedup", row["build_speedup"], "x", "info"
        )
        document.add(
            f"{prefix}.query_ms_mean",
            row["query_seconds_mean"] * 1000.0, "ms", "lower",
        )
        document.add(
            f"{prefix}.parity",
            1.0 if row["parity_with_one_shard"] else 0.0, "", "higher",
        )
    return document


def run_kernel_bench(
    num_sequences: int = 1200,
    rounds: int = 12,
    scorers=("count", "idf", "normalised", "diagonal"),
) -> BenchDocument:
    """The decode-kernel suite: coarse phase, vector tier vs floor.

    Times the coarse phase — posting-list decode through per-document
    accumulation, the work the E3 engine's own scorer does per query —
    over the E3 family queries on the pure-Python floor and on the
    resolved vector tier.  Vocabulary lookups are resolved once
    outside the timed region: they are tier-independent and belong to
    the lookup phase, not the decode phase, and both tiers run the
    exact same call sequence so only the tier flag differs.  The two
    tiers are timed strictly interleaved, one block each per round, so
    machine drift hits both sides equally; min-of-rounds is the point
    estimate (the most noise-robust statistic on a shared machine).

    Raw block times are recorded as ``info`` — they are facts about
    the machine, not the code.  What the regression gate holds are the
    machine-normalised ``kernel.speedup`` ratio and the correctness
    bit ``kernel.rank_identical``, which is 1.0 only when every one of
    ``scorers`` produces a bit-identical score vector on both tiers
    for every query.  A fast kernel that moves one score is a broken
    kernel.
    """
    from repro.compression import fastunpack
    from repro.search.coarse import make_scorer

    workload = _load_benchmarks(module="workload_setup")
    _records, engine, _exhaustive, cases = workload.scaled_setup(
        num_sequences
    )
    ranker = engine._ranker
    index = engine.index
    stats = [
        ranker._frequency_filter(*ranker.query_intervals(case.query.codes))
        for case in cases
    ]
    timed_scorer = ranker.scorer
    scorer_objects = [make_scorer(name) for name in scorers]
    active = fastunpack.resolve_tier()
    num = index.collection.num_sequences
    prepared = []
    for unique_ids, query_counts, _groups in stats:
        ids = unique_ids.tolist()
        prepared.append(
            (ids, [index.lookup_entry(i) for i in ids], query_counts)
        )

    def coarse_block() -> float:
        started = time.perf_counter()
        for ids, entries, query_counts in prepared:
            lens, docs, counts = index.docs_counts_flat_from_entries(
                ids, entries
            )
            caps = np.repeat(query_counts, lens)
            np.bincount(
                docs, weights=np.minimum(counts, caps), minlength=num
            )
        return time.perf_counter() - started

    def scores_for(tier: str) -> list:
        with fastunpack.forced_tier(tier):
            return [
                scorer.score(index, *stat)
                for stat in stats
                for scorer in scorer_objects
            ]

    mismatches = sum(
        not np.array_equal(floor_scores, tier_scores)
        for floor_scores, tier_scores in zip(
            scores_for("python"), scores_for(active)
        )
    )

    floor_ms = math.inf
    active_ms = math.inf
    for _ in range(max(1, rounds)):
        with fastunpack.forced_tier("python"):
            floor_ms = min(floor_ms, coarse_block() * 1000.0)
        with fastunpack.forced_tier(active):
            active_ms = min(active_ms, coarse_block() * 1000.0)

    document = BenchDocument(
        "kernel",
        meta=standard_meta(
            {
                "active_tier": active,
                "num_sequences": num_sequences,
                "queries": len(cases),
                "timed_scorer": type(timed_scorer).__name__,
                "identity_scorers": list(scorers),
                "rounds": max(1, rounds),
            }
        ),
    )
    document.add("kernel.coarse_python_ms", floor_ms, "ms", "info")
    document.add("kernel.coarse_active_ms", active_ms, "ms", "info")
    document.add(
        "kernel.speedup",
        floor_ms / active_ms if active_ms > 0 else 1.0,
        "x",
        "higher",
    )
    document.add(
        "kernel.rank_identical",
        0.0 if mismatches else 1.0,
        "",
        "higher",
    )
    return document


def run_lsm_bench(
    num_sequences: int = 240,
    num_queries: int = 6,
    delta_batches: int = 3,
    delete_every: int = 7,
    seed: int = 5,
    coarse_cutoff: int = 50,
    top_k: int = 10,
) -> BenchDocument:
    """The live-ingest suite: ingest, delta-phase search, compaction.

    Builds a base database from the front of a synthetic collection,
    ingests the remainder as ``delta_batches`` delta shards, tombstones
    every ``delete_every``-th logical record, and times (a) search over
    base + deltas + tombstones, (b) compaction, and (c) search over the
    compacted result.  Timings are recorded as ``info`` — what the
    regression gate holds is ``lsm.parity``, which is 1.0 only when the
    live database and its compacted form return hit-for-hit identical
    reports to a fresh single-shard rebuild of the same logical
    collection for every query.  A fast delta path that moves one hit
    is a broken delta path.
    """
    import tempfile

    from repro.database import Database
    from repro.sequences.mutate import MutationModel
    from repro.workloads.queries import make_family_queries
    from repro.workloads.synthetic import WorkloadSpec, generate_collection

    family_size = 4
    families = max(2, num_sequences // (family_size * 4))
    background = max(0, num_sequences - families * family_size)
    spec = WorkloadSpec(
        num_families=families,
        family_size=family_size,
        num_background=background,
        mean_length=300,
        mutation=MutationModel(0.1, 0.02, 0.02),
        seed=seed,
    )
    collection = generate_collection(spec)
    records = list(collection.sequences)
    cases = make_family_queries(
        collection, num_queries, 120, seed=seed + 1
    )
    queries = [case.query for case in cases]
    engine_kwargs = dict(coarse_cutoff=coarse_cutoff)

    base_count = max(1, (len(records) * 7) // 10)
    base_records = records[:base_count]
    pending = records[base_count:]
    batches = [
        pending[index::delta_batches] for index in range(delta_batches)
    ]
    batches = [batch for batch in batches if batch]

    def search_ms(database: Database) -> tuple[float, list]:
        reports = []
        started = time.perf_counter()
        for query in queries:
            reports.append(
                database.search(query, top_k=top_k, **engine_kwargs)
            )
        elapsed = time.perf_counter() - started
        return elapsed * 1000.0 / max(1, len(queries)), reports

    def keys(reports) -> list:
        return [
            [
                (hit.ordinal, hit.identifier, hit.score, hit.strand)
                for hit in report.hits
            ]
            for report in reports
        ]

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        live = Database.create(
            base_records, root / "live", shards=2, workers=1
        )
        ingest_started = time.perf_counter()
        for batch in batches:
            live.add_records(batch)
        ingest_ms = (time.perf_counter() - ingest_started) * 1000.0
        doomed = list(range(0, len(live), max(2, delete_every)))
        if doomed:
            live.delete(doomed)

        survivors = [
            live.record(ordinal) for ordinal in range(len(live))
        ]
        oracle = Database.create(survivors, root / "oracle", shards=1)
        _oracle_ms, oracle_reports = search_ms(oracle)
        oracle_keys = keys(oracle_reports)
        oracle.close()

        delta_ms, delta_reports = search_ms(live)
        delta_parity = keys(delta_reports) == oracle_keys

        compact_started = time.perf_counter()
        generation = live.compact()
        compact_ms = (time.perf_counter() - compact_started) * 1000.0
        compacted_ms, compacted_reports = search_ms(live)
        compacted_parity = keys(compacted_reports) == oracle_keys
        live_sequences = len(live)
        live.close()

    document = BenchDocument(
        "lsm",
        meta=standard_meta(
            {
                "num_sequences": len(records),
                "base_records": len(base_records),
                "delta_batches": len(batches),
                "tombstones": len(doomed),
                "queries": len(queries),
                "coarse_cutoff": coarse_cutoff,
                "seed": seed,
                "generation": generation,
            }
        ),
    )
    document.add("lsm.ingest_ms", ingest_ms, "ms", "info")
    document.add("lsm.delta_search_ms", delta_ms, "ms", "info")
    document.add("lsm.compact_ms", compact_ms, "ms", "info")
    document.add("lsm.compacted_search_ms", compacted_ms, "ms", "info")
    document.add(
        "lsm.parity",
        1.0 if (delta_parity and compacted_parity) else 0.0,
        "",
        "higher",
    )
    document.add("lsm.live_sequences", live_sequences, "", "info")
    document.add("lsm.tombstones", len(doomed), "", "info")
    return document


def run_backends_bench(
    num_queries: int = 6,
    seed: int = 9,
    coarse_cutoff: int = 200,
    top_k: int = 4,
    signature_params: dict | None = None,
) -> BenchDocument:
    """The coarse-backend suite: inverted vs signature, two corpora.

    Builds each corpus twice — once per backend — and measures what the
    trade-off actually is: coarse artifact size and build time, query
    latency, and recall of the first ``top_k`` answers against an
    exhaustive-alignment oracle.  Two corpora are used because the
    backends diverge on them: ``e3`` is the standard family workload
    (the paper's E3 shape) and ``repetitive`` is a near-duplicate-heavy
    collection where bit-sliced signatures amortise best.

    What the regression gate holds: per-backend ``recall`` (inverted
    must stay at 1.0, signature above its floor) and each corpus's
    ``signature_smaller`` flag (1.0 only while the signature artifact
    is smaller than the inverted index it replaces).  Sizes are also
    recorded as a raw ``size_ratio`` and timings as ``info``.
    """
    import tempfile

    from repro.database import Database
    from repro.eval.metrics import oracle_recall_at
    from repro.index.store import MemorySequenceSource
    from repro.search.exhaustive import ExhaustiveSearcher
    from repro.sequences.mutate import MutationModel
    from repro.workloads.queries import make_family_queries
    from repro.workloads.synthetic import WorkloadSpec, generate_collection

    corpora = {
        "e3": WorkloadSpec(
            num_families=8,
            family_size=4,
            num_background=80,
            mean_length=300,
            mutation=MutationModel(0.1, 0.02, 0.02),
            seed=seed,
        ),
        "repetitive": WorkloadSpec(
            num_families=10,
            family_size=10,
            num_background=12,
            mean_length=300,
            mutation=MutationModel(0.02, 0.005, 0.005),
            seed=seed + 1,
        ),
    }

    document = BenchDocument(
        "backends",
        meta=standard_meta(
            {
                "num_queries": num_queries,
                "coarse_cutoff": coarse_cutoff,
                "top_k": top_k,
                "seed": seed,
                "signature_params": dict(signature_params or {}),
            },
            coarse_backend="inverted+signature",
        ),
    )

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        for corpus, spec in corpora.items():
            collection = generate_collection(spec)
            records = list(collection.sequences)
            cases = make_family_queries(
                collection, num_queries, 120, seed=seed + 2
            )
            queries = [case.query for case in cases]
            longest = max(len(query) for query in queries)
            oracle = ExhaustiveSearcher(
                MemorySequenceSource(records), max_query_length=longest
            )
            oracle_scores = [
                [hit.score for hit in oracle.search(query, top_k=top_k).hits]
                for query in queries
            ]

            sizes = {}
            for backend in ("inverted", "signature"):
                started = time.perf_counter()
                database = Database.create(
                    records,
                    root / f"{corpus}-{backend}",
                    coarse_backend=backend,
                    coarse_params=(
                        signature_params if backend == "signature" else None
                    ),
                )
                build_seconds = time.perf_counter() - started
                coarse_bytes = int(database.manifest["index_bytes"])
                sizes[backend] = coarse_bytes

                recalls = []
                search_started = time.perf_counter()
                for query, relevant in zip(queries, oracle_scores):
                    report = database.search(
                        query, top_k=top_k, coarse_cutoff=coarse_cutoff
                    )
                    recalls.append(
                        oracle_recall_at(
                            [hit.score for hit in report.hits],
                            relevant,
                            top_k,
                        )
                    )
                search_ms = (
                    (time.perf_counter() - search_started)
                    * 1000.0
                    / max(1, len(queries))
                )
                database.close()

                prefix = f"backends.{corpus}.{backend}"
                document.add(
                    f"{prefix}.recall",
                    statistics.mean(recalls),
                    "",
                    "higher",
                )
                document.add(
                    f"{prefix}.coarse_bytes", coarse_bytes, "bytes", "info"
                )
                document.add(
                    f"{prefix}.build_seconds", build_seconds, "s", "info"
                )
                document.add(f"{prefix}.search_ms", search_ms, "ms", "info")

            ratio = sizes["signature"] / max(1, sizes["inverted"])
            document.add(
                f"backends.{corpus}.size_ratio", ratio, "", "info"
            )
            document.add(
                f"backends.{corpus}.signature_smaller",
                1.0 if sizes["signature"] < sizes["inverted"] else 0.0,
                "",
                "higher",
            )
            document.add(
                f"backends.{corpus}.sequences", len(records), "", "info"
            )
    return document

"""Unified benchmark harness: canonical artifacts + regression gate.

Three pieces sit on top of the observability layer:

* :mod:`repro.bench.schema` — the canonical, schema-versioned
  ``BENCH_*.json`` document (machine metadata, git revision, named
  metrics with units and better-directions);
* :mod:`repro.bench.runner` — producers: a self-contained synthetic
  *quick* suite (CI-sized), the E1–E8 experiment tables driven through
  ``benchmarks/harness.py``, the shard sweep, and the decode-kernel
  tier suite;
* :mod:`repro.bench.compare` — the regression gate ``repro bench
  --compare BASELINE CURRENT`` applies: per-metric thresholds on the
  current/baseline ratio, nonzero exit when any gated metric regresses.
"""

from repro.bench.compare import CompareReport, Comparison, compare_documents
from repro.bench.schema import (
    SCHEMA,
    BenchDocument,
    git_revision,
    machine_metadata,
    metric,
)
from repro.bench.runner import (
    run_backends_bench,
    run_experiments,
    run_kernel_bench,
    run_lsm_bench,
    run_quick,
    run_shard_sweep,
)

__all__ = [
    "BenchDocument",
    "CompareReport",
    "Comparison",
    "SCHEMA",
    "compare_documents",
    "git_revision",
    "machine_metadata",
    "metric",
    "run_backends_bench",
    "run_experiments",
    "run_kernel_bench",
    "run_lsm_bench",
    "run_quick",
    "run_shard_sweep",
]

"""The regression gate: compare two canonical benchmark documents.

``compare_documents(baseline, current)`` walks every metric present in
both documents, skips ``direction="info"`` entries, and flags a
regression when the current value crosses the per-metric threshold in
the *worse* direction:

* ``direction="lower"`` (latency, bytes): regressed when
  ``current > baseline * threshold``;
* ``direction="higher"`` (throughput, recall, speedup): regressed when
  ``current < baseline / threshold``.

Thresholds are ratios > 1 — the default 1.5 tolerates 50% noise, which
is deliberately generous because CI machines vary; tighten per metric
with the ``thresholds`` mapping (longest-prefix match, so
``{"quick.": 2.0}`` covers a whole suite).  Values below
``noise_floor`` in *both* documents are skipped: a 0.2 ms phase
doubling to 0.4 ms is scheduler noise, not a regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.schema import BenchDocument

#: Default current/baseline ratio tolerated before a metric is flagged.
DEFAULT_THRESHOLD = 1.5

#: Metrics whose values are below this in both documents are ignored
#: (latency noise floor; value units are whatever the metric declares).
DEFAULT_NOISE_FLOOR = 0.05


@dataclass(frozen=True)
class Comparison:
    """One gated metric's outcome."""

    name: str
    baseline: float
    current: float
    direction: str
    threshold: float
    regressed: bool

    @property
    def ratio(self) -> float:
        """current / baseline (inf when the baseline is zero)."""
        if self.baseline == 0.0:
            return float("inf") if self.current > 0 else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        state = "REGRESSED" if self.regressed else "ok"
        arrow = "<" if self.direction == "higher" else ">"
        return (
            f"{self.name}: {self.baseline:.4g} -> {self.current:.4g} "
            f"({self.ratio:.2f}x, {state}; gate: ratio {arrow} "
            f"{self.threshold:g})"
        )


@dataclass
class CompareReport:
    """Everything one baseline/current comparison produced."""

    comparisons: list[Comparison] = field(default_factory=list)
    #: Gated metric names present in only one of the two documents.
    missing_in_current: list[str] = field(default_factory=list)
    missing_in_baseline: list[str] = field(default_factory=list)
    skipped_noise: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Comparison]:
        return [entry for entry in self.comparisons if entry.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        gated = len(self.comparisons)
        parts = [
            f"{gated} metric(s) gated",
            f"{len(self.regressions)} regression(s)",
        ]
        if self.skipped_noise:
            parts.append(f"{len(self.skipped_noise)} below noise floor")
        if self.missing_in_current:
            parts.append(
                f"{len(self.missing_in_current)} missing from current"
            )
        if self.missing_in_baseline:
            parts.append(
                f"{len(self.missing_in_baseline)} missing from baseline"
            )
        return ", ".join(parts)

    def warnings(self) -> list[str]:
        """Human-readable warnings for metrics the gate could not
        compare: present in only one of the two documents.

        A renamed or dropped metric would otherwise pass the gate
        silently — surface it so the change is a deliberate one.
        """
        lines = []
        for name in self.missing_in_current:
            lines.append(
                f"warning: {name} is in the baseline but not the current "
                "document (dropped or renamed?); not gated"
            )
        for name in self.missing_in_baseline:
            lines.append(
                f"warning: {name} is in the current document but not the "
                "baseline (new metric?); not gated"
            )
        return lines


def threshold_for(
    name: str, thresholds: dict[str, float] | None, default: float
) -> float:
    """The threshold governing one metric: longest-prefix match wins.

    An exact name in ``thresholds`` beats a prefix; among prefixes the
    longest wins, so ``{"quick.": 2.0, "quick.build": 3.0}`` behaves as
    expected.
    """
    if not thresholds:
        return default
    exact = thresholds.get(name)
    if exact is not None:
        return exact
    best: tuple[int, float] | None = None
    for prefix, value in thresholds.items():
        if name.startswith(prefix):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), value)
    return best[1] if best is not None else default


def compare_documents(
    baseline: BenchDocument,
    current: BenchDocument,
    default_threshold: float = DEFAULT_THRESHOLD,
    thresholds: dict[str, float] | None = None,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> CompareReport:
    """Gate ``current`` against ``baseline`` (see module docstring)."""
    report = CompareReport()
    baseline_metrics = baseline.metrics
    current_metrics = current.metrics
    for name in sorted(set(baseline_metrics) | set(current_metrics)):
        base_entry = baseline_metrics.get(name)
        cur_entry = current_metrics.get(name)
        direction = (base_entry or cur_entry).get("direction", "info")
        if direction == "info":
            continue
        if base_entry is None:
            report.missing_in_baseline.append(name)
            continue
        if cur_entry is None:
            report.missing_in_current.append(name)
            continue
        base_value = float(base_entry["value"])
        cur_value = float(cur_entry["value"])
        if (
            abs(base_value) < noise_floor
            and abs(cur_value) < noise_floor
        ):
            report.skipped_noise.append(name)
            continue
        bound = threshold_for(name, thresholds, default_threshold)
        if direction == "lower":
            regressed = cur_value > base_value * bound
        else:
            regressed = cur_value < base_value / bound
        report.comparisons.append(
            Comparison(
                name=name,
                baseline=base_value,
                current=cur_value,
                direction=direction,
                threshold=bound,
                regressed=regressed,
            )
        )
    return report


def parse_threshold_overrides(pairs: list[str]) -> dict[str, float]:
    """``NAME=RATIO`` strings (CLI ``--threshold-for``) into a map."""
    overrides: dict[str, float] = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise ValueError(
                f"expected NAME=RATIO, got {pair!r}"
            )
        overrides[name] = float(value)
    return overrides

"""The canonical benchmark artifact: one schema for every BENCH file.

Every benchmark producer — the quick synthetic suite, the E1–E8
experiment tables, the shard sweep — emits a :class:`BenchDocument`:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "suite": "quick",
      "meta": {"git_rev": "...", "machine": {"python": "3.12", ...}},
      "metrics": {
        "quick.query_ms_mean": {"value": 4.2, "unit": "ms",
                                 "direction": "lower"}
      }
    }

``direction`` declares which way is better — ``"lower"`` (latencies,
sizes), ``"higher"`` (throughput, recall, speedups), or ``"info"``
(environment facts the regression gate must not gate on).  The compare
layer reads nothing but this document, so any producer that emits it
plugs into ``repro bench --compare`` for free.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Format marker for canonical benchmark documents.
SCHEMA = "repro.bench/v1"

#: Allowed better-directions for a metric.
DIRECTIONS = ("lower", "higher", "info")


def metric(
    value: float, unit: str = "", direction: str = "lower"
) -> dict:
    """One canonical metric entry (validated).

    Args:
        value: the measurement.
        unit: free-form unit label ("ms", "bytes", "q/s", ...).
        direction: which way is better; ``"info"`` exempts the metric
            from regression gating.
    """
    if direction not in DIRECTIONS:
        raise ReproError(
            f"unknown metric direction {direction!r}; expected one of "
            f"{DIRECTIONS}"
        )
    return {"value": float(value), "unit": unit, "direction": direction}


def machine_metadata() -> dict:
    """Where this benchmark ran: interpreter, platform, core count."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def git_revision(root: str | Path | None = None) -> str | None:
    """The repo's HEAD commit, or None outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


@dataclass
class BenchDocument:
    """A canonical benchmark artifact (see module docstring).

    Attributes:
        suite: which producer made it ("quick", "experiments",
            "shard_sweep", ...).
        meta: machine metadata, git revision, workload parameters.
        metrics: name → ``{"value", "unit", "direction"}`` entries.
    """

    suite: str
    meta: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    schema: str = SCHEMA

    def add(
        self,
        name: str,
        value: float,
        unit: str = "",
        direction: str = "lower",
    ) -> None:
        self.metrics[name] = metric(value, unit, direction)

    def value(self, name: str) -> float:
        """A metric's value (KeyError when absent)."""
        return float(self.metrics[name]["value"])

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "suite": self.suite,
            "meta": self.meta,
            "metrics": self.metrics,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "BenchDocument":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ReproError(
                f"not a canonical benchmark document (schema {schema!r}, "
                f"expected {SCHEMA!r})"
            )
        return cls(
            suite=str(data.get("suite", "")),
            meta=dict(data.get("meta", {})),
            metrics=dict(data.get("metrics", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchDocument":
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "BenchDocument":
        path = Path(path)
        try:
            return cls.from_json(path.read_text())
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}: not valid JSON ({exc})") from exc

    def describe(self) -> str:
        """Aligned name/value/unit rows for terminal output."""
        lines = [f"suite: {self.suite}"]
        rev = self.meta.get("git_rev")
        if rev:
            lines.append(f"git:   {rev[:12]}")
        width = max((len(name) for name in self.metrics), default=0)
        for name in sorted(self.metrics):
            entry = self.metrics[name]
            value = entry["value"]
            rendered = (
                f"{value:.3f}" if abs(value) < 1000 else f"{value:,.0f}"
            )
            lines.append(
                f"  {name:<{width}}  {rendered:>12} {entry.get('unit', '')}"
            )
        return "\n".join(lines)


def standard_meta(
    extra: dict | None = None, coarse_backend: str = "inverted"
) -> dict:
    """machine + git metadata every producer stamps on its document.

    Includes the active decode kernel tier and the coarse backend the
    suite ran against: two BENCH documents are only comparable when
    they ran the same tier and backend, so the compare layer (and a
    human reading the file) must be able to see both.
    """
    from repro.compression import fastunpack

    meta = {
        "machine": machine_metadata(),
        "git_rev": git_revision(),
        "kernel_tier": fastunpack.active_tier(),
        "coarse_backend": coarse_backend,
    }
    meta.update(extra or {})
    return meta

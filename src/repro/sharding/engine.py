"""Fan-out/merge query evaluation over a sharded collection.

:class:`ShardedSearchEngine` holds one
:class:`~repro.search.engine.PartitionedSearchEngine` per shard and
evaluates a query in three steps:

1. **fan out** — every shard ranks its own slice with its local index
   (each shard's coarse scores are exactly the scores a global index
   would give its sequences, because the count and diagonal scorers
   accumulate per-sequence evidence only);
2. **merge** — per-shard candidates are k-way-merged on the global
   ordering (coarse score desc, global ordinal asc) and cut at
   ``coarse_cutoff``, reproducing the global coarse phase: any
   sequence in the global top-``C`` is necessarily in its shard's
   top-``C``;
3. **fine + re-rank** — each shard aligns its share of the selected
   candidates, hits are shifted to global ordinals and merged on the
   fine ordering (score desc, coarse score desc, ordinal asc).

The result is hit-for-hit identical to a single engine over the
unsharded collection — the invariant ``tests/test_sharding.py`` pins
down for both fine modes and both strands.

The ``idf`` and ``normalised`` coarse scorers are *not* supported:
they weight evidence by collection-wide statistics (document frequency,
mean length) that a shard-local index gets wrong, which would break the
score-identity guarantee silently.

**Tombstones** (the live/LSM layer): the engine accepts a sorted list
of deleted *stored* ordinals.  Deleted sequences still sit in their
shard's index, so parity with a rebuild over the survivors takes three
adjustments, all applied here:

- each shard's coarse cutoff is inflated by its tombstone count before
  the fan-out, then dead candidates are filtered *before* the global
  merge-cut — otherwise a shard whose top-``C`` is crowded with dead
  sequences could starve live candidates that a rebuilt index would
  rank;
- surviving hit ordinals are remapped from stored to *logical* (stored
  order with tombstones elided — exactly the ordinals a rebuild would
  assign) after the final merge, which preserves order because the
  remap is monotonic;
- the E-value search space counts live residues only (``dead_bases``
  subtracted), and the degraded exhaustive path scans a
  tombstone-eliding view of the stores.
"""

from __future__ import annotations

import logging
import random
import time
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import replace
from threading import Lock
from typing import Callable, Sequence as TypingSequence

import numpy as np

from repro.align.scoring import ScoringScheme
from repro.align.statistics import GumbelParameters
from repro.errors import CorruptionError, SearchError, StorageError
from repro.index.builder import IndexReader
from repro.index.store import LiveSequenceView, SequenceSource
from repro.instrumentation.eventlog import options_digest
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    coalesce,
)
from repro.search.deadline import Deadline, ensure_deadline
from repro.search.engine import (
    CORRUPTION_POLICIES,
    PartitionedSearchEngine,
    _merge_strand_hits,
    run_search_batch,
)
from repro.search.resilience import (
    ShardResilience,
    ShardTimeout,
    ShardUnavailable,
)
from repro.search.results import SearchHit, SearchReport
from repro.sequences.alphabet import reverse_complement
from repro.sequences.record import Sequence

#: Coarse scorers whose per-shard scores equal global scores (they
#: accumulate per-sequence evidence only, no collection statistics).
SHARDABLE_COARSE_SCORERS = ("count", "diagonal")

#: Exceptions a resilient engine treats as one shard failing (instead
#: of the whole query): storage/index damage, OS-level I/O trouble,
#: and a per-shard attempt timeout.  ``CorruptionError`` is a
#: ``StorageError`` subclass, so a corrupt shard retries and then trips
#: its breaker rather than aborting the fan-out.
SHARD_FAILURE_EXCEPTIONS = (StorageError, OSError, ShardTimeout)

_LOG = logging.getLogger(__name__)


class ShardedSequenceSource(SequenceSource):
    """Global-ordinal residue access over per-shard sources.

    Presents N shard sources (in shard order) as one collection whose
    ordinal ``base + local`` is the concatenation order — the view the
    degraded/exhaustive path and the database facade read through.
    """

    def __init__(self, sources: TypingSequence[SequenceSource]) -> None:
        if not sources:
            raise SearchError("no shard sources")
        self._sources = list(sources)
        self._bases: list[int] = []
        total = 0
        for source in self._sources:
            self._bases.append(total)
            total += len(source)
        self._total = total

    def set_instruments(self, instruments) -> None:
        super().set_instruments(instruments)
        for source in self._sources:
            if hasattr(source, "set_instruments"):
                source.set_instruments(instruments)

    def _locate(self, ordinal: int) -> tuple[SequenceSource, int]:
        self._check(ordinal)
        slot = bisect_right(self._bases, ordinal) - 1
        return self._sources[slot], ordinal - self._bases[slot]

    def __len__(self) -> int:
        return self._total

    def identifier(self, ordinal: int) -> str:
        source, local = self._locate(ordinal)
        return source.identifier(local)

    def codes(self, ordinal: int) -> np.ndarray:
        source, local = self._locate(ordinal)
        return source.codes(local)

    def record(self, ordinal: int) -> Sequence:
        source, local = self._locate(ordinal)
        return source.record(local)


class ShardedSearchEngine:
    """Index-accelerated search fanned out across shards.

    Args:
        shards: ``(index, source)`` pairs in shard order; shard ``i``'s
            local ordinal 0 is global ordinal ``sum(len(source_j) for
            j < i)``.  All indexes must share parameters.
        scheme / coarse_cutoff / min_fine_score / fine_mode /
        both_strands / significance / on_corruption: exactly as on
            :class:`~repro.search.engine.PartitionedSearchEngine`; the
            cutoff and policy apply *globally* (the cutoff bounds the
            merged candidate list, not each shard's).
        coarse_scorer: must be shard-safe — one of
            :data:`SHARDABLE_COARSE_SCORERS`.
        instruments: observability sink, wired through every shard
            engine; per-shard work reports under ``shard[i].coarse`` /
            ``shard[i].fine`` spans and ``sharded.*`` counters.
        query_workers: default thread count for :meth:`search_batch`
            (``None`` keeps batches sequential unless the call says
            otherwise).
        tombstones: sorted, unique *stored* ordinals of deleted
            sequences (the live/LSM layer); results present logical
            ordinals with these elided, hit-for-hit identical to a
            rebuild over the survivors.
        dead_bases: residues belonging to the tombstoned sequences,
            subtracted from the E-value search space.
        resilience: per-shard fault tolerance (see
            :class:`~repro.search.resilience.ShardResilience`).  When
            given, a shard failure (storage damage, I/O error, attempt
            timeout) is retried with jittered backoff and counted
            against that shard's circuit breaker; a shard that stays
            broken is *dropped* for the query — the report's
            ``shards_degraded`` names it — instead of failing the
            query.  ``None`` (the default) keeps the historical
            behaviour: shard exceptions propagate per
            ``on_corruption``.

    Raises:
        SearchError: if no shards are given, shard parameters disagree,
            or the coarse scorer is not shard-safe.
    """

    def __init__(
        self,
        shards: TypingSequence[tuple[IndexReader, SequenceSource]],
        scheme: ScoringScheme | None = None,
        coarse_scorer: str = "count",
        coarse_cutoff: int = 100,
        min_fine_score: int = 1,
        fine_mode: str = "full",
        both_strands: bool = False,
        significance: GumbelParameters | None = None,
        on_corruption: str = "raise",
        instruments: Instruments | None = None,
        query_workers: int | None = None,
        resilience: ShardResilience | None = None,
        tombstones: TypingSequence[int] | None = None,
        dead_bases: int = 0,
    ) -> None:
        if not shards:
            raise SearchError("a sharded engine needs at least one shard")
        if not isinstance(coarse_scorer, str):
            raise SearchError(
                "sharded engines take a coarse scorer *name*; custom "
                "scorer instances cannot be checked for shard-safety"
            )
        if coarse_scorer not in SHARDABLE_COARSE_SCORERS:
            raise SearchError(
                f"coarse scorer {coarse_scorer!r} uses collection-wide "
                "statistics that shard-local indexes would skew; sharded "
                f"engines support {SHARDABLE_COARSE_SCORERS}"
            )
        if on_corruption not in CORRUPTION_POLICIES:
            raise SearchError(
                f"unknown on_corruption {on_corruption!r}; expected one of "
                f"{CORRUPTION_POLICIES}"
            )
        if query_workers is not None and query_workers < 1:
            raise SearchError(
                f"query_workers must be >= 1, got {query_workers}"
            )
        params = shards[0][0].params
        for index, _ in shards[1:]:
            if index.params != params:
                raise SearchError(
                    "shard indexes disagree about parameters: "
                    f"{index.params} vs {params}"
                )
        self.scheme = scheme or ScoringScheme()
        self.coarse_cutoff = coarse_cutoff
        self.min_fine_score = min_fine_score
        self.fine_mode = fine_mode
        self.both_strands = both_strands
        self.significance = significance
        self.on_corruption = on_corruption
        self.query_workers = query_workers
        self.params = params
        self._engines: list[PartitionedSearchEngine] = []
        self.bases: list[int] = []
        total = 0
        for index, source in shards:
            self.bases.append(total)
            total += len(source)
            # Per-shard strand merging is skipped (both_strands=False):
            # orientations merge once, globally, after the shard fan-in.
            self._engines.append(
                PartitionedSearchEngine(
                    index,
                    source,
                    scheme=self.scheme,
                    coarse_scorer=coarse_scorer,
                    coarse_cutoff=coarse_cutoff,
                    min_fine_score=min_fine_score,
                    fine_mode=fine_mode,
                    both_strands=False,
                    on_corruption=on_corruption,
                )
            )
        self.total_sequences = total
        # Each shard ranks with whatever backend its index declares; the
        # merge is backend-agnostic.  The engine-level label is the
        # single shared name, or "mixed" when shards disagree.
        backends = {engine.coarse_backend for engine in self._engines}
        self.coarse_backend = (
            backends.pop() if len(backends) == 1 else "mixed"
        )
        dead = np.asarray(
            tombstones if tombstones is not None else (), dtype=np.int64
        )
        if dead.size:
            if np.any(np.diff(dead) <= 0):
                raise SearchError("tombstones must be sorted and unique")
            if dead[0] < 0 or dead[-1] >= total:
                raise SearchError(
                    f"tombstone outside stored ordinal range 0..{total - 1}"
                )
        self.tombstones = dead
        self.dead_bases = int(dead_bases)
        self._dead_set = frozenset(dead.tolist())
        # Tombstones falling in each shard's ordinal range: the amount
        # that shard's coarse cutoff must be inflated by so dead
        # candidates cannot crowd live ones out of its top-C.
        boundaries = self.bases + [total]
        self._dead_per_shard = [
            int(
                np.searchsorted(dead, boundaries[slot + 1], side="left")
                - np.searchsorted(dead, boundaries[slot], side="left")
            )
            for slot in range(len(self._engines))
        ]
        self._stored_source = ShardedSequenceSource(
            [source for _, source in shards]
        )
        self._source: SequenceSource = (
            LiveSequenceView(self._stored_source, dead.tolist())
            if dead.size
            else self._stored_source
        )
        self._exhaustive = None
        self.resilience = resilience
        self._breakers = (
            [resilience.make_breaker() for _ in self._engines]
            if resilience is not None
            else None
        )
        self._rng = (
            random.Random(resilience.seed) if resilience is not None else None
        )
        # Lazily created: only queries under a per-shard attempt timeout
        # need the executor (the future's result() carries the budget).
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = Lock()
        self.options_digest = options_digest(
            {
                "engine": "sharded",
                "shards": len(self._engines),
                "scheme": self.scheme,
                "coarse_backend": self.coarse_backend,
                "coarse_scorer": coarse_scorer,
                "coarse_cutoff": coarse_cutoff,
                "min_fine_score": min_fine_score,
                "fine_mode": fine_mode,
                "both_strands": both_strands,
                "on_corruption": on_corruption,
                "tombstones": int(dead.size),
            }
        )
        self.instruments = NULL_INSTRUMENTS
        if instruments is not None:
            self.set_instruments(instruments)

    @property
    def num_shards(self) -> int:
        return len(self._engines)

    @property
    def total_bases(self) -> int:
        """Live residues across every shard (the E-value search space);
        tombstoned sequences no longer count as searched space."""
        return (
            sum(
                engine.index.collection.total_length
                for engine in self._engines
            )
            - self.dead_bases
        )

    @property
    def live_sequences(self) -> int:
        """Sequences the logical collection presents."""
        return self.total_sequences - int(self.tombstones.size)

    @property
    def quarantined_intervals(self) -> int:
        """Posting lists quarantined across all shards."""
        return sum(
            engine.quarantined_intervals for engine in self._engines
        )

    @property
    def quarantined_sequences(self) -> int:
        """Store records quarantined across all shards."""
        return sum(
            engine.quarantined_sequences for engine in self._engines
        )

    def set_instruments(self, instruments: Instruments | None) -> None:
        """Wire observability through every shard engine (and the
        degraded-path source); ``None`` detaches everything."""
        self.instruments = coalesce(instruments)
        for engine in self._engines:
            engine.set_instruments(instruments)
        self._source.set_instruments(instruments)
        if self._exhaustive is not None:
            self._exhaustive.set_instruments(instruments)

    def _query_codes(
        self, query: Sequence | np.ndarray
    ) -> tuple[str, np.ndarray]:
        if isinstance(query, Sequence):
            return query.identifier, query.codes
        return "query", np.asarray(query, dtype=np.uint8)

    def breaker_states(self) -> dict[int, str]:
        """Current circuit-breaker state per shard slot (empty when the
        engine has no resilience configured)."""
        if self._breakers is None:
            return {}
        return {
            slot: breaker.state
            for slot, breaker in enumerate(self._breakers)
        }

    def close(self) -> None:
        """Release the per-shard timeout executor, if one was created.

        A timed-out attempt's thread may still be running (the future
        is abandoned, not interrupted); shutdown does not wait for it.
        Safe to call more than once, and a closed engine recreates the
        executor on demand if searched again.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _shard_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(2, len(self._engines)),
                    thread_name_prefix="shard-attempt",
                )
            return self._pool

    def _attempt_with_timeout(self, slot: int, fn: Callable, timeout):
        """One shard call, bounded by ``timeout`` seconds (None = no
        bound).

        Raises:
            ShardTimeout: when the attempt overran its budget.  The
                attempt's thread is abandoned, not interrupted — it
                keeps running on the executor until it finishes on its
                own, which is why the executor has more threads than
                shards.
        """
        if timeout is None:
            return fn()
        future = self._shard_pool().submit(fn)
        try:
            return future.result(timeout=timeout)
        except FuturesTimeout:
            future.cancel()
            raise ShardTimeout(
                f"shard {slot} attempt exceeded its {timeout:.3f}s budget"
            ) from None

    def _run_shard(self, slot: int, fn: Callable, deadline: Deadline):
        """Run one shard call under the resilience policy.

        Without resilience this is a plain call (failures propagate as
        before).  With it, the shard's breaker gates the call, each
        failed attempt (see :data:`SHARD_FAILURE_EXCEPTIONS`) is
        retried with jittered backoff, and exhaustion raises
        :class:`ShardUnavailable` so the caller can degrade.

        Raises:
            ShardUnavailable: breaker open, retries exhausted, or no
                deadline budget left to retry in.
        """
        resilience = self.resilience
        if resilience is None:
            return fn()
        instruments = self.instruments
        breaker = self._breakers[slot]
        if not breaker.allow():
            instruments.count(f"sharded.shard.{slot}.breaker_skips")
            raise ShardUnavailable(
                slot, "breaker_open", f"shard {slot}: circuit breaker open"
            )
        retry = resilience.retry
        attempt = 0
        while True:
            attempt += 1
            try:
                result = self._attempt_with_timeout(
                    slot, fn, resilience.shard_timeout
                )
            except SHARD_FAILURE_EXCEPTIONS as exc:
                breaker.record_failure()
                instruments.count(f"sharded.shard.{slot}.failures")
                _LOG.warning(
                    "shard %d attempt %d/%d failed: %s",
                    slot, attempt, retry.max_attempts, exc,
                )
                if attempt >= retry.max_attempts:
                    raise ShardUnavailable(
                        slot,
                        "retries_exhausted",
                        f"shard {slot}: {retry.max_attempts} attempts "
                        f"failed, last: {exc}",
                    ) from exc
                if not breaker.allow():
                    # Our own failures tripped it mid-retry: stop
                    # burning budget on a shard the breaker now rejects.
                    raise ShardUnavailable(
                        slot,
                        "breaker_open",
                        f"shard {slot}: breaker opened during retries",
                    ) from exc
                delay = retry.delay(attempt, self._rng)
                remaining = deadline.remaining()
                if remaining is not None and remaining <= delay:
                    raise ShardUnavailable(
                        slot,
                        "deadline",
                        f"shard {slot}: no deadline budget left to retry",
                    ) from exc
                if delay > 0:
                    time.sleep(delay)
                instruments.count(f"sharded.shard.{slot}.retries")
            else:
                breaker.record_success()
                return result

    def _note_degraded(
        self, slot: int, exc: ShardUnavailable, degraded: set[int]
    ) -> None:
        if slot not in degraded:
            degraded.add(slot)
            self.instruments.count(f"sharded.shard.{slot}.degraded")
            # A breaker-open skip recurs on every query until the reset
            # window elapses; warning once per query would flood a soak.
            level = (
                logging.DEBUG
                if exc.reason == "breaker_open"
                else logging.WARNING
            )
            _LOG.log(
                level,
                "dropping shard %d for this query (%s): %s",
                slot, exc.reason, exc,
            )

    def _evaluate_one_strand(
        self,
        codes: np.ndarray,
        deadline: Deadline,
        degraded: set[int],
    ) -> tuple[list[SearchHit], int, float, float, list[dict]]:
        """(globally ranked hits, candidates, coarse s, fine s,
        per-shard timing/volume breakdown)."""
        instruments = self.instruments
        started = time.perf_counter()
        shard_detail = [
            {
                "shard": slot,
                "coarse_seconds": 0.0,
                "fine_seconds": 0.0,
                "coarse_candidates": 0,
                "fine_candidates": 0,
            }
            for slot in range(len(self._engines))
        ]

        # Fan out: every shard's coarse top-C, already in (score desc,
        # local ordinal asc) order.  rows hold (-score, global ordinal,
        # shard slot, local candidate) so one sort reproduces the
        # global coarse ordering exactly.
        rows: list[tuple[float, int, int, object]] = []
        with instruments.span("coarse"):
            for slot, engine in enumerate(self._engines):
                if slot in degraded:
                    continue
                base = self.bases[slot]
                # A shard holding D tombstones must rank C+D candidates:
                # after the dead ones are filtered out, at least its
                # true live top-C survives to the global merge.
                cutoff = self.coarse_cutoff + self._dead_per_shard[slot]
                shard_started = time.perf_counter()
                with instruments.span(f"shard[{slot}].coarse") as span:
                    try:
                        candidates = self._run_shard(
                            slot,
                            lambda engine=engine, cutoff=cutoff: (
                                engine.coarse_rank(
                                    codes, cutoff=cutoff, deadline=deadline
                                )
                            ),
                            deadline,
                        )
                    except ShardUnavailable as exc:
                        self._note_degraded(slot, exc, degraded)
                        continue
                    if span is not None:
                        span.annotate("shard", slot)
                        span.annotate("candidates", len(candidates))
                shard_detail[slot]["coarse_seconds"] = (
                    time.perf_counter() - shard_started
                )
                shard_detail[slot]["coarse_candidates"] = len(candidates)
                instruments.count(
                    f"sharded.shard.{slot}.coarse_candidates",
                    len(candidates),
                )
                if self._dead_per_shard[slot]:
                    live = [
                        candidate
                        for candidate in candidates
                        if base + candidate.ordinal not in self._dead_set
                    ]
                    filtered = len(candidates) - len(live)
                    if filtered:
                        instruments.count(
                            "lsm.tombstones_filtered", filtered
                        )
                    candidates = live[: self.coarse_cutoff]
                rows.extend(
                    (-candidate.coarse_score, base + candidate.ordinal,
                     slot, candidate)
                    for candidate in candidates
                )
            with instruments.span("merge") as span:
                rows.sort(key=lambda row: (row[0], row[1]))
                selected = rows[: self.coarse_cutoff]
                if span is not None:
                    span.annotate("merged_rows", len(rows))
                    span.annotate("selected", len(selected))
                    span.annotate(
                        "shards_contributing",
                        len({row[2] for row in selected}),
                    )
        coarse_done = time.perf_counter()

        # Fine: each shard aligns its share; hit ordinals shift to
        # global before the final merge.
        hits: list[SearchHit] = []
        with instruments.span("fine"):
            by_shard: dict[int, list] = {}
            for _, _, slot, candidate in selected:
                by_shard.setdefault(slot, []).append(candidate)
            for slot, candidates in by_shard.items():
                engine = self._engines[slot]
                base = self.bases[slot]
                shard_started = time.perf_counter()
                with instruments.span(f"shard[{slot}].fine") as span:
                    try:
                        shard_hits = self._run_shard(
                            slot,
                            lambda engine=engine, candidates=candidates: (
                                engine.fine_align(
                                    codes, candidates, deadline=deadline
                                )
                            ),
                            deadline,
                        )
                    except ShardUnavailable as exc:
                        self._note_degraded(slot, exc, degraded)
                        continue
                    if span is not None:
                        span.annotate("shard", slot)
                        span.annotate("candidates", len(candidates))
                        span.annotate("hits", len(shard_hits))
                shard_detail[slot]["fine_seconds"] = (
                    time.perf_counter() - shard_started
                )
                shard_detail[slot]["fine_candidates"] = len(candidates)
                hits.extend(
                    replace(hit, ordinal=base + hit.ordinal)
                    for hit in shard_hits
                )
            hits.sort(
                key=lambda hit: (-hit.score, -hit.coarse_score, hit.ordinal)
            )
        fine_done = time.perf_counter()
        return (
            hits,
            len(selected),
            coarse_done - started,
            fine_done - coarse_done,
            shard_detail,
        )

    def search(
        self,
        query: Sequence | np.ndarray,
        top_k: int = 10,
        deadline: Deadline | None = None,
    ) -> SearchReport:
        """Evaluate one query across every shard.

        Args:
            query: a :class:`Sequence` or a coded array.
            top_k: answers to return.
            deadline: optional per-query time budget, checked between
                per-shard fan-out steps and threaded into every shard's
                coarse and fine phases.  Expiry yields a flagged
                partial report, never an exception.

        A resilient engine (``resilience`` given at construction) drops
        failing shards instead of raising: the report's
        ``shards_degraded`` lists every dropped shard slot, and even an
        all-shards-down query returns an (empty, flagged) report.

        Raises:
            SearchError: if the query is shorter than the interval
                length or ``top_k`` < 1.
        """
        if top_k < 1:
            raise SearchError(f"top_k must be >= 1, got {top_k}")
        deadline = ensure_deadline(deadline)
        identifier, codes = self._query_codes(query)
        if codes.shape[0] < self.params.interval_length:
            raise SearchError(
                f"query {identifier!r} is shorter than the interval "
                f"length {self.params.interval_length}"
            )
        instruments = self.instruments
        degraded: set[int] = set()
        try:
            with instruments.span("search"):
                hits, candidates, coarse_seconds, fine_seconds, shard_detail = (
                    self._evaluate_one_strand(codes, deadline, degraded)
                )
                if self.both_strands and not deadline.expired():
                    (
                        reverse_hits,
                        reverse_candidates,
                        reverse_coarse,
                        reverse_fine,
                        reverse_detail,
                    ) = self._evaluate_one_strand(
                        reverse_complement(codes), deadline, degraded
                    )
                    hits = _merge_strand_hits(hits, reverse_hits)
                    candidates = candidates + reverse_candidates
                    coarse_seconds += reverse_coarse
                    fine_seconds += reverse_fine
                    for forward, reverse in zip(shard_detail, reverse_detail):
                        for key in (
                            "coarse_seconds",
                            "fine_seconds",
                            "coarse_candidates",
                            "fine_candidates",
                        ):
                            forward[key] += reverse[key]
        except CorruptionError as exc:
            if self.on_corruption != "fallback":
                if instruments.wants_events:
                    instruments.emit_event(
                        self._query_event(
                            identifier, "error", error=str(exc)
                        )
                    )
                raise
            _LOG.warning(
                "shard unusable (%s); answering %r with an exhaustive "
                "scan of every shard store",
                exc,
                identifier,
            )
            instruments.count("sharded.fallback_queries")
            report = self._exhaustive_report(query, top_k)
            if instruments.wants_events:
                instruments.emit_event(
                    self._query_event(
                        identifier,
                        "fallback",
                        candidates=report.candidates_examined,
                        hits=len(report.hits),
                        coarse_seconds=report.coarse_seconds,
                        fine_seconds=report.fine_seconds,
                    )
                )
            return report
        instruments.count("sharded.queries")
        deadline_expired = deadline.expired()
        if deadline_expired:
            instruments.count("sharded.deadline_expired")
        if degraded:
            instruments.count("sharded.degraded_queries")
        instruments.count("sharded.candidates", candidates)
        instruments.observe("sharded.coarse_seconds", coarse_seconds)
        instruments.observe("sharded.fine_seconds", fine_seconds)
        instruments.observe(
            "sharded.total_seconds", coarse_seconds + fine_seconds
        )
        if self.tombstones.size:
            # Stored -> logical ordinals (what a rebuild over the
            # survivors would assign).  The shift is monotonic in the
            # stored ordinal, so the merged hit ordering is preserved.
            hits = [
                replace(
                    hit,
                    ordinal=hit.ordinal
                    - int(
                        np.searchsorted(
                            self.tombstones, hit.ordinal, side="left"
                        )
                    ),
                )
                for hit in hits
            ]
        if self.significance is not None:
            searched = self.total_bases
            hits = [
                replace(
                    hit,
                    evalue=self.significance.evalue(
                        hit.score, int(codes.shape[0]), searched
                    ),
                )
                for hit in hits
            ]
        shards_degraded = tuple(sorted(degraded))
        if instruments.wants_events:
            partial = deadline_expired or bool(shards_degraded)
            instruments.emit_event(
                self._query_event(
                    identifier,
                    "partial" if partial else "ok",
                    candidates=candidates,
                    hits=len(hits[:top_k]),
                    coarse_seconds=coarse_seconds,
                    fine_seconds=fine_seconds,
                    shards=shard_detail,
                    deadline_expired=deadline_expired,
                    shards_degraded=list(shards_degraded),
                )
            )
        return SearchReport(
            query_identifier=identifier,
            hits=hits[:top_k],
            candidates_examined=candidates,
            coarse_seconds=coarse_seconds,
            fine_seconds=fine_seconds,
            quarantined_intervals=self.quarantined_intervals,
            quarantined_sequences=self.quarantined_sequences,
            deadline_expired=deadline_expired,
            shards_degraded=shards_degraded,
        )

    def _query_event(
        self,
        query_id: str,
        outcome: str,
        candidates: int = 0,
        hits: int = 0,
        coarse_seconds: float = 0.0,
        fine_seconds: float = 0.0,
        **extra,
    ) -> dict:
        """One eventlog line's payload, with the per-shard breakdown."""
        event = {
            "event": "query",
            "engine": "sharded",
            "num_shards": self.num_shards,
            "query_id": query_id,
            "options": self.options_digest,
            "outcome": outcome,
            "candidates": candidates,
            "hits": hits,
            "coarse_seconds": coarse_seconds,
            "fine_seconds": fine_seconds,
            "total_seconds": coarse_seconds + fine_seconds,
            "quarantined_intervals": self.quarantined_intervals,
            "quarantined_sequences": self.quarantined_sequences,
        }
        event.update(extra)
        return event

    def _exhaustive_report(
        self, query: Sequence | np.ndarray, top_k: int
    ) -> SearchReport:
        """Degraded path: scan every shard store, global ordinals."""
        from repro.search.exhaustive import ExhaustiveSearcher

        if self._exhaustive is None:
            self._exhaustive = ExhaustiveSearcher(
                self._source,
                scheme=self.scheme,
                min_score=self.min_fine_score,
                instruments=self.instruments
                if self.instruments.enabled
                else None,
            )
        report = self._exhaustive.search(query, top_k=top_k)
        return replace(
            report,
            degraded=True,
            quarantined_intervals=self.quarantined_intervals,
            quarantined_sequences=self.quarantined_sequences,
        )

    def search_batch(
        self,
        queries: list[Sequence],
        top_k: int = 10,
        workers: int | None = None,
        deadline: Deadline | None = None,
    ) -> list[SearchReport]:
        """Evaluate a batch of queries, reports in query order.

        ``workers`` defaults to the engine's ``query_workers``; values
        above 1 evaluate queries on a thread pool (the numpy kernels
        release the GIL, so shards and queries genuinely overlap).  A
        ``deadline`` is shared by the whole batch.

        Raises:
            SearchError: if ``workers`` < 1.
        """
        if workers is None:
            workers = self.query_workers
        return run_search_batch(
            self.search, queries, top_k, workers, self.instruments,
            deadline=deadline,
        )

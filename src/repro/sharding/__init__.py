"""Shard layer: split a collection into ordinal ranges and search them
as one.

The paper's partitioned evaluation bounds *fine*-phase work, but a
single inverted index and sequence store still grow linearly with the
collection, so build time and coarse-phase cost eventually hit the E3
wall.  This subsystem slices the collection into ``N`` contiguous
ordinal ranges ("shards" — COBS calls the same arrangement a
document-sliced index), builds each shard's index and store
independently (optionally in parallel processes), and fans queries out
across the shards, k-way-merging coarse candidates and fine hits into
one globally ranked answer.

Public surface:

* :func:`plan_shards` / :class:`ShardSpec` — split ``num_sequences``
  into balanced contiguous ranges;
* :func:`build_sharded_database` — write the sharded on-disk layout
  with a process pool;
* :class:`ShardedSearchEngine` — fan-out/merge query evaluation,
  score-identical to one engine over the unsharded collection;
* :class:`ShardedSequenceSource` — global-ordinal residue access over
  per-shard stores.

:class:`repro.database.Database` is the facade that ties these
together: ``Database.create(..., shards=N, workers=M)`` builds the
layout and ``Database.open`` routes records, verification, repair and
search through it.
"""

from repro.sharding.build import build_shard_directory, build_sharded_database
from repro.sharding.engine import ShardedSearchEngine, ShardedSequenceSource
from repro.sharding.manifest import (
    INDEX_NAME,
    MANIFEST_NAME,
    STORE_NAME,
    ShardLayoutEntry,
    layout_from_manifest,
)
from repro.sharding.planner import ShardSpec, plan_shards, shard_of

__all__ = [
    "INDEX_NAME",
    "MANIFEST_NAME",
    "STORE_NAME",
    "ShardLayoutEntry",
    "ShardSpec",
    "ShardedSearchEngine",
    "ShardedSequenceSource",
    "build_shard_directory",
    "build_sharded_database",
    "layout_from_manifest",
    "plan_shards",
    "shard_of",
]

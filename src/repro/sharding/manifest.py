"""Database directory layout and manifest construction.

One *database directory* holds a manifest plus either the classic
single-shard files::

    manifest.json  intervals.rpix  sequences.rpsq

or, when built with ``shards=N`` (N > 1), a top-level manifest whose
``"shards"`` section records the layout, with each shard a complete
single-shard database directory of its own::

    manifest.json
    shard-0000/  manifest.json  intervals.rpix  sequences.rpsq
    shard-0001/  ...

A single-shard database is byte-identical to the pre-shard v2 format,
so existing databases open unchanged; a sharded database is detected
purely by the ``"shards"`` manifest key.  Every shard directory is
itself openable, verifiable and repairable as an ordinary database,
and the top-level manifest repeats each shard's file digests so damage
is detectable without descending into the shards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.coarse_backends.base import DEFAULT_BACKEND, artifact_name
from repro.errors import IndexFormatError
from repro.index.atomic import file_crc32, write_text_atomic
from repro.index.builder import IndexParameters

MANIFEST_NAME = "manifest.json"
INDEX_NAME = "intervals.rpix"
STORE_NAME = "sequences.rpsq"
MANIFEST_VERSION = 2
SUPPORTED_MANIFEST_VERSIONS = (1, 2)


def _coarse_or_default(coarse: dict | None) -> dict:
    if coarse is None:
        return {"backend": DEFAULT_BACKEND, "params": {}}
    return {
        "backend": str(coarse["backend"]),
        "params": dict(coarse.get("params") or {}),
    }


def make_manifest(
    directory: Path,
    records_count: int,
    bases: int,
    coding: str,
    params: IndexParameters,
    index_bytes: int,
    store_bytes: int,
    coarse: dict | None = None,
) -> dict:
    """The manifest of a single-shard database directory.

    ``coarse`` is the coarse-backend section (see
    :func:`repro.coarse_backends.base.coarse_section`); ``None`` means
    the inverted default.  The checksum set digests whichever coarse
    artefact the backend owns, plus the sequence store.
    """
    coarse = _coarse_or_default(coarse)
    artifact = artifact_name(coarse["backend"])
    return {
        "version": MANIFEST_VERSION,
        "sequences": records_count,
        "bases": bases,
        "coding": coding,
        "params": params.describe(),
        "coarse": coarse,
        "index_bytes": index_bytes,
        "store_bytes": store_bytes,
        "checksums": {
            artifact: f"{file_crc32(directory / artifact):08x}",
            STORE_NAME: f"{file_crc32(directory / STORE_NAME):08x}",
        },
    }


def write_manifest(directory: Path, manifest: dict) -> None:
    """Atomically persist a manifest into a database directory."""
    write_text_atomic(
        directory / MANIFEST_NAME, json.dumps(manifest, indent=2)
    )


def load_manifest(directory: Path) -> dict:
    """Read and validate a database directory's manifest.

    Raises:
        IndexFormatError: if the manifest is missing, unparsable, or of
            an unsupported version.
    """
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise IndexFormatError(f"{directory} holds no database manifest")
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as exc:
        raise IndexFormatError(f"{directory}: bad manifest") from exc
    if manifest.get("version") not in SUPPORTED_MANIFEST_VERSIONS:
        raise IndexFormatError(
            f"{directory}: unsupported database version "
            f"{manifest.get('version')}"
        )
    return manifest


@dataclass(frozen=True)
class ShardLayoutEntry:
    """One shard as the top-level manifest records it.

    Attributes:
        name: the shard's directory name.
        base: global ordinal of the shard's first sequence.
        sequences / bases: the shard's collection size.
        index_bytes / store_bytes: on-disk footprint.
        checksums: the shard's file digests (a copy of the shard
            manifest's ``checksums``), so the top-level manifest alone
            can detect shard damage.
    """

    name: str
    base: int
    sequences: int
    bases: int
    index_bytes: int
    store_bytes: int
    checksums: dict

    @property
    def stop(self) -> int:
        return self.base + self.sequences

    def describe(self) -> dict:
        return {
            "name": self.name,
            "base": self.base,
            "sequences": self.sequences,
            "bases": self.bases,
            "index_bytes": self.index_bytes,
            "store_bytes": self.store_bytes,
            "checksums": dict(self.checksums),
        }

    @classmethod
    def from_description(cls, description: dict) -> "ShardLayoutEntry":
        return cls(
            name=str(description["name"]),
            base=int(description["base"]),
            sequences=int(description["sequences"]),
            bases=int(description["bases"]),
            index_bytes=int(description["index_bytes"]),
            store_bytes=int(description["store_bytes"]),
            checksums=dict(description["checksums"]),
        )


def make_sharded_manifest(
    coding: str,
    params: IndexParameters,
    entries: list[ShardLayoutEntry],
    coarse: dict | None = None,
) -> dict:
    """The top-level manifest of a sharded database directory."""
    return {
        "version": MANIFEST_VERSION,
        "sequences": sum(entry.sequences for entry in entries),
        "bases": sum(entry.bases for entry in entries),
        "coding": coding,
        "params": params.describe(),
        "coarse": _coarse_or_default(coarse),
        "index_bytes": sum(entry.index_bytes for entry in entries),
        "store_bytes": sum(entry.store_bytes for entry in entries),
        "shards": {
            "count": len(entries),
            "layout": [entry.describe() for entry in entries],
        },
    }


def layout_from_manifest(manifest: dict) -> list[ShardLayoutEntry] | None:
    """The shard layout a manifest records, or ``None`` when the
    manifest describes a classic single-shard database.

    Raises:
        IndexFormatError: if the ``shards`` section is malformed or the
            layout is not contiguous from ordinal 0.
    """
    section = manifest.get("shards")
    if section is None:
        return None
    try:
        entries = [
            ShardLayoutEntry.from_description(description)
            for description in section["layout"]
        ]
        count = int(section["count"])
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexFormatError(f"malformed shard layout: {exc}") from exc
    if count != len(entries) or not entries:
        raise IndexFormatError(
            f"shard layout lists {len(entries)} shards but records "
            f"count {count}"
        )
    expected_base = 0
    for entry in entries:
        if entry.base != expected_base:
            raise IndexFormatError(
                f"shard {entry.name} starts at ordinal {entry.base}, "
                f"expected {expected_base} (layout must be contiguous)"
            )
        expected_base = entry.stop
    return entries

"""Shard planning: split a collection into contiguous ordinal ranges.

Shards are *contiguous* so a global ordinal maps to (shard, local
ordinal) with one binary search and the concatenation of the shards in
shard order is exactly the original collection — the invariant the
index merger and the fan-out engine both lean on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence as TypingSequence

from repro.errors import IndexParameterError


@dataclass(frozen=True)
class ShardSpec:
    """One planned shard: a contiguous slice of the collection.

    Attributes:
        shard_id: position in the shard order (0-based).
        base: global ordinal of the shard's first sequence.
        count: sequences in the shard (always >= 1).
    """

    shard_id: int
    base: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise IndexParameterError(
                f"shard {self.shard_id} would be empty"
            )

    @property
    def stop(self) -> int:
        """Global ordinal one past the shard's last sequence."""
        return self.base + self.count

    @property
    def name(self) -> str:
        """Directory name of the shard inside a sharded database."""
        return f"shard-{self.shard_id:04d}"


def plan_shards(num_sequences: int, shards: int) -> list[ShardSpec]:
    """Split ``num_sequences`` into ``shards`` balanced contiguous ranges.

    The first ``num_sequences % shards`` shards receive one extra
    sequence, so shard sizes differ by at most one.  ``shards`` is
    clamped to ``num_sequences`` — a shard is never empty.

    Raises:
        IndexParameterError: if either argument is < 1.
    """
    if num_sequences < 1:
        raise IndexParameterError(
            f"cannot shard an empty collection ({num_sequences} sequences)"
        )
    if shards < 1:
        raise IndexParameterError(f"shards must be >= 1, got {shards}")
    shards = min(shards, num_sequences)
    small, extra = divmod(num_sequences, shards)
    plan: list[ShardSpec] = []
    base = 0
    for shard_id in range(shards):
        count = small + (1 if shard_id < extra else 0)
        plan.append(ShardSpec(shard_id, base, count))
        base += count
    return plan


def shard_of(bases: TypingSequence[int], ordinal: int) -> int:
    """Index of the shard holding a global ordinal.

    Args:
        bases: each shard's ``base``, ascending (as produced by
            :func:`plan_shards`).
        ordinal: the global sequence ordinal (assumed in range).
    """
    return bisect_right(bases, ordinal) - 1

"""Parallel shard construction.

Each shard is an independent build — its own inverted index over its
own slice of the collection, its own sequence store, its own manifest —
so shards build in parallel worker *processes* with no shared state.
The top-level manifest is written last, after every shard has landed,
so an interrupted build leaves a directory :meth:`Database.open`
rejects rather than a silently partial database (the same write-order
discipline the single-shard path uses).

Determinism: a shard's bytes depend only on its records and parameters,
never on worker scheduling, so a ``workers=4`` build is bit-identical
to the same build with ``workers=1``.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Sequence as TypingSequence

from repro.coarse_backends import get_backend
from repro.coarse_backends.base import DEFAULT_BACKEND
from repro.errors import IndexParameterError
from repro.index.builder import IndexParameters
from repro.index.store import write_store
from repro.sequences.record import Sequence
from repro.sharding.manifest import (
    STORE_NAME,
    ShardLayoutEntry,
    make_manifest,
    make_sharded_manifest,
    write_manifest,
)
from repro.sharding.planner import ShardSpec

_LOG = logging.getLogger(__name__)


def build_shard_directory(
    directory: str | Path,
    records: TypingSequence[Sequence],
    params: IndexParameters | None = None,
    coding: str = "direct",
    coarse: dict | None = None,
) -> dict:
    """Build one shard: coarse artefact + store + manifest in ``directory``.

    The directory is created if needed and existing artefacts are
    overwritten (a re-run after an interrupted build converges).
    ``coarse`` selects and parameterises the coarse backend (``None``
    builds the inverted default).  Returns the shard's manifest.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    params = params or IndexParameters()
    backend = get_backend(
        coarse["backend"] if coarse else DEFAULT_BACKEND
    )
    index_bytes = backend.build_artifact(
        directory, records, params, coarse.get("params") if coarse else None
    )
    store_bytes = write_store(records, directory / STORE_NAME, coding)
    manifest = make_manifest(
        directory,
        len(records),
        int(sum(len(record) for record in records)),
        coding,
        params,
        index_bytes,
        store_bytes,
        coarse=coarse,
    )
    write_manifest(directory, manifest)
    return manifest


def _build_shard_task(
    job: tuple[str, list[Sequence], IndexParameters, str, dict | None]
) -> dict:
    """Process-pool entry point (module level, so it pickles)."""
    directory, records, params, coding, coarse = job
    return build_shard_directory(directory, records, params, coding, coarse)


def build_sharded_database(
    directory: str | Path,
    records: TypingSequence[Sequence],
    plan: TypingSequence[ShardSpec],
    params: IndexParameters | None = None,
    coding: str = "direct",
    workers: int = 1,
    coarse: dict | None = None,
) -> dict:
    """Build every planned shard (in parallel) and the top manifest.

    Args:
        directory: the database directory (must already exist).
        records: the full collection, in global ordinal order.
        plan: contiguous shard ranges (see
            :func:`repro.sharding.planner.plan_shards`).
        params: index shape shared by every shard.
        coding: sequence-store payload coding.
        workers: build processes; 1 builds the shards in-process.

    Returns:
        The top-level (sharded) manifest, already written to disk.

    Raises:
        IndexParameterError: if ``workers`` < 1 or the plan is empty.
    """
    if workers < 1:
        raise IndexParameterError(f"workers must be >= 1, got {workers}")
    if not plan:
        raise IndexParameterError("empty shard plan")
    directory = Path(directory)
    params = params or IndexParameters()
    jobs = [
        (
            str(directory / spec.name),
            list(records[spec.base : spec.stop]),
            params,
            coding,
            coarse,
        )
        for spec in plan
    ]
    workers = min(workers, len(jobs))
    if workers == 1:
        shard_manifests = [_build_shard_task(job) for job in jobs]
    else:
        _LOG.info(
            "building %d shards with %d worker processes", len(jobs), workers
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            shard_manifests = list(pool.map(_build_shard_task, jobs))
    entries = [
        ShardLayoutEntry(
            name=spec.name,
            base=spec.base,
            sequences=manifest["sequences"],
            bases=manifest["bases"],
            index_bytes=manifest["index_bytes"],
            store_bytes=manifest["store_bytes"],
            checksums=dict(manifest["checksums"]),
        )
        for spec, manifest in zip(plan, shard_manifests)
    ]
    manifest = make_sharded_manifest(coding, params, entries, coarse=coarse)
    write_manifest(directory, manifest)
    return manifest

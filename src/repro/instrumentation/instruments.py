"""The facade the query path holds: metrics + tracing in one handle.

Every instrumented component stores an :class:`Instruments` and calls
``count`` / ``observe`` / ``set_gauge`` / ``span`` on it.  The default
everywhere is :data:`NULL_INSTRUMENTS` — a shared singleton whose
update methods are empty and whose ``span`` returns one preallocated
no-op context manager — so a disabled engine performs zero
instrumentation allocations per query.

Enable by constructing one real ``Instruments()`` and passing it to the
engine (which wires it through the index reader, the sequence store,
and the coarse ranker it owns)::

    instruments = Instruments()
    engine = PartitionedSearchEngine(index, store, instruments=instruments)
    engine.search(query)
    print(instruments.metrics.snapshot())
    print(instruments.tracer.span_tree())
"""

from __future__ import annotations

from repro.instrumentation.eventlog import QueryEventLog
from repro.instrumentation.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.instrumentation.tracing import (
    _NULL_SPAN_CONTEXT,
    NULL_TRACER,
    NullTracer,
    Tracer,
)


class Instruments:
    """A metrics registry, a tracer, and an optional query event log
    behind one small API."""

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        eventlog: QueryEventLog | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.eventlog = eventlog

    def count(self, name: str, amount: int = 1) -> None:
        self.metrics.count(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def span(self, name: str):
        return self.tracer.span(name)

    def emit_event(self, event: dict) -> None:
        """Offer a per-query event to the attached log (if any).

        A sink write failure never propagates (the log swallows and
        counts it); the cumulative loss is mirrored into the
        ``eventlog.dropped`` gauge so scrapes see it.
        """
        if self.eventlog is not None:
            self.eventlog.emit(event)
            dropped = self.eventlog.dropped
            if dropped:
                self.metrics.set_gauge("eventlog.dropped", dropped)

    @property
    def wants_events(self) -> bool:
        """True when building an event dict is worth the allocation."""
        return self.eventlog is not None

    def reset(self) -> None:
        self.metrics.reset()
        self.tracer.reset()


class NullInstruments(Instruments):
    """The disabled facade: every call is a no-op."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = NULL_METRICS
        self.tracer = NULL_TRACER
        self.eventlog = None

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str):
        return _NULL_SPAN_CONTEXT

    def emit_event(self, event: dict) -> None:
        pass

    wants_events = False

    def reset(self) -> None:
        pass


#: The shared disabled facade every component defaults to.
NULL_INSTRUMENTS = NullInstruments()


def coalesce(instruments: Instruments | None) -> Instruments:
    """``instruments`` if given, else the shared no-op."""
    return instruments if instruments is not None else NULL_INSTRUMENTS


__all__ = [
    "Instruments",
    "NullInstruments",
    "NullMetricsRegistry",
    "NullTracer",
    "NULL_INSTRUMENTS",
    "coalesce",
]

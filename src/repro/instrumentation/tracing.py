"""Nestable wall-clock spans for the query path.

A :class:`Tracer` records a tree of timed spans per thread of work::

    with tracer.span("search"):
        with tracer.span("coarse"):
            ...
        with tracer.span("fine"):
            ...

Finished root spans accumulate on the tracer and export either as a
nested tree (:meth:`Tracer.span_tree`) or as a flat list with depths
(:meth:`Tracer.flat`), both JSON-ready.  The disabled tracer
(:data:`NULL_TRACER`) returns one shared no-op context manager, so an
uninstrumented ``with tracer.span(...)`` allocates nothing.
"""

from __future__ import annotations

import threading
import time


class Span:
    """One timed operation, possibly containing child spans."""

    __slots__ = ("name", "started", "ended", "children", "annotations")

    def __init__(self, name: str) -> None:
        self.name = name
        self.started = 0.0
        self.ended = 0.0
        self.children: list[Span] = []
        self.annotations: dict[str, float] = {}

    @property
    def seconds(self) -> float:
        return self.ended - self.started

    def annotate(self, key: str, value: float) -> None:
        """Attach a number to the span (e.g. candidate count)."""
        self.annotations[key] = float(value)

    def tree(self) -> dict:
        """This span and its children as a JSON-ready nested dict."""
        node: dict = {
            "name": self.name,
            "seconds": self.seconds,
        }
        if self.annotations:
            node["annotations"] = dict(self.annotations)
        if self.children:
            node["children"] = [child.tree() for child in self.children]
        return node


class _SpanContext:
    """Context manager that opens a span on a tracer's active stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Collects span trees; bounded so long services cannot leak.

    The active-span stack is **per thread**: each worker of a threaded
    ``search_batch`` builds its own correctly-nested tree, and finished
    roots from every thread land on one shared (locked) list.

    Args:
        max_roots: retained finished root spans; older roots are
            dropped oldest-first once the bound is reached, and every
            drop is counted in :attr:`dropped` so a saturated tracer is
            visible instead of silently lossy.
    """

    enabled = True

    def __init__(self, max_roots: int = 1024) -> None:
        self.max_roots = max_roots
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        self.roots: list[Span] = []
        #: Finished root spans discarded because ``max_roots`` was hit.
        self.dropped = 0

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> _SpanContext:
        """A context manager timing one (possibly nested) operation."""
        return _SpanContext(self, Span(name))

    def _push(self, span: Span) -> None:
        span.started = time.perf_counter()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.ended = time.perf_counter()
        stack = self._stack
        # Tolerate mispaired exits rather than corrupt the tree.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._roots_lock:
                self.roots.append(span)
                if len(self.roots) > self.max_roots:
                    excess = len(self.roots) - self.max_roots
                    del self.roots[:excess]
                    self.dropped += excess

    # -- exports ---------------------------------------------------------

    def span_tree(self) -> list[dict]:
        """Finished root spans as nested JSON-ready dicts."""
        return [root.tree() for root in self.roots]

    def flat(self) -> list[dict]:
        """Every finished span as one row: name, depth, seconds."""
        rows: list[dict] = []

        def visit(span: Span, depth: int) -> None:
            row: dict = {
                "name": span.name,
                "depth": depth,
                "seconds": span.seconds,
            }
            if span.annotations:
                row["annotations"] = dict(span.annotations)
            rows.append(row)
            for child in span.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return rows

    def durations(self, name: str) -> list[float]:
        """Seconds of every finished span with this name, in order."""
        return [
            row["seconds"] for row in self.flat() if row["name"] == name
        ]

    def reset(self) -> None:
        self._stack.clear()
        with self._roots_lock:
            self.roots.clear()
            self.dropped = 0


class _NullSpanContext:
    """Shared do-nothing span context (zero allocation per use)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """The disabled tracer: spans are shared no-ops, exports empty."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_roots=0)

    def span(self, name: str) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN_CONTEXT


#: Shared disabled tracer.
NULL_TRACER = NullTracer()

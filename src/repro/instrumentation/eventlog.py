"""Per-query audit / slow-query event log (JSONL).

A :class:`QueryEventLog` receives one event dict per query evaluation
from the engines and appends the ones that pass its gates to a JSONL
sink.  Two gates compose:

* **sampling** — ``sample_every=N`` keeps every N-th query (counted
  per log, deterministically, so tests and replay are stable); 1 keeps
  everything, 0 keeps nothing by sampling;
* **slow-query threshold** — a query whose ``total_seconds`` is at or
  above ``slow_seconds`` is *always* logged (tagged ``"slow": true``),
  regardless of sampling.

Every event carries the query identity, an options digest (so mixed
workloads can be grouped by engine configuration), phase timings,
candidate/hit counts, corruption-skip counts, and the outcome
(``"ok"`` / ``"fallback"`` / ``"error"``); the sharded engine adds a
per-shard timing breakdown.  Writing is locked, so worker threads of a
concurrent ``search_batch`` can share one log.

The log plugs into the :class:`~repro.instrumentation.instruments.
Instruments` facade (``Instruments(eventlog=...)``); engines emit via
``instruments.emit_event(...)`` which is a no-op when no log (or the
null facade) is attached.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from threading import Lock
from typing import IO, Callable

#: Format marker written into every event line.
SCHEMA = "repro.event/v1"


def options_digest(options: dict) -> str:
    """A short stable digest of an engine-options mapping.

    Engines call this once at construction; the digest groups eventlog
    lines by configuration without repeating the whole option set on
    every line.  Values are rendered with ``repr`` (schemes and
    dataclasses included), keys sorted.
    """
    rendered = json.dumps(
        {key: repr(value) for key, value in sorted(options.items())},
        sort_keys=True,
    )
    return hashlib.sha256(rendered.encode()).hexdigest()[:12]


class QueryEventLog:
    """Sampled, threshold-gated JSONL sink for query events.

    Args:
        sink: a path (opened append) or an open text file object
            (borrowed — not closed by :meth:`close`).
        sample_every: keep every N-th event; 1 logs everything, 0
            disables sampling entirely (only slow queries pass).
        slow_seconds: queries at or above this total latency are always
            logged and tagged ``slow``; ``None`` disables the gate.
        clock: timestamp source (unix seconds); injectable for tests.
    """

    def __init__(
        self,
        sink: str | Path | IO[str],
        sample_every: int = 1,
        slow_seconds: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if sample_every < 0:
            raise ValueError(
                f"sample_every must be >= 0, got {sample_every}"
            )
        self.sample_every = sample_every
        self.slow_seconds = slow_seconds
        self._clock = clock
        self._lock = Lock()
        self._seen = 0
        self._written = 0
        self._dropped = 0
        if hasattr(sink, "write"):
            self._file: IO[str] = sink  # type: ignore[assignment]
            self._owns_file = False
            self.path: Path | None = None
        else:
            self.path = Path(sink)
            self._file = self.path.open("a", encoding="utf-8")
            self._owns_file = True

    @property
    def seen(self) -> int:
        """Events offered to the log (written or not)."""
        return self._seen

    @property
    def written(self) -> int:
        """Events that passed the gates and were written."""
        return self._written

    @property
    def dropped(self) -> int:
        """Events lost to sink write failures (disk full, closed fd)."""
        return self._dropped

    def emit(self, event: dict) -> bool:
        """Offer one event; returns True when it was written.

        The event dict is augmented (not copied) with ``schema``, a
        wall-clock ``ts``, a per-log ``seq``, and ``slow`` when the
        threshold gate fired.
        """
        with self._lock:
            self._seen += 1
            slow = (
                self.slow_seconds is not None
                and float(event.get("total_seconds", 0.0))
                >= self.slow_seconds
            )
            sampled = (
                self.sample_every > 0
                and self._seen % self.sample_every == 0
            )
            if not (slow or sampled):
                return False
            event["schema"] = SCHEMA
            event["ts"] = self._clock()
            event["seq"] = self._seen
            if slow:
                event["slow"] = True
            try:
                self._file.write(json.dumps(event, sort_keys=True) + "\n")
                self._file.flush()
            except (OSError, ValueError):
                # Observability must never fail the query it observes:
                # a full disk or a closed sink costs this event line
                # (counted in ``dropped``), nothing more.  ValueError is
                # what a closed file object raises on write.
                self._dropped += 1
                return False
            self._written += 1
            return True

    def close(self) -> None:
        with self._lock:
            if self._owns_file and not self._file.closed:
                self._file.close()

    def __enter__(self) -> "QueryEventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Load every event line from a JSONL log (blank lines skipped)."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events

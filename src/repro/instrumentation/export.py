"""Telemetry exporters: ship metrics and traces off-box.

Three exposition formats over the in-process observability state:

* **Prometheus text** (:func:`prometheus_text`) — the registry's
  counters, gauges, and histograms in the text exposition format a
  Prometheus scrape endpoint (or ``promtool``) consumes.  Histograms
  emit cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
* **JSON snapshot** (:func:`metrics_json`) — the registry's
  :meth:`~repro.instrumentation.metrics.MetricsRegistry.snapshot`
  wrapped in a schema-versioned envelope, for ad-hoc collectors.
* **Chrome trace events** (:func:`trace_events` /
  :func:`trace_event_json`) — the tracer's finished span trees as
  ``chrome://tracing`` / Perfetto-loadable complete events (``"ph":
  "X"``), one event per span with annotations carried in ``args``.

:func:`write_metrics` picks the metrics format from the file suffix
(``.json`` → JSON envelope, anything else → Prometheus text), which is
what ``repro search --metrics-out`` calls; ``--trace-out`` calls
:func:`write_trace`.  :func:`format_span_tree` renders the span forest
depth-indented for terminal output (``repro search --stats``).

A tiny parser (:func:`parse_prometheus_text`) reads the exposition
format back into ``{family: {labels-tuple: value}}`` so tests can pin
the round trip without a Prometheus client dependency.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

from repro.instrumentation.metrics import (
    LOG_BUCKET_BOUNDS,
    MetricsRegistry,
)
from repro.instrumentation.tracing import Span, Tracer

#: Schema marker for the JSON metrics envelope.
METRICS_SCHEMA = "repro.metrics/v1"

#: Sanitises metric names for Prometheus (dots and brackets become
#: underscores; ``shard[3].fine`` → ``shard_3_fine``).
_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitised = _INVALID_METRIC_CHARS.sub("_", name)
    sanitised = re.sub(r"_+", "_", sanitised).strip("_")
    if not sanitised or sanitised[0].isdigit():
        sanitised = "m_" + sanitised
    return sanitised


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """The registry in the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total``, gauges plain gauges,
    histograms cumulative-bucket histograms over the registry's shared
    log-scale bounds (only non-empty buckets are emitted, plus the
    mandatory ``le="+Inf"``).

    Args:
        registry: the metrics registry to expose.
        prefix: namespace prepended to every family name.
    """
    snapshot = registry.snapshot()
    lines: list[str] = []

    for name, value in snapshot["counters"].items():
        family = f"{prefix}_{_prom_name(name)}_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_prom_value(value)}")

    for name, value in snapshot["gauges"].items():
        family = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_prom_value(value)}")

    for name, histogram in registry._histograms.items():
        family = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for slot, bucket_count in enumerate(histogram.buckets):
            cumulative += bucket_count
            if slot < len(LOG_BUCKET_BOUNDS):
                if bucket_count == 0:
                    continue
                bound = _prom_value(LOG_BUCKET_BOUNDS[slot])
                lines.append(
                    f'{family}_bucket{{le="{bound}"}} {cumulative}'
                )
        lines.append(f'{family}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{family}_sum {_prom_value(histogram.total)}")
        lines.append(f"{family}_count {histogram.count}")

    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_LINE = re.compile(
    r"^(?P<family>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)


def parse_prometheus_text(text: str) -> dict[str, dict[tuple, float]]:
    """Parse the exposition format back into nested dicts.

    Returns ``{family: {labels: value}}`` where ``labels`` is a sorted
    tuple of ``(key, value)`` pairs (empty tuple for unlabelled
    samples).  Comments and blank lines are skipped.  Raises
    ``ValueError`` on a malformed sample line, so tests double as a
    format check.
    """
    families: dict[str, dict[tuple, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels: list[tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            for pair in raw.split(","):
                key, _, value = pair.partition("=")
                labels.append((key.strip(), value.strip().strip('"')))
        value_text = match.group("value")
        value = {
            "+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan
        }.get(value_text)
        if value is None:
            value = float(value_text)
        families.setdefault(match.group("family"), {})[
            tuple(sorted(labels))
        ] = value
    return families


def metrics_json(
    registry: MetricsRegistry, meta: dict | None = None
) -> dict:
    """The registry snapshot in a schema-versioned JSON envelope."""
    document = {"schema": METRICS_SCHEMA, "meta": dict(meta or {})}
    document.update(registry.snapshot())
    return document


def write_metrics(
    registry: MetricsRegistry,
    path: str | Path,
    meta: dict | None = None,
) -> Path:
    """Write the registry to ``path``; the suffix picks the format.

    ``.json`` writes the JSON envelope, anything else (``.prom``,
    ``.txt``, no suffix) the Prometheus text exposition.
    """
    target = Path(path)
    if target.suffix == ".json":
        target.write_text(
            json.dumps(metrics_json(registry, meta), indent=2, sort_keys=True)
            + "\n"
        )
    else:
        target.write_text(prometheus_text(registry))
    return target


# -- Chrome trace events ------------------------------------------------


def _span_events(
    span: Span, pid: int, tid: int, events: list[dict]
) -> None:
    event = {
        "name": span.name,
        "ph": "X",
        "ts": span.started * 1e6,
        "dur": max(0.0, span.seconds) * 1e6,
        "pid": pid,
        "tid": tid,
        "cat": "repro",
    }
    if span.annotations:
        event["args"] = dict(span.annotations)
    events.append(event)
    for child in span.children:
        _span_events(child, pid, tid, events)


def trace_events(tracer: Tracer, pid: int = 1) -> list[dict]:
    """The tracer's span forest as Chrome complete events.

    Every span becomes one ``"ph": "X"`` event whose ``ts``/``dur``
    are microseconds on the ``perf_counter`` clock; children nest
    inside their parent's interval, which is how ``chrome://tracing``
    and Perfetto reconstruct the hierarchy.  Each root tree gets its
    own ``tid`` so concurrent queries render as parallel tracks.
    """
    events: list[dict] = []
    for tid, root in enumerate(tracer.roots, start=1):
        _span_events(root, pid, tid, events)
    return events


def trace_event_json(tracer: Tracer, meta: dict | None = None) -> str:
    """A complete Chrome trace JSON document for the tracer."""
    document = {
        "traceEvents": trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }
    return json.dumps(document, indent=2)


def write_trace(
    tracer: Tracer, path: str | Path, meta: dict | None = None
) -> Path:
    """Write the tracer's spans as a Chrome trace file."""
    target = Path(path)
    target.write_text(trace_event_json(tracer, meta) + "\n")
    return target


# -- terminal rendering -------------------------------------------------


def format_span_tree(tracer: Tracer, limit_roots: int = 50) -> str:
    """The span forest depth-indented for terminal output.

    Each line shows the span name, wall-clock milliseconds, and any
    annotations; at most ``limit_roots`` most-recent roots render (a
    long workload would otherwise flood the terminal), with a header
    noting elision and the tracer's drop count when non-zero.
    """
    lines: list[str] = []
    roots = tracer.roots
    shown = roots[-limit_roots:] if limit_roots else roots
    elided = len(roots) - len(shown)
    if elided > 0:
        lines.append(f"... {elided} earlier span tree(s) elided ...")
    if tracer.dropped:
        lines.append(
            f"... {tracer.dropped} span tree(s) dropped at the "
            f"max_roots={tracer.max_roots} bound ..."
        )

    def visit(span: Span, depth: int) -> None:
        text = f"{'  ' * depth}{span.name:<{max(2, 24 - 2 * depth)}} "
        text += f"{span.seconds * 1000:8.2f} ms"
        if span.annotations:
            notes = ", ".join(
                f"{key}={value:g}"
                for key, value in sorted(span.annotations.items())
            )
            text += f"  [{notes}]"
        lines.append(text)
        for child in span.children:
            visit(child, depth + 1)

    for root in shown:
        visit(root, 0)
    return "\n".join(lines)

"""Deterministic fault injectors for durability and recovery testing.

The fault-matrix tests use these helpers to damage on-disk artefacts in
controlled, reproducible ways and then assert that every fault is
caught as a typed :class:`repro.errors.CorruptionError` (or degrades
per the configured policy) — never a hang, a silent wrong answer, or an
uncaught low-level exception.

Three families of injector:

* **byte-level damage** — :func:`truncate_at`, :func:`flip_byte`,
  :func:`flip_bit`, :func:`zero_page` mutate a file in place;
* **section maps** — :func:`index_sections` / :func:`store_sections`
  name each structural region of a format-v2 file with its byte range,
  so a test can target "the vocabulary table" rather than an offset;
* **crash simulation** — :func:`crash_during_replace` and
  :func:`crash_on_fsync` patch the indirection points in
  :mod:`repro.index.atomic` to raise :class:`SimulatedCrash` at the
  torn-rename / durability boundary, proving interrupted builds never
  leave a visible half-written file.
"""

from __future__ import annotations

import contextlib
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import IndexFormatError

#: Default page size for :func:`zero_page` (one filesystem block).
PAGE_SIZE = 4096


class SimulatedCrash(BaseException):
    """Raised by crash injectors at the simulated power-loss point.

    Derives from :class:`BaseException` so production ``except
    Exception`` cleanup handlers cannot accidentally swallow the
    simulated crash — mirroring a real power loss, which no handler
    survives.
    """


@dataclass(frozen=True)
class FaultReport:
    """What an injector did: file, fault kind, and affected range."""

    path: str
    kind: str
    offset: int
    length: int

    def __str__(self) -> str:
        return (
            f"{self.kind} at [{self.offset}, {self.offset + self.length}) "
            f"in {self.path}"
        )


def truncate_at(path: str | Path, offset: int) -> FaultReport:
    """Truncate ``path`` to ``offset`` bytes (a torn tail write)."""
    path = Path(path)
    size = path.stat().st_size
    offset = max(0, min(offset, size))
    with open(path, "r+b") as handle:
        handle.truncate(offset)
    return FaultReport(str(path), "truncate", offset, size - offset)


def flip_byte(path: str | Path, offset: int, mask: int = 0xFF) -> FaultReport:
    """XOR one byte of ``path`` with ``mask`` (a media bit error)."""
    path = Path(path)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        if not original:
            raise ValueError(f"offset {offset} beyond end of {path}")
        handle.seek(offset)
        handle.write(bytes([original[0] ^ (mask & 0xFF)]))
    return FaultReport(str(path), "flip_byte", offset, 1)


def flip_bit(path: str | Path, bit_offset: int) -> FaultReport:
    """Flip a single bit (bit ``bit_offset`` counted from file start)."""
    return flip_byte(path, bit_offset // 8, 1 << (bit_offset % 8))


def zero_page(
    path: str | Path, offset: int, length: int = PAGE_SIZE
) -> FaultReport:
    """Overwrite a page with zeros (a lost or unwritten disk block)."""
    path = Path(path)
    size = path.stat().st_size
    offset = max(0, min(offset, size))
    length = max(0, min(length, size - offset))
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(bytes(length))
    return FaultReport(str(path), "zero_page", offset, length)


# -- crash simulation at the atomic-write boundary ----------------------


@contextlib.contextmanager
def crash_during_replace() -> Iterator[None]:
    """Simulate power loss during the final rename of an atomic write.

    Inside the context, the first ``os.replace`` issued by
    :mod:`repro.index.atomic` raises :class:`SimulatedCrash`, leaving
    the temporary file unrenamed — the torn-rename scenario.  The
    original entry point is always restored.
    """
    from repro.index import atomic

    original = atomic._replace

    def torn_replace(src: str, dst: str) -> None:
        raise SimulatedCrash(f"simulated crash renaming {src} -> {dst}")

    atomic._replace = torn_replace
    try:
        yield
    finally:
        atomic._replace = original


@contextlib.contextmanager
def crash_on_fsync(after: int = 0) -> Iterator[None]:
    """Simulate power loss at the ``after``-th fsync inside the context.

    ``after=0`` crashes on the first fsync (mid-build, before anything
    is durable); larger values let earlier files land and interrupt a
    later stage of a multi-file build.
    """
    from repro.index import atomic

    original = atomic._fsync
    remaining = [after]

    def crashing_fsync(fd: int) -> None:
        if remaining[0] <= 0:
            raise SimulatedCrash("simulated crash at fsync")
        remaining[0] -= 1
        original(fd)

    atomic._fsync = crashing_fsync
    try:
        yield
    finally:
        atomic._fsync = original


# -- section maps for the v2 formats ------------------------------------


def _sections_v2(
    path: Path,
    magic: bytes,
    row_size: int | None,
) -> dict[str, tuple[int, int]]:
    """Shared v2 layout walk; ``row_size`` of None marks a store."""
    data = path.read_bytes()
    prefix = struct.Struct("<4sHI")
    if len(data) < prefix.size:
        raise IndexFormatError(f"{path}: too short to map sections")
    found, version, header_length = prefix.unpack_from(data, 0)
    if found != magic:
        raise IndexFormatError(f"{path}: bad magic {found!r}")
    if version != 2:
        raise IndexFormatError(
            f"{path}: section maps cover format v2 only, found v{version}"
        )
    sections: dict[str, tuple[int, int]] = {"prefix": (0, prefix.size)}
    cursor = prefix.size
    sections["header_crc"] = (cursor, cursor + 4)
    cursor += 4
    sections["header"] = (cursor, cursor + header_length)
    cursor += header_length
    sections["count"] = (cursor, cursor + 8)
    (count,) = struct.unpack_from("<Q", data, cursor)
    cursor += 8
    if row_size is not None:
        sections["table_crc"] = (cursor, cursor + 4)
        cursor += 4
        sections["table"] = (cursor, cursor + count * row_size)
        cursor += count * row_size
        sections["blob"] = (cursor, len(data))
    else:
        sections["tables_crc"] = (cursor, cursor + 4)
        cursor += 4
        sections["offsets"] = (cursor, cursor + 8 * (count + 1))
        cursor += 8 * (count + 1)
        sections["record_crcs"] = (cursor, cursor + 4 * count)
        cursor += 4 * count
        sections["payload"] = (cursor, len(data))
    return sections


def index_sections(path: str | Path) -> dict[str, tuple[int, int]]:
    """Byte ranges of each structural section of a v2 ``.rpix`` file.

    Keys: ``prefix``, ``header_crc``, ``header``, ``count``,
    ``table_crc``, ``table``, ``blob``.
    """
    from repro.index.storage import _MAGIC, _VOCAB_DTYPE

    return _sections_v2(Path(path), _MAGIC, _VOCAB_DTYPE.itemsize)


def store_sections(path: str | Path) -> dict[str, tuple[int, int]]:
    """Byte ranges of each structural section of a v2 ``.rpsq`` file.

    Keys: ``prefix``, ``header_crc``, ``header``, ``count``,
    ``tables_crc``, ``offsets``, ``record_crcs``, ``payload``.
    """
    from repro.index.store import _MAGIC

    return _sections_v2(Path(path), _MAGIC, None)

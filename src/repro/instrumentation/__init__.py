"""Instrumentation: query-path observability and fault injection.

Two halves live here:

* **observability** — the metrics registry
  (:mod:`repro.instrumentation.metrics`), the span tracer
  (:mod:`repro.instrumentation.tracing`), the :class:`Instruments`
  facade the engines hold, and workload profiling
  (:mod:`repro.instrumentation.profiling`);
* **fault injection** — deterministic corruption and crash simulation
  for durability tests (:mod:`repro.instrumentation.faults`).
"""

from repro.instrumentation.eventlog import (
    QueryEventLog,
    options_digest,
    read_events,
)
from repro.instrumentation.export import (
    format_span_tree,
    metrics_json,
    parse_prometheus_text,
    prometheus_text,
    trace_event_json,
    trace_events,
    write_metrics,
    write_trace,
)
from repro.instrumentation.faults import (
    FaultReport,
    SimulatedCrash,
    crash_during_replace,
    crash_on_fsync,
    flip_bit,
    flip_byte,
    index_sections,
    store_sections,
    truncate_at,
    zero_page,
)
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    NullInstruments,
    coalesce,
)
from repro.instrumentation.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.instrumentation.profiling import (
    ProfileSnapshot,
    profile_search,
    snapshot_from_instruments,
)
from repro.instrumentation.tracing import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "FaultReport",
    "Gauge",
    "Histogram",
    "Instruments",
    "MetricsRegistry",
    "NULL_INSTRUMENTS",
    "NullInstruments",
    "NullMetricsRegistry",
    "NullTracer",
    "ProfileSnapshot",
    "QueryEventLog",
    "SimulatedCrash",
    "Span",
    "Tracer",
    "coalesce",
    "crash_during_replace",
    "crash_on_fsync",
    "flip_bit",
    "flip_byte",
    "format_span_tree",
    "index_sections",
    "metrics_json",
    "options_digest",
    "parse_prometheus_text",
    "profile_search",
    "prometheus_text",
    "read_events",
    "snapshot_from_instruments",
    "store_sections",
    "trace_event_json",
    "trace_events",
    "write_metrics",
    "write_trace",
    "zero_page",
]

"""Instrumentation: deterministic fault injection for durability tests."""

from repro.instrumentation.faults import (
    FaultReport,
    SimulatedCrash,
    crash_during_replace,
    crash_on_fsync,
    flip_bit,
    flip_byte,
    index_sections,
    store_sections,
    truncate_at,
    zero_page,
)

__all__ = [
    "FaultReport",
    "SimulatedCrash",
    "crash_during_replace",
    "crash_on_fsync",
    "flip_bit",
    "flip_byte",
    "index_sections",
    "store_sections",
    "truncate_at",
    "zero_page",
]

"""Instrumentation: query-path observability and fault injection.

Two halves live here:

* **observability** — the metrics registry
  (:mod:`repro.instrumentation.metrics`), the span tracer
  (:mod:`repro.instrumentation.tracing`), the :class:`Instruments`
  facade the engines hold, and workload profiling
  (:mod:`repro.instrumentation.profiling`);
* **fault injection** — deterministic corruption and crash simulation
  for durability tests (:mod:`repro.instrumentation.faults`).
"""

from repro.instrumentation.faults import (
    FaultReport,
    SimulatedCrash,
    crash_during_replace,
    crash_on_fsync,
    flip_bit,
    flip_byte,
    index_sections,
    store_sections,
    truncate_at,
    zero_page,
)
from repro.instrumentation.instruments import (
    NULL_INSTRUMENTS,
    Instruments,
    NullInstruments,
    coalesce,
)
from repro.instrumentation.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.instrumentation.profiling import (
    ProfileSnapshot,
    profile_search,
    snapshot_from_instruments,
)
from repro.instrumentation.tracing import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "FaultReport",
    "Gauge",
    "Histogram",
    "Instruments",
    "MetricsRegistry",
    "NULL_INSTRUMENTS",
    "NullInstruments",
    "NullMetricsRegistry",
    "NullTracer",
    "ProfileSnapshot",
    "SimulatedCrash",
    "Span",
    "Tracer",
    "coalesce",
    "crash_during_replace",
    "crash_on_fsync",
    "flip_bit",
    "flip_byte",
    "index_sections",
    "profile_search",
    "snapshot_from_instruments",
    "store_sections",
    "truncate_at",
    "zero_page",
]

"""Workload profiling: run queries, snapshot the instrumentation.

:func:`profile_search` drives any engine exposing
``search(query, top_k)`` over a query list with instrumentation
enabled, then condenses the registry into a :class:`ProfileSnapshot` —
per-phase latency percentiles, decode-cache hit rate, quarantine
counts, throughput — that serialises to the ``BENCH_profile.json``
format consumed by the perf-trajectory tooling and CI artifacts.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.instrumentation.instruments import Instruments

#: Format marker so future snapshot layouts stay distinguishable.
SCHEMA = "repro.profile/v1"

#: Default snapshot file name (the perf trajectory scans BENCH_*.json).
DEFAULT_PROFILE_NAME = "BENCH_profile.json"


@dataclass(frozen=True)
class ProfileSnapshot:
    """One profiled workload, JSON-ready.

    Attributes:
        meta: free-form workload description (collection size, cutoff,
            engine name, ...).
        queries: query evaluations performed (repeats included).
        wall_seconds: wall clock of the whole run.
        throughput_qps: queries per wall-clock second.
        phases: per-histogram latency summaries in milliseconds, keyed
            by metric name (e.g. ``partitioned.coarse_seconds``).
        decode_cache: hits / misses / evictions / hit_rate (hit_rate is
            ``None`` until the cache sees traffic).
        quarantine: quarantined ``intervals`` and ``sequences`` counts.
        counters / gauges: the full registry contents.
    """

    meta: dict = field(default_factory=dict)
    queries: int = 0
    wall_seconds: float = 0.0
    throughput_qps: float = 0.0
    phases: dict = field(default_factory=dict)
    decode_cache: dict = field(default_factory=dict)
    quarantine: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    schema: str = SCHEMA

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileSnapshot":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})

    @classmethod
    def from_json(cls, text: str) -> "ProfileSnapshot":
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> Path:
        """Serialise to ``path`` (returned for convenience)."""
        target = Path(path)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "ProfileSnapshot":
        return cls.from_json(Path(path).read_text())

    def describe(self) -> str:
        """A short human-readable summary (for CLI output)."""
        lines = [
            f"queries           : {self.queries}",
            f"wall seconds      : {self.wall_seconds:.3f}",
            f"throughput        : {self.throughput_qps:.1f} q/s",
        ]
        for name, phase in sorted(self.phases.items()):
            lines.append(
                f"{name:<18}: p50={phase['p50_ms']:.2f}ms "
                f"p90={phase['p90_ms']:.2f}ms p99={phase['p99_ms']:.2f}ms "
                f"(n={phase['count']})"
            )
        rate = self.decode_cache.get("hit_rate")
        rate_text = "n/a" if rate is None else f"{rate:.1%}"
        lines.append(
            f"decode cache      : {rate_text} hit rate "
            f"({self.decode_cache.get('hits', 0)} hits / "
            f"{self.decode_cache.get('misses', 0)} misses)"
        )
        lines.append(
            f"quarantine        : {self.quarantine.get('intervals', 0)} "
            f"interval(s), {self.quarantine.get('sequences', 0)} sequence(s)"
        )
        return "\n".join(lines)


def _phase_summaries(snapshot: dict) -> dict:
    """Millisecond latency summaries of every *_seconds histogram."""
    phases: dict[str, dict] = {}
    for name, summary in snapshot.get("histograms", {}).items():
        if not name.endswith("_seconds"):
            continue
        phases[name] = {
            "count": summary["count"],
            "total_s": summary["total"],
            "mean_ms": summary["mean"] * 1000.0,
            "p50_ms": summary["p50"] * 1000.0,
            "p90_ms": summary["p90"] * 1000.0,
            "p99_ms": summary["p99"] * 1000.0,
        }
    return phases


def snapshot_from_instruments(
    instruments: Instruments,
    queries: int,
    wall_seconds: float,
    meta: dict | None = None,
) -> ProfileSnapshot:
    """Condense a registry into a :class:`ProfileSnapshot`."""
    registry = instruments.metrics.snapshot()
    counters = registry.get("counters", {})
    hits = counters.get("index.decode_cache.hits", 0)
    misses = counters.get("index.decode_cache.misses", 0)
    seen = hits + misses
    return ProfileSnapshot(
        meta=dict(meta or {}),
        queries=queries,
        wall_seconds=wall_seconds,
        throughput_qps=queries / wall_seconds if wall_seconds > 0 else 0.0,
        phases=_phase_summaries(registry),
        decode_cache={
            "hits": hits,
            "misses": misses,
            "evictions": counters.get("index.decode_cache.evictions", 0),
            "hit_rate": hits / seen if seen else None,
        },
        quarantine={
            "intervals": counters.get("index.quarantined_intervals", 0),
            "sequences": counters.get("store.quarantined_sequences", 0),
        },
        counters=dict(counters),
        gauges=dict(registry.get("gauges", {})),
    )


def profile_search(
    engine,
    queries,
    top_k: int = 10,
    repeat: int = 1,
    meta: dict | None = None,
) -> ProfileSnapshot:
    """Run a query workload and snapshot what the engine measured.

    The engine must expose ``search(query, top_k=...)`` and
    ``set_instruments`` (all repro engines do).  If the engine is not
    already instrumented, a fresh :class:`Instruments` is attached for
    the run.

    Args:
        engine: the search engine to drive.
        queries: the query records (anything ``engine.search`` takes).
        top_k: answers requested per query.
        repeat: whole-workload repetitions (>=2 exercises caches).
        meta: extra workload description recorded in the snapshot.
    """
    instruments = getattr(engine, "instruments", None)
    if instruments is None or not instruments.enabled:
        instruments = Instruments()
        engine.set_instruments(instruments)
    queries = list(queries)
    started = time.perf_counter()
    for _ in range(max(1, repeat)):
        for query in queries:
            engine.search(query, top_k=top_k)
    wall_seconds = time.perf_counter() - started
    from repro.compression import fastunpack

    merged_meta = {
        "engine": type(engine).__name__,
        "top_k": top_k,
        "repeat": max(1, repeat),
        "distinct_queries": len(queries),
        "kernel_tier": fastunpack.active_tier(),
        "coarse_backend": getattr(engine, "coarse_backend", "inverted"),
    }
    merged_meta.update(meta or {})
    return snapshot_from_instruments(
        instruments,
        queries=len(queries) * max(1, repeat),
        wall_seconds=wall_seconds,
        meta=merged_meta,
    )

"""A lightweight metrics registry: counters, gauges, histograms.

The query path reports what it does — postings fetched, cache hits,
per-phase latencies — through a :class:`MetricsRegistry`.  Components
never hold a registry directly; they hold an
:class:`~repro.instrumentation.instruments.Instruments` facade whose
default is a shared no-op, so an uninstrumented engine pays nothing
beyond an attribute load and an empty method call per event.

Histograms use fixed log-scale buckets (:data:`LOG_BUCKET_BOUNDS`, four
per decade from 1e-7 to 1e3) so observing is O(log buckets) with no
per-observation allocation, and percentiles are read back by
interpolating within the matching bucket — accurate to well under a
bucket width (~78%), which is plenty for latency reporting.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from threading import Lock

#: Histogram bucket upper bounds: four per decade, 1e-7 .. 1e3 (seconds
#: scale covers 100 ns to ~17 min; values outside land in the edge
#: buckets).  Shared by every histogram so snapshots line up.
LOG_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-28, 13)
)


class Counter:
    """A monotonically increasing integer.

    Mutation is locked: worker threads driving a concurrent
    ``search_batch`` all bump the same counters, and an unlocked
    read-modify-write would silently lose increments.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = Lock()

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time float (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """A log-scale-bucketed distribution of non-negative floats.

    ``observe`` locks the whole multi-field update so concurrent
    observers can never leave ``count``/``total``/bucket tallies
    disagreeing with each other.
    """

    __slots__ = (
        "name", "buckets", "count", "total", "minimum", "maximum", "_lock"
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets = [0] * (len(LOG_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0
        self._lock = Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.buckets[bisect_left(LOG_BUCKET_BOUNDS, value)] += 1
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100]).

        The answer is interpolated geometrically inside the bucket the
        rank falls in, clamped to the observed min/max.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        for slot, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= rank:
                lower = LOG_BUCKET_BOUNDS[slot - 1] if slot > 0 else 0.0
                upper = (
                    LOG_BUCKET_BOUNDS[slot]
                    if slot < len(LOG_BUCKET_BOUNDS)
                    else self.maximum
                )
                estimate = math.sqrt(max(lower, 1e-12) * max(upper, 1e-12))
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    def summary(self) -> dict[str, float]:
        """count / mean / min / max / p50 / p90 / p99 / total."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use.

    Thread safety: instrument *creation* is locked, and every
    instrument locks its own mutation, so concurrent workers (threaded
    ``search_batch``) never lose updates.  Reads take no lock — a
    snapshot racing a writer sees a consistent per-instrument state at
    worst one observation behind.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = Lock()

    # -- instrument accessors -------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name)
                )
        return instrument

    # -- one-call update conveniences -----------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reading ---------------------------------------------------------

    def counter_value(self, name: str) -> int:
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> dict[str, dict]:
        """All instruments as one JSON-ready dict."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh measurement window)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every update is a no-op, every read empty.

    A single shared instance (:data:`NULL_METRICS`) backs every
    uninstrumented component, so the disabled path allocates nothing.
    """

    enabled = False

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> Counter:
        # Hand out throwaway instruments so misuse cannot accumulate
        # state on the shared singleton.
        return Counter(name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(name)

    def histogram(self, name: str) -> Histogram:
        return Histogram(name)


#: Shared disabled registry.
NULL_METRICS = NullMetricsRegistry()

"""Exception hierarchy for the repro package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still being able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AlphabetError(ReproError):
    """A sequence contains characters outside the supported alphabet."""


class FastaFormatError(ReproError):
    """A FASTA stream is malformed (missing header, empty record, ...)."""


class CodecError(ReproError):
    """An integer or sequence codec was misused or fed corrupt data."""


class CodecValueError(CodecError):
    """A value is outside the range a codec can represent."""


class BitStreamError(CodecError):
    """A bit stream ended prematurely or is otherwise corrupt."""


class StorageError(ReproError):
    """On-disk persistence failed (write, fsync, rename, ...)."""


class IndexError_(ReproError):
    """Base class for inverted-index errors.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class IndexParameterError(IndexError_):
    """Invalid index construction parameters (interval length, stride, ...)."""


class IndexFormatError(IndexError_, StorageError):
    """An on-disk index file is malformed or has the wrong version."""


class CorruptionError(IndexFormatError):
    """An on-disk artefact failed an integrity check.

    Raised when a checksum mismatch, truncation, or structural damage
    is detected in an index, store, or manifest — eagerly at open time
    for headers and tables, lazily on first access for posting lists
    and sequence records.

    Attributes:
        interval_id: the damaged posting list's interval, when known.
        ordinal: the damaged sequence record's ordinal, when known.
        section: the damaged file section's name, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        interval_id: int | None = None,
        ordinal: int | None = None,
        section: str | None = None,
    ) -> None:
        super().__init__(message)
        self.interval_id = interval_id
        self.ordinal = ordinal
        self.section = section


class IndexLookupError(IndexError_):
    """A vocabulary or sequence-store lookup failed."""


class AlignmentError(ReproError):
    """Invalid alignment parameters or inputs."""


class SearchError(ReproError):
    """Invalid search parameters or an engine used before it is ready."""


class WorkloadError(ReproError):
    """Invalid synthetic-workload specification."""

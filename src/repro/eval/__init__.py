"""Effectiveness oracles, IR metrics, and timing helpers."""

from repro.eval.ground_truth import (
    GroundTruth,
    QueryTruth,
    compute_ground_truth,
)
from repro.eval.metrics import (
    average_precision,
    eleven_point_interpolated,
    mean_eleven_point,
    precision_at,
    ranking_overlap,
    oracle_recall_at,
    recall_at,
    recall_precision_points,
)
from repro.eval.timing import Timer, TimingSummary

__all__ = [
    "GroundTruth",
    "QueryTruth",
    "Timer",
    "TimingSummary",
    "average_precision",
    "compute_ground_truth",
    "eleven_point_interpolated",
    "mean_eleven_point",
    "precision_at",
    "ranking_overlap",
    "oracle_recall_at",
    "recall_at",
    "recall_precision_points",
]

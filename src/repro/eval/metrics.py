"""Retrieval-effectiveness metrics.

The paper measures a partitioned engine against an exhaustive-search
oracle; these are the standard IR measures that comparison uses —
recall/precision at a cutoff, average precision, and the 11-point
interpolated recall-precision curve.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ReproError


def _check_cutoff(cutoff: int) -> None:
    if cutoff < 1:
        raise ReproError(f"cutoff must be >= 1, got {cutoff}")


def recall_at(
    ranking: Sequence[int], relevant: Iterable[int], cutoff: int
) -> float:
    """Fraction of relevant items appearing in the first ``cutoff`` ranks."""
    _check_cutoff(cutoff)
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    found = sum(1 for item in ranking[:cutoff] if item in relevant_set)
    return found / len(relevant_set)


def oracle_recall_at(
    ranking_scores: Sequence[float],
    oracle_scores: Sequence[float],
    cutoff: int,
) -> float:
    """Recall against an exhaustive oracle, tolerant of boundary ties.

    When the oracle's ``cutoff``-th answer sits inside a group of
    equal-scoring documents, *which* group members make the top
    ``cutoff`` is arbitrary — any of them is an equally good answer.
    So instead of set membership, an answer counts as found when its
    score reaches the oracle's ``cutoff``-th score: the fraction of the
    first ``cutoff`` ranked answers scoring at least that threshold.
    An engine returning fewer than ``cutoff`` answers is penalised for
    the empty slots.

    Raises:
        ReproError: if ``cutoff`` < 1 or the oracle supplied fewer than
            ``cutoff`` scores.
    """
    _check_cutoff(cutoff)
    if len(oracle_scores) < cutoff:
        raise ReproError(
            f"oracle supplied {len(oracle_scores)} scores but the cutoff "
            f"is {cutoff}"
        )
    threshold = sorted(oracle_scores, reverse=True)[cutoff - 1]
    found = sum(
        1 for score in ranking_scores[:cutoff] if score >= threshold
    )
    return found / cutoff


def precision_at(
    ranking: Sequence[int], relevant: Iterable[int], cutoff: int
) -> float:
    """Fraction of the first ``cutoff`` ranks that are relevant."""
    _check_cutoff(cutoff)
    relevant_set = set(relevant)
    window = ranking[:cutoff]
    if not window:
        return 0.0
    return sum(1 for item in window if item in relevant_set) / len(window)


def average_precision(
    ranking: Sequence[int], relevant: Iterable[int]
) -> float:
    """Mean of precision values at each relevant item's rank."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    found = 0
    precision_sum = 0.0
    for rank, item in enumerate(ranking, start=1):
        if item in relevant_set:
            found += 1
            precision_sum += found / rank
    return precision_sum / len(relevant_set)


def recall_precision_points(
    ranking: Sequence[int], relevant: Iterable[int]
) -> list[tuple[float, float]]:
    """(recall, precision) at every rank where a relevant item appears."""
    relevant_set = set(relevant)
    if not relevant_set:
        return []
    points = []
    found = 0
    for rank, item in enumerate(ranking, start=1):
        if item in relevant_set:
            found += 1
            points.append((found / len(relevant_set), found / rank))
    return points


def eleven_point_interpolated(
    ranking: Sequence[int], relevant: Iterable[int]
) -> list[float]:
    """Interpolated precision at recall 0.0, 0.1, ..., 1.0.

    Interpolated precision at recall level r is the maximum precision
    at any recall >= r (the TREC convention).
    """
    points = recall_precision_points(ranking, relevant)
    levels = [level / 10.0 for level in range(11)]
    interpolated = []
    for level in levels:
        candidates = [
            precision for recall, precision in points if recall >= level - 1e-12
        ]
        interpolated.append(max(candidates, default=0.0))
    return interpolated


def mean_eleven_point(curves: Sequence[Sequence[float]]) -> list[float]:
    """Average several 11-point curves level by level.

    Raises:
        ReproError: if the list is empty or a curve is malformed.
    """
    if not curves:
        raise ReproError("no curves to average")
    if any(len(curve) != 11 for curve in curves):
        raise ReproError("an 11-point curve must have 11 levels")
    return [
        sum(curve[level] for curve in curves) / len(curves)
        for level in range(11)
    ]


def ranking_overlap(
    first: Sequence[int], second: Sequence[int], cutoff: int
) -> float:
    """Jaccard-style overlap of two rankings' first ``cutoff`` items."""
    _check_cutoff(cutoff)
    first_set = set(first[:cutoff])
    second_set = set(second[:cutoff])
    union = first_set | second_set
    if not union:
        return 1.0
    return len(first_set & second_set) / len(union)

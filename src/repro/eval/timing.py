"""Small timing utilities used by the benchmark harness."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field


class Timer:
    """Context manager measuring wall-clock seconds.

    Example:
        >>> with Timer() as timer:
        ...     _ = sum(range(1000))
        >>> timer.seconds >= 0.0
        True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._started


@dataclass
class TimingSummary:
    """Accumulates repeated measurements of one operation."""

    label: str
    samples: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        """Record one measurement."""
        self.samples.append(seconds)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples) if self.samples else 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.label}: n={len(self.samples)} total={self.total:.3f}s "
            f"mean={self.mean * 1000:.1f}ms median={self.median * 1000:.1f}ms"
        )

"""Exhaustive-search oracles for effectiveness evaluation.

The paper judges partitioned search by how well it reproduces the
answers an exhaustive local-alignment scan returns.  A
:class:`GroundTruth` snapshots that oracle for a query set: per query,
every sequence's true alignment score and the induced ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.search.exhaustive import ExhaustiveSearcher
from repro.sequences.record import Sequence


@dataclass(frozen=True)
class QueryTruth:
    """The oracle's verdict for one query.

    Attributes:
        query_identifier: the query's name.
        scores: true local-alignment score per collection ordinal.
        ranking: ordinals sorted by descending score (ties by ordinal),
            truncated to the positive-scoring sequences.
    """

    query_identifier: str
    scores: np.ndarray
    ranking: np.ndarray

    def relevant(self, min_score: int) -> frozenset[int]:
        """Ordinals whose true score reaches ``min_score``."""
        return frozenset(
            int(ordinal)
            for ordinal in np.flatnonzero(self.scores >= min_score)
        )

    def top(self, count: int) -> list[int]:
        """The oracle's first ``count`` answers."""
        return [int(ordinal) for ordinal in self.ranking[:count]]


@dataclass(frozen=True)
class GroundTruth:
    """Oracle verdicts for a whole query set, in query order."""

    truths: tuple[QueryTruth, ...]

    def __len__(self) -> int:
        return len(self.truths)

    def __getitem__(self, slot: int) -> QueryTruth:
        return self.truths[slot]


def compute_ground_truth(
    searcher: ExhaustiveSearcher, queries: list[Sequence]
) -> GroundTruth:
    """Score every query against every sequence with the oracle scanner."""
    truths = []
    for query in queries:
        scores = searcher.scores(query)
        positive = np.flatnonzero(scores > 0)
        order = np.lexsort((positive, -scores[positive]))
        truths.append(
            QueryTruth(
                query_identifier=query.identifier,
                scores=scores,
                ranking=positive[order],
            )
        )
    return GroundTruth(tuple(truths))

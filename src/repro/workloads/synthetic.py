"""Synthetic GenBank-like collections with planted homologous families.

DESIGN.md records the substitution this module implements: the paper
evaluated on GenBank subsets, unavailable here, so collections are
generated with the two statistical properties the index is sensitive
to — controllable base composition, and families of homologous
sequences produced by a mutation model.  Because family membership is
known exactly, every query has a perfect relevance judgement; the
paper approximated the same thing with exhaustive-search oracles, which
:mod:`repro.eval.ground_truth` also provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.sequences.alphabet import IUPAC_ALPHABET, NUM_BASES
from repro.sequences.mutate import MutationModel
from repro.sequences.record import Sequence

#: Code for 'N', the wildcard injected at ``wildcard_rate``.
_N_CODE = IUPAC_ALPHABET.index("N")


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a synthetic collection.

    Attributes:
        num_families: homologous families to plant.
        family_size: sequences per family (>= 1).
        num_background: unrelated random sequences.
        mean_length: mean sequence length.
        length_spread: relative spread of lengths (0 = fixed length).
        mutation: the evolution model deriving family members from the
            family ancestor.
        gc_content: probability a generated base is G or C.
        wildcard_rate: probability a position is replaced by ``N``.
        seed: RNG seed; identical specs generate identical collections.
    """

    num_families: int = 20
    family_size: int = 5
    num_background: int = 400
    mean_length: int = 1000
    length_spread: float = 0.25
    mutation: MutationModel = field(
        default_factory=lambda: MutationModel(0.10, 0.02, 0.02)
    )
    gc_content: float = 0.5
    wildcard_rate: float = 0.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_families < 0 or self.num_background < 0:
            raise WorkloadError("family/background counts must be >= 0")
        if self.num_families and self.family_size < 1:
            raise WorkloadError("family_size must be >= 1")
        if self.mean_length < 1:
            raise WorkloadError("mean_length must be >= 1")
        if not 0.0 <= self.length_spread < 1.0:
            raise WorkloadError("length_spread must lie in [0, 1)")
        if not 0.0 < self.gc_content < 1.0:
            raise WorkloadError("gc_content must lie in (0, 1)")
        if not 0.0 <= self.wildcard_rate < 1.0:
            raise WorkloadError("wildcard_rate must lie in [0, 1)")
        if self.num_families * self.family_size + self.num_background == 0:
            raise WorkloadError("spec generates an empty collection")

    @property
    def num_sequences(self) -> int:
        return self.num_families * self.family_size + self.num_background

    @property
    def expected_bases(self) -> int:
        return self.num_sequences * self.mean_length


@dataclass(frozen=True)
class SyntheticCollection:
    """A generated collection plus its planted family structure.

    Attributes:
        sequences: the collection, ordinally addressed.
        families: per family, the ordinals of its members (shuffled
            across the collection, as homologs are in GenBank).
        spec: the spec that produced it.
    """

    sequences: tuple[Sequence, ...]
    families: tuple[tuple[int, ...], ...]
    spec: WorkloadSpec

    def family_of(self, ordinal: int) -> int | None:
        """The family an ordinal belongs to, or None for background."""
        for family_number, members in enumerate(self.families):
            if ordinal in members:
                return family_number
        return None

    def family_members(self, family_number: int) -> frozenset[int]:
        """Ordinals of one family.

        Raises:
            WorkloadError: if the family number is out of range.
        """
        if not 0 <= family_number < len(self.families):
            raise WorkloadError(f"no family {family_number}")
        return frozenset(self.families[family_number])

    @property
    def total_bases(self) -> int:
        return sum(len(record) for record in self.sequences)


def _draw_length(spec: WorkloadSpec, rng: np.random.Generator) -> int:
    if spec.length_spread == 0.0:
        return spec.mean_length
    low = spec.mean_length * (1.0 - spec.length_spread)
    high = spec.mean_length * (1.0 + spec.length_spread)
    return max(1, int(rng.uniform(low, high)))


def _random_codes(
    length: int, spec: WorkloadSpec, rng: np.random.Generator
) -> np.ndarray:
    at_half = (1.0 - spec.gc_content) / 2.0
    gc_half = spec.gc_content / 2.0
    probabilities = [at_half, gc_half, gc_half, at_half]  # A C G T
    codes = rng.choice(NUM_BASES, size=length, p=probabilities).astype(np.uint8)
    if spec.wildcard_rate > 0.0:
        codes[rng.random(length) < spec.wildcard_rate] = _N_CODE
    return codes


def generate_collection(spec: WorkloadSpec) -> SyntheticCollection:
    """Generate the collection a spec describes (deterministic in seed)."""
    rng = np.random.default_rng(spec.seed)
    members_codes: list[np.ndarray] = []
    member_family: list[int | None] = []

    for family_number in range(spec.num_families):
        ancestor = _random_codes(_draw_length(spec, rng), spec, rng)
        for _ in range(spec.family_size):
            members_codes.append(spec.mutation.mutate(ancestor, rng))
            member_family.append(family_number)
    for _ in range(spec.num_background):
        members_codes.append(_random_codes(_draw_length(spec, rng), spec, rng))
        member_family.append(None)

    order = rng.permutation(len(members_codes))
    sequences: list[Sequence] = []
    family_lists: list[list[int]] = [[] for _ in range(spec.num_families)]
    for ordinal, original in enumerate(order):
        family_number = member_family[int(original)]
        if family_number is None:
            identifier = f"bg{int(original):05d}"
        else:
            identifier = (
                f"fam{family_number:03d}m"
                f"{int(original) % spec.family_size:02d}"
            )
            family_lists[family_number].append(ordinal)
        sequences.append(
            Sequence(identifier, members_codes[int(original)])
        )
    return SyntheticCollection(
        tuple(sequences),
        tuple(tuple(sorted(members)) for members in family_lists),
        spec,
    )

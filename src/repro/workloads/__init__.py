"""Synthetic collections and query workloads with known relevance."""

from repro.workloads.queries import (
    QueryCase,
    make_background_queries,
    make_family_queries,
)
from repro.workloads.synthetic import (
    SyntheticCollection,
    WorkloadSpec,
    generate_collection,
)

__all__ = [
    "QueryCase",
    "SyntheticCollection",
    "WorkloadSpec",
    "generate_collection",
    "make_background_queries",
    "make_family_queries",
]

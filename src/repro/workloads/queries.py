"""Query workloads over synthetic collections.

A query is a (possibly further mutated) window cut from a collection
sequence.  Family queries come with perfect relevance judgements — the
other members of the source sequence's family — which is the workload
behind the recall experiments (E5, E7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sequences.mutate import MutationModel
from repro.sequences.record import Sequence
from repro.workloads.synthetic import SyntheticCollection


@dataclass(frozen=True)
class QueryCase:
    """One query with its known relevant answers.

    Attributes:
        query: the query record.
        relevant: collection ordinals that are true relatives (always
            includes the source sequence itself).
        source_ordinal: the sequence the query window was cut from.
    """

    query: Sequence
    relevant: frozenset[int]
    source_ordinal: int


def _cut_window(
    codes: np.ndarray, window: int, rng: np.random.Generator
) -> np.ndarray:
    if codes.shape[0] <= window:
        return codes.copy()
    start = int(rng.integers(0, codes.shape[0] - window + 1))
    return codes[start : start + window].copy()


def make_family_queries(
    collection: SyntheticCollection,
    num_queries: int,
    query_length: int = 200,
    extra_mutation: MutationModel | None = None,
    seed: int = 7,
) -> list[QueryCase]:
    """Queries cut from family members, relevant = the whole family.

    Args:
        collection: a collection with planted families.
        num_queries: how many query cases to produce.
        query_length: window size cut from the source sequence.
        extra_mutation: additional divergence applied to the window
            (models a query that is itself an imperfect relative).
        seed: RNG seed.

    Raises:
        WorkloadError: if the collection has no families or the counts
            are non-positive.
    """
    if num_queries < 1:
        raise WorkloadError(f"num_queries must be >= 1, got {num_queries}")
    if query_length < 1:
        raise WorkloadError(f"query_length must be >= 1, got {query_length}")
    if not collection.families:
        raise WorkloadError("collection has no planted families")
    rng = np.random.default_rng(seed)
    cases = []
    for number in range(num_queries):
        family_number = int(rng.integers(0, len(collection.families)))
        members = collection.families[family_number]
        source = int(members[int(rng.integers(0, len(members)))])
        window = _cut_window(
            collection.sequences[source].codes, query_length, rng
        )
        if extra_mutation is not None:
            window = extra_mutation.mutate(window, rng)
        cases.append(
            QueryCase(
                query=Sequence(f"q{number:04d}_fam{family_number:03d}", window),
                relevant=frozenset(members),
                source_ordinal=source,
            )
        )
    return cases


def make_background_queries(
    collection: SyntheticCollection,
    num_queries: int,
    query_length: int = 200,
    seed: int = 11,
) -> list[QueryCase]:
    """Queries cut from background sequences (relevant = source only).

    Raises:
        WorkloadError: if the collection has no background sequences or
            counts are non-positive.
    """
    if num_queries < 1:
        raise WorkloadError(f"num_queries must be >= 1, got {num_queries}")
    if query_length < 1:
        raise WorkloadError(f"query_length must be >= 1, got {query_length}")
    family_ordinals = {
        ordinal for members in collection.families for ordinal in members
    }
    background = [
        ordinal
        for ordinal in range(len(collection.sequences))
        if ordinal not in family_ordinals
    ]
    if not background:
        raise WorkloadError("collection has no background sequences")
    rng = np.random.default_rng(seed)
    cases = []
    for number in range(num_queries):
        source = int(background[int(rng.integers(0, len(background)))])
        window = _cut_window(
            collection.sequences[source].codes, query_length, rng
        )
        cases.append(
            QueryCase(
                query=Sequence(f"q{number:04d}_bg", window),
                relevant=frozenset({source}),
                source_ordinal=source,
            )
        )
    return cases

"""Self-indexing (skip-pointer) posting lists.

Long compressed lists are expensive to decode when a consumer only
needs a few entries — e.g. checking whether specific candidate
sequences contain an interval.  Following the self-indexing inverted
lists of Moffat & Zobel (used by the same group's text and genomic
engines), the list is divided into fixed-size *blocks*, each
independently decodable, preceded by a directory of (first ordinal,
bit length) pairs.  A reader seeking particular ordinals walks the
directory and skips — in O(1) per block — every block whose ordinal
range cannot contain them.

Layout (bit-aligned)::

    gamma(num_blocks)
    directory: per block, gamma(first-ordinal gap), gamma(bit length)
    blocks:    per block, gamma(count_0 - 1),
               then (golomb(ordinal gap), gamma(count - 1)) pairs

The first ordinal of each block lives only in the directory, so block
decoding is self-contained.  Counts ride along as in the main codec's
section A; offsets (section B) are deliberately out of scope — skip
decoding serves the candidate-checking access path, which never needs
them.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.elias import EliasGammaCodec
from repro.compression.golomb import GolombCodec, optimal_golomb_parameter
from repro.errors import CodecError
from repro.index.postings import PostingsContext

_GAMMA = EliasGammaCodec()

#: Default entries per block: small enough to skip most of a long list,
#: large enough that directories stay a few percent of the data.
DEFAULT_BLOCK_SIZE = 32


class BlockedPostings:
    """Encoder/decoder for self-indexing document/count lists.

    Args:
        block_size: entries per block.

    Raises:
        CodecError: if ``block_size`` < 1.
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size < 1:
            raise CodecError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size

    def _doc_codec(self, df: int, context: PostingsContext) -> GolombCodec:
        return GolombCodec(
            optimal_golomb_parameter(max(df, 1), max(context.num_sequences, 1))
        )

    def encode(
        self,
        docs: np.ndarray,
        counts: np.ndarray,
        context: PostingsContext,
    ) -> bytes:
        """Compress parallel (ordinal, count) arrays.

        Raises:
            CodecError: if the arrays disagree in length, ordinals are
                not strictly increasing, or a count is < 1.
        """
        docs = np.asarray(docs, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if docs.shape != counts.shape:
            raise CodecError("docs and counts must be parallel arrays")
        if docs.shape[0] and (
            np.any(np.diff(docs) <= 0) or int(docs[0]) < 0
        ):
            raise CodecError("ordinals must be strictly increasing and >= 0")
        if counts.shape[0] and int(counts.min(initial=1)) < 1:
            raise CodecError("counts must be >= 1")

        doc_codec = self._doc_codec(docs.shape[0], context)
        blocks: list[tuple[int, bytes, int]] = []  # (first doc, bits, nbits)
        for start in range(0, docs.shape[0], self.block_size):
            block_docs = docs[start : start + self.block_size]
            block_counts = counts[start : start + self.block_size]
            writer = BitWriter()
            _GAMMA.encode_value(writer, int(block_counts[0]) - 1)
            previous = int(block_docs[0])
            for doc, count in zip(
                block_docs[1:].tolist(), block_counts[1:].tolist()
            ):
                doc_codec.encode_value(writer, doc - previous - 1)
                _GAMMA.encode_value(writer, count - 1)
                previous = doc
            blocks.append(
                (int(block_docs[0]), writer.getvalue(), writer.bit_length)
            )

        out = BitWriter()
        _GAMMA.encode_value(out, len(blocks))
        previous_first = -1
        for first_doc, _, bit_length in blocks:
            _GAMMA.encode_value(out, first_doc - previous_first - 1)
            _GAMMA.encode_value(out, bit_length)
            previous_first = first_doc
        for _, data, bit_length in blocks:
            out.write_bit_chunk(data, bit_length)
        return out.getvalue()

    def _read_directory(
        self, reader: BitReader
    ) -> tuple[list[int], list[int]]:
        num_blocks = _GAMMA.decode_value(reader)
        first_docs: list[int] = []
        bit_lengths: list[int] = []
        previous = -1
        for _ in range(num_blocks):
            previous += _GAMMA.decode_value(reader) + 1
            first_docs.append(previous)
            bit_lengths.append(_GAMMA.decode_value(reader))
        return first_docs, bit_lengths

    def _decode_block(
        self,
        reader: BitReader,
        first_doc: int,
        entries: int,
        doc_codec: GolombCodec,
    ) -> tuple[list[int], list[int]]:
        docs = [first_doc]
        counts = [_GAMMA.decode_value(reader) + 1]
        previous = first_doc
        for _ in range(entries - 1):
            previous += doc_codec.decode_value(reader) + 1
            docs.append(previous)
            counts.append(_GAMMA.decode_value(reader) + 1)
        return docs, counts

    def decode_all(
        self, data: bytes, df: int, context: PostingsContext
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode the full list: (ordinals, counts) int64 arrays."""
        if df == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        reader = BitReader(data)
        first_docs, _ = self._read_directory(reader)
        doc_codec = self._doc_codec(df, context)
        docs: list[int] = []
        counts: list[int] = []
        remaining = df
        for block, first_doc in enumerate(first_docs):
            entries = min(self.block_size, remaining)
            block_docs, block_counts = self._decode_block(
                reader, first_doc, entries, doc_codec
            )
            docs.extend(block_docs)
            counts.extend(block_counts)
            remaining -= entries
        return (
            np.array(docs, dtype=np.int64),
            np.array(counts, dtype=np.int64),
        )

    def decode_candidates(
        self,
        data: bytes,
        df: int,
        context: PostingsContext,
        wanted: Iterable[int],
    ) -> dict[int, int]:
        """Counts for the ``wanted`` ordinals present in the list.

        Blocks whose ordinal range cannot hold a wanted ordinal are
        skipped without decoding — the whole point of the directory.

        Returns:
            ``{ordinal: count}`` for the wanted ordinals found.
        """
        wanted_set = {int(doc) for doc in wanted}
        wanted_sorted = sorted(wanted_set)
        if not wanted_sorted or df == 0:
            return {}
        reader = BitReader(data)
        first_docs, bit_lengths = self._read_directory(reader)
        doc_codec = self._doc_codec(df, context)

        found: dict[int, int] = {}
        remaining = df
        for block, first_doc in enumerate(first_docs):
            entries = min(self.block_size, remaining)
            remaining -= entries
            next_first = (
                first_docs[block + 1]
                if block + 1 < len(first_docs)
                else None
            )
            # The block covers [first_doc, next_first); check overlap.
            overlaps = any(
                doc >= first_doc
                and (next_first is None or doc < next_first)
                for doc in wanted_sorted
            )
            if not overlaps:
                reader.skip_bits(bit_lengths[block])
                continue
            block_docs, block_counts = self._decode_block(
                reader, first_doc, entries, doc_codec
            )
            for doc, count in zip(block_docs, block_counts):
                if doc in wanted_set:
                    found[doc] = count
        return found

"""Sequence stores: where the fine search fetches residues from.

The paper's partitioned search touches only the candidate sequences the
coarse phase selects, so sequences must be retrievable independently of
storage order.  The on-disk store keeps an offset table plus per-record
payloads coded either *raw* (one code byte per base) or *direct*
(2-bit packed with a wildcard side list — the cino scheme measured in
E8).  An in-memory source with the same interface backs small runs and
tests.

Format v2 adds integrity data: a header checksum and an offset/record
checksum block verified eagerly at open, plus a CRC32 per record
payload verified lazily on first access.  Mismatches raise
:class:`repro.errors.CorruptionError`; v1 files still open read-only
with a warning.  Writes are atomic (see :mod:`repro.index.atomic`).
"""

from __future__ import annotations

import json
import mmap
import struct
import warnings
import zlib
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Sequence as TypingSequence

import numpy as np

from repro.compression.direct import decode_sequence, encode_sequence
from repro.errors import CorruptionError, IndexFormatError, IndexLookupError
from repro.index.atomic import atomic_write
from repro.instrumentation.instruments import NULL_INSTRUMENTS, coalesce
from repro.sequences.record import Sequence

_MAGIC = b"RPSQ"
_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_PREFIX = struct.Struct("<4sHI")
_CRC = struct.Struct("<I")

#: Supported payload codings.
CODINGS = ("raw", "direct")


class SequenceSource(ABC):
    """Random access to the collection's sequences by ordinal."""

    @property
    def instruments(self):
        """Observability sink (shared no-op until attached)."""
        return getattr(self, "_instruments", NULL_INSTRUMENTS)

    def set_instruments(self, instruments) -> None:
        """Attach an :class:`~repro.instrumentation.Instruments` sink.

        Disk-backed sources report fetch traffic
        (``store.records_fetched`` / ``store.bytes_read``) and lazy
        integrity work (``store.checksums_verified``).  Passing ``None``
        detaches (reverts to the shared no-op).
        """
        self._instruments = coalesce(instruments)

    @abstractmethod
    def __len__(self) -> int:
        """Number of sequences."""

    @abstractmethod
    def identifier(self, ordinal: int) -> str:
        """Identifier of the sequence at ``ordinal``."""

    @abstractmethod
    def codes(self, ordinal: int) -> np.ndarray:
        """Coded residues of the sequence at ``ordinal``."""

    def record(self, ordinal: int) -> Sequence:
        """Full :class:`Sequence` record at ``ordinal``."""
        return Sequence(self.identifier(ordinal), self.codes(ordinal))

    def _check(self, ordinal: int) -> None:
        if not 0 <= ordinal < len(self):
            raise IndexLookupError(
                f"sequence ordinal {ordinal} out of range 0..{len(self) - 1}"
            )


class MemorySequenceSource(SequenceSource):
    """A list of records presented through the source interface."""

    def __init__(self, sequences: TypingSequence[Sequence]) -> None:
        self._sequences = list(sequences)

    def __len__(self) -> int:
        return len(self._sequences)

    def identifier(self, ordinal: int) -> str:
        self._check(ordinal)
        return self._sequences[ordinal].identifier

    def codes(self, ordinal: int) -> np.ndarray:
        self._check(ordinal)
        return self._sequences[ordinal].codes

    def record(self, ordinal: int) -> Sequence:
        self._check(ordinal)
        return self._sequences[ordinal]


def write_store(
    sequences: TypingSequence[Sequence],
    path: str | Path,
    coding: str = "direct",
    version: int = _VERSION,
) -> int:
    """Serialise a collection atomically; returns the bytes written.

    ``version`` is exposed for compatibility testing only.

    Raises:
        IndexFormatError: if ``coding`` is unknown.
    """
    if coding not in CODINGS:
        raise IndexFormatError(
            f"unknown coding {coding!r}; expected one of {CODINGS}"
        )
    if version not in _SUPPORTED_VERSIONS:
        raise IndexFormatError(f"cannot write store version {version}")
    payloads: list[bytes] = []
    for record in sequences:
        if coding == "direct":
            payloads.append(encode_sequence(record.codes))
        else:
            payloads.append(record.codes.tobytes())

    header = json.dumps(
        {
            "coding": coding,
            "identifiers": [record.identifier for record in sequences],
            "descriptions": [record.description for record in sequences],
        }
    ).encode("utf-8")
    offsets = np.zeros(len(payloads) + 1, dtype="<u8")
    if payloads:
        offsets[1:] = np.cumsum(
            np.array([len(payload) for payload in payloads], dtype=np.int64)
        )
    crcs = np.array(
        [zlib.crc32(payload) for payload in payloads], dtype="<u4"
    )

    with atomic_write(path) as handle:
        written = handle.write(_PREFIX.pack(_MAGIC, version, len(header)))
        if version >= 2:
            written += handle.write(_CRC.pack(zlib.crc32(header)))
        written += handle.write(header)
        written += handle.write(struct.pack("<Q", len(payloads)))
        if version >= 2:
            tables = offsets.tobytes() + crcs.tobytes()
            written += handle.write(_CRC.pack(zlib.crc32(tables)))
            written += handle.write(tables)
        else:
            written += handle.write(offsets.tobytes())
        for payload in payloads:
            written += handle.write(payload)
        return written


class SequenceStore(SequenceSource):
    """Memory-mapped random-access store written by :func:`write_store`.

    Raises:
        IndexFormatError: if the file is not a valid store.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = open(self._path, "rb")
        try:
            self._map = mmap.mmap(
                self._handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as exc:
            self._handle.close()
            raise IndexFormatError(f"{self._path}: empty store file") from exc
        try:
            self._parse()
        except Exception:
            self.close()
            raise

    def _parse(self) -> None:
        view = self._map
        if len(view) < _PREFIX.size:
            raise CorruptionError(
                f"{self._path}: truncated prefix", section="prefix"
            )
        magic, version, header_length = _PREFIX.unpack_from(view, 0)
        if magic != _MAGIC:
            raise IndexFormatError(f"{self._path}: bad magic {magic!r}")
        if version not in _SUPPORTED_VERSIONS:
            raise IndexFormatError(f"{self._path}: unsupported version {version}")
        self.version = int(version)
        if self.version < 2:
            warnings.warn(
                f"{self._path}: format v1 store has no integrity data; "
                "checksums cannot be verified (rebuild to upgrade)",
                stacklevel=3,
            )
        cursor = _PREFIX.size
        header_crc = None
        if self.version >= 2:
            if cursor + _CRC.size > len(view):
                raise CorruptionError(
                    f"{self._path}: truncated header checksum",
                    section="header_crc",
                )
            (header_crc,) = _CRC.unpack_from(view, cursor)
            cursor += _CRC.size
        if cursor + header_length > len(view):
            raise CorruptionError(
                f"{self._path}: truncated header", section="header"
            )
        header_bytes = bytes(view[cursor : cursor + header_length])
        if header_crc is not None and zlib.crc32(header_bytes) != header_crc:
            raise CorruptionError(
                f"{self._path}: header fails checksum", section="header"
            )
        try:
            header = json.loads(header_bytes)
        except ValueError as exc:
            raise IndexFormatError(f"{self._path}: bad header JSON") from exc
        cursor += header_length
        self.coding = str(header["coding"])
        if self.coding not in CODINGS:
            raise IndexFormatError(f"{self._path}: unknown coding {self.coding!r}")
        self._identifiers = list(header["identifiers"])
        self._descriptions = list(header.get("descriptions", []))
        if cursor + 8 > len(view):
            raise CorruptionError(
                f"{self._path}: truncated record count", section="count"
            )
        (count,) = struct.unpack_from("<Q", view, cursor)
        cursor += 8
        if count != len(self._identifiers):
            raise CorruptionError(
                f"{self._path}: header lists {len(self._identifiers)} "
                f"identifiers but store holds {count} records",
                section="count",
            )
        tables_crc = None
        if self.version >= 2:
            if cursor + _CRC.size > len(view):
                raise CorruptionError(
                    f"{self._path}: truncated table checksum",
                    section="tables_crc",
                )
            (tables_crc,) = _CRC.unpack_from(view, cursor)
            cursor += _CRC.size
        offsets_bytes = 8 * (count + 1)
        crcs_bytes = 4 * count if self.version >= 2 else 0
        if cursor + offsets_bytes + crcs_bytes > len(view):
            raise CorruptionError(
                f"{self._path}: truncated offset table", section="offsets"
            )
        if tables_crc is not None and (
            zlib.crc32(view[cursor : cursor + offsets_bytes + crcs_bytes])
            != tables_crc
        ):
            raise CorruptionError(
                f"{self._path}: offset/checksum tables fail checksum",
                section="offsets",
            )
        # Copy the (small) tables out of the map so closing is safe.
        self._offsets = np.frombuffer(
            view, dtype="<u8", count=count + 1, offset=cursor
        ).copy()
        if self.version >= 2:
            self._record_crcs = np.frombuffer(
                view, dtype="<u4", count=count, offset=cursor + offsets_bytes
            ).copy()
            self._record_verified = np.zeros(count, dtype=bool)
        else:
            self._record_crcs = None
            self._record_verified = None
        self._payload_start = cursor + offsets_bytes + crcs_bytes
        if count and np.any(np.diff(self._offsets.astype(np.int64)) < 0):
            raise CorruptionError(
                f"{self._path}: offset table not monotonic", section="offsets"
            )
        if self._payload_start + int(self._offsets[-1]) > len(view):
            raise CorruptionError(
                f"{self._path}: truncated payload", section="payload"
            )

    def close(self) -> None:
        """Release the mapping and file handle."""
        if getattr(self, "_map", None) is not None:
            self._map.close()
            self._map = None  # type: ignore[assignment]
        if getattr(self, "_handle", None) is not None:
            self._handle.close()
            self._handle = None  # type: ignore[assignment]

    def __enter__(self) -> "SequenceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._identifiers)

    def identifier(self, ordinal: int) -> str:
        self._check(ordinal)
        return self._identifiers[ordinal]

    def _payload(self, ordinal: int) -> bytes:
        start = self._payload_start + int(self._offsets[ordinal])
        end = self._payload_start + int(self._offsets[ordinal + 1])
        data = bytes(self._map[start:end])
        instruments = self.instruments
        instruments.count("store.records_fetched")
        instruments.count("store.bytes_read", len(data))
        if (
            self._record_crcs is not None
            and not self._record_verified[ordinal]
        ):
            instruments.count("store.checksums_verified")
            if zlib.crc32(data) != int(self._record_crcs[ordinal]):
                raise CorruptionError(
                    f"{self._path}: record {ordinal} "
                    f"({self._identifiers[ordinal]!r}) fails checksum",
                    ordinal=ordinal,
                    section="payload",
                )
            self._record_verified[ordinal] = True
        return data

    def verify(self) -> list[str]:
        """Check every record payload's checksum; returns the problems.

        An empty list means the store is fully intact.  Format v1
        stores report a single note that no integrity data exists.
        """
        if self._record_crcs is None:
            return [
                f"{self._path}: format v1 has no integrity data; "
                "cannot verify records"
            ]
        issues: list[str] = []
        for ordinal in range(len(self)):
            try:
                self._payload(ordinal)
            except CorruptionError as exc:
                issues.append(str(exc))
        return issues

    def codes(self, ordinal: int) -> np.ndarray:
        self._check(ordinal)
        payload = self._payload(ordinal)
        if self.coding == "direct":
            return decode_sequence(payload)
        return np.frombuffer(payload, dtype=np.uint8).copy()

    def record(self, ordinal: int) -> Sequence:
        self._check(ordinal)
        description = (
            self._descriptions[ordinal] if self._descriptions else ""
        )
        return Sequence(
            self._identifiers[ordinal], self.codes(ordinal), description
        )

    @property
    def payload_bytes(self) -> int:
        """Total coded payload size (excludes headers and offsets)."""
        return int(self._offsets[-1])


class LiveSequenceView(SequenceSource):
    """A source with tombstoned ordinals elided.

    Presents the *logical* collection over a stored one: logical
    ordinal ``i`` is the ``i``-th non-tombstoned stored record, in
    stored order.  This is exactly the ordinal space a fresh rebuild
    over the surviving records would assign, which is what makes
    base+delta+tombstone search reports comparable hit-for-hit with a
    rebuilt index.

    Raises:
        IndexLookupError: from the constructor if ``tombstones`` is not
            sorted/unique or references ordinals outside the inner
            source.
    """

    def __init__(
        self, inner: SequenceSource, tombstones: TypingSequence[int]
    ) -> None:
        self._inner = inner
        dead = np.asarray(tombstones, dtype=np.int64)
        if dead.size:
            if np.any(np.diff(dead) <= 0):
                raise IndexLookupError(
                    "tombstones must be sorted and unique"
                )
            if dead[0] < 0 or dead[-1] >= len(inner):
                raise IndexLookupError(
                    f"tombstone {int(dead[0] if dead[0] < 0 else dead[-1])} "
                    f"outside stored range 0..{len(inner) - 1}"
                )
        self._dead = dead

    @property
    def inner(self) -> SequenceSource:
        """The wrapped stored-ordinal source."""
        return self._inner

    def set_instruments(self, instruments) -> None:
        super().set_instruments(instruments)
        self._inner.set_instruments(instruments)

    def __len__(self) -> int:
        return len(self._inner) - int(self._dead.size)

    def stored_ordinal(self, ordinal: int) -> int:
        """The stored ordinal behind logical ``ordinal``."""
        self._check(ordinal)
        # stored = ordinal + |{t in tombstones : t <= stored}|; iterate
        # to the fixpoint (each pass can only move forward, and moves
        # at most len(tombstones) times in total).
        skipped = 0
        while True:
            advanced = int(
                np.searchsorted(self._dead, ordinal + skipped, side="right")
            )
            if advanced == skipped:
                return ordinal + skipped
            skipped = advanced

    def logical_ordinal(self, stored: int) -> int:
        """The logical ordinal of live stored record ``stored``.

        Raises:
            IndexLookupError: if ``stored`` is tombstoned or out of
                range.
        """
        if not 0 <= stored < len(self._inner):
            raise IndexLookupError(
                f"stored ordinal {stored} out of range "
                f"0..{len(self._inner) - 1}"
            )
        position = int(np.searchsorted(self._dead, stored, side="left"))
        if position < self._dead.size and int(self._dead[position]) == stored:
            raise IndexLookupError(
                f"stored ordinal {stored} is tombstoned"
            )
        return stored - position

    def identifier(self, ordinal: int) -> str:
        return self._inner.identifier(self.stored_ordinal(ordinal))

    def codes(self, ordinal: int) -> np.ndarray:
        return self._inner.codes(self.stored_ordinal(ordinal))

    def record(self, ordinal: int) -> Sequence:
        return self._inner.record(self.stored_ordinal(ordinal))


def read_store(path: str | Path) -> SequenceStore:
    """Open an on-disk sequence store for reading."""
    return SequenceStore(path)

"""Fixed-length substring ("interval") extraction.

The paper's index terms are fixed-length substrings of the collection.
An interval of length k over the four bases packs into the integer

    id = sum_j  code[j] * 4^(k - 1 - j)

so the vocabulary is at most 4^k entries and extraction is pure numpy:
a sliding window view times a weight vector.  Windows that contain a
wildcard are skipped, as in the original system — wildcards are rare
and the fine search still sees them.

Extraction supports a stride so both overlapping (stride 1) and
non-overlapping (stride k) indexing — an explicit design axis of the
paper's index-size experiments — share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexParameterError
from repro.sequences.alphabet import BASES, NUM_BASES, WILDCARD_MIN_CODE

#: Largest supported interval length: 4^16 ids still fit comfortably in
#: an int64 and vocabularies beyond that are never useful for DNA.
MAX_INTERVAL_LENGTH = 16


def interval_id(text: str) -> int:
    """Pack an interval string (bases only) into its integer id.

    Raises:
        IndexParameterError: if the string is empty, too long, or holds
            a non-base character.
    """
    if not 0 < len(text) <= MAX_INTERVAL_LENGTH:
        raise IndexParameterError(
            f"interval length must be 1..{MAX_INTERVAL_LENGTH}, "
            f"got {len(text)}"
        )
    packed = 0
    for char in text.upper():
        try:
            packed = packed * NUM_BASES + BASES.index(char)
        except ValueError:
            raise IndexParameterError(
                f"interval may only contain bases, got {char!r}"
            ) from None
    return packed


def interval_text(packed: int, length: int) -> str:
    """Unpack an integer id back into its interval string.

    Raises:
        IndexParameterError: if the id is out of range for ``length``.
    """
    if not 0 < length <= MAX_INTERVAL_LENGTH:
        raise IndexParameterError(f"bad interval length {length}")
    if not 0 <= packed < NUM_BASES**length:
        raise IndexParameterError(
            f"id {packed} out of range for length {length}"
        )
    chars = []
    for _ in range(length):
        packed, digit = divmod(packed, NUM_BASES)
        chars.append(BASES[digit])
    return "".join(reversed(chars))


@dataclass(frozen=True)
class IntervalExtractor:
    """Extracts (interval id, position) pairs from coded sequences.

    Attributes:
        length: the interval (k-mer) length.
        stride: distance between successive window starts; 1 gives
            overlapping intervals, ``length`` gives non-overlapping.
    """

    length: int
    stride: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.length <= MAX_INTERVAL_LENGTH:
            raise IndexParameterError(
                f"interval length must be 1..{MAX_INTERVAL_LENGTH}, "
                f"got {self.length}"
            )
        if self.stride < 1:
            raise IndexParameterError(f"stride must be >= 1, got {self.stride}")

    @property
    def vocabulary_limit(self) -> int:
        """Number of distinct interval ids this length admits."""
        return NUM_BASES**self.length

    def extract(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All interval ids and their start positions in one sequence.

        Returns:
            ``(ids, positions)`` — int64 arrays of equal length.  Windows
            containing a wildcard are omitted; a sequence shorter than
            the interval length yields empty arrays.
        """
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        if codes.shape[0] < self.length:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        windows = np.lib.stride_tricks.sliding_window_view(codes, self.length)
        windows = windows[:: self.stride]
        positions = np.arange(
            0, codes.shape[0] - self.length + 1, self.stride, dtype=np.int64
        )
        valid = (windows < WILDCARD_MIN_CODE).all(axis=1)
        weights = NUM_BASES ** np.arange(
            self.length - 1, -1, -1, dtype=np.int64
        )
        ids = windows[valid].astype(np.int64) @ weights
        return ids, positions[valid]

    def extract_distinct(self, codes: np.ndarray) -> np.ndarray:
        """Sorted distinct interval ids appearing in a sequence."""
        ids, _ = self.extract(codes)
        return np.unique(ids)

    def extract_expanded(
        self,
        codes: np.ndarray,
        max_wildcards: int = 1,
        max_expansion: int = 64,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Extraction that expands lightly-wildcarded windows.

        Windows containing up to ``max_wildcards`` wildcard characters
        are enumerated into every concrete interval their IUPAC
        expansions allow (an ``N`` contributes all four bases, an ``R``
        two, ...), capped at ``max_expansion`` ids per window.  Clean
        windows behave exactly as :meth:`extract`.  This is how a query
        containing uncalled bases still reaches the index.

        Raises:
            IndexParameterError: if the limits are not positive.
        """
        if max_wildcards < 1:
            raise IndexParameterError(
                f"max_wildcards must be >= 1, got {max_wildcards}"
            )
        if max_expansion < 1:
            raise IndexParameterError(
                f"max_expansion must be >= 1, got {max_expansion}"
            )
        ids, positions = self.extract(codes)
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        if codes.shape[0] < self.length:
            return ids, positions

        from itertools import product

        from repro.sequences.alphabet import IUPAC_ALPHABET, IUPAC_EXPANSIONS

        expansion_codes = [
            tuple(BASES.index(base) for base in sorted(IUPAC_EXPANSIONS[char]))
            for char in IUPAC_ALPHABET
        ]
        weights = NUM_BASES ** np.arange(
            self.length - 1, -1, -1, dtype=np.int64
        )
        windows = np.lib.stride_tricks.sliding_window_view(codes, self.length)
        windows = windows[:: self.stride]
        window_positions = np.arange(
            0, codes.shape[0] - self.length + 1, self.stride, dtype=np.int64
        )
        wildcard_counts = (windows >= WILDCARD_MIN_CODE).sum(axis=1)
        expandable = np.flatnonzero(
            (wildcard_counts >= 1) & (wildcard_counts <= max_wildcards)
        )
        extra_ids: list[int] = []
        extra_positions: list[int] = []
        for window_slot in expandable:
            window = windows[window_slot]
            choices = [expansion_codes[int(code)] for code in window]
            emitted = 0
            for concrete in product(*choices):
                if emitted >= max_expansion:
                    break
                packed = int(
                    np.dot(np.array(concrete, dtype=np.int64), weights)
                )
                extra_ids.append(packed)
                extra_positions.append(int(window_positions[window_slot]))
                emitted += 1
        if not extra_ids:
            return ids, positions
        combined_ids = np.concatenate(
            [ids, np.array(extra_ids, dtype=np.int64)]
        )
        combined_positions = np.concatenate(
            [positions, np.array(extra_positions, dtype=np.int64)]
        )
        order = np.argsort(combined_positions, kind="stable")
        return combined_ids[order], combined_positions[order]

"""Chunked index construction and index merging.

The paper's collections (GenBank) do not fit in memory, so the on-disk
index is built the classic inverted-file way: invert manageable chunks
in memory, then merge the partial indexes.  Merging re-encodes each
interval's postings because sequence ordinals are renumbered into the
combined collection and the Golomb parameters are derived from the
combined statistics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence as TypingSequence

import numpy as np

from repro.errors import IndexParameterError
from repro.index.builder import (
    CollectionInfo,
    IndexParameters,
    InvertedIndex,
    VocabEntry,
    build_index,
)
from repro.index.postings import PostingEntry
from repro.sequences.record import Sequence


def merge_indexes(parts: TypingSequence[InvertedIndex]) -> InvertedIndex:
    """Merge partial indexes into one index over the concatenated
    collections.

    Sequence ordinals of part ``i`` are shifted by the total number of
    sequences in parts ``0..i-1``; the result is exactly the index a
    single :func:`~repro.index.builder.build_index` over the combined
    record list would produce.

    Raises:
        IndexParameterError: if no parts are given or their parameters
            disagree.
    """
    if not parts:
        raise IndexParameterError("nothing to merge")
    params = parts[0].params
    for part in parts[1:]:
        if part.params != params:
            raise IndexParameterError(
                "cannot merge indexes with different parameters: "
                f"{part.params} vs {params}"
            )

    identifiers: list[str] = []
    lengths: list[int] = []
    offsets: list[int] = []
    running = 0
    for part in parts:
        offsets.append(running)
        identifiers.extend(part.collection.identifiers)
        lengths.extend(part.collection.lengths.tolist())
        running += part.collection.num_sequences
    collection = CollectionInfo(
        tuple(identifiers), np.array(lengths, dtype=np.int64)
    )
    context = collection.context()
    codec = params.make_codec()

    all_ids = sorted(
        {interval for part in parts for interval in part.interval_ids()}
    )
    vocabulary: dict[int, VocabEntry] = {}
    for interval in all_ids:
        entries: list[PostingEntry] = []
        for part, offset in zip(parts, offsets):
            if interval not in part:
                continue
            if params.include_positions:
                for posting in part.postings(interval):
                    entries.append(
                        PostingEntry(
                            posting.sequence + offset, posting.positions
                        )
                    )
            else:
                # Positions were never stored; the codec only reads the
                # count from the placeholder array.
                docs, counts = part.docs_counts(interval)
                for doc, count in zip(docs.tolist(), counts.tolist()):
                    entries.append(
                        PostingEntry(
                            doc + offset, np.zeros(count, dtype=np.int64)
                        )
                    )
        data = codec.encode(entries, context)
        vocabulary[interval] = VocabEntry(
            interval,
            len(entries),
            sum(entry.count for entry in entries),
            data,
        )
    return InvertedIndex(params, collection, vocabulary)


def _batches(
    records: Iterable[Sequence], batch_size: int
) -> Iterator[list[Sequence]]:
    batch: list[Sequence] = []
    for record in records:
        batch.append(record)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def merge_index_files(
    paths: TypingSequence[str], output: str, buffer_limit: int = 1 << 16
) -> int:
    """Merge on-disk indexes into a new on-disk index, streaming.

    This is the external-memory build path: posting lists are decoded
    from the parts and re-encoded one interval at a time, so peak
    memory is one interval's postings plus a small write buffer — the
    classic inverted-file merge the paper's system used for GenBank.

    Args:
        paths: the part files, in the ordinal order their collections
            should be concatenated.
        output: destination path.
        buffer_limit: accumulated blob bytes held before flushing.

    Returns:
        Bytes written to ``output``.

    Raises:
        IndexParameterError: if no parts are given or their parameters
            disagree.
    """
    import heapq
    import json
    import tempfile
    import zlib
    from pathlib import Path

    from repro.index.atomic import atomic_write
    from repro.index.storage import _VOCAB_DTYPE, DiskIndex, write_index_stream

    if not paths:
        raise IndexParameterError("nothing to merge")
    parts = [DiskIndex(path) for path in paths]
    blob_path: str | None = None
    try:
        params = parts[0].params
        for part in parts[1:]:
            if part.params != params:
                raise IndexParameterError(
                    "cannot merge indexes with different parameters"
                )
        identifiers: list[str] = []
        lengths: list[int] = []
        offsets: list[int] = []
        running = 0
        for part in parts:
            offsets.append(running)
            identifiers.extend(part.collection.identifiers)
            lengths.extend(part.collection.lengths.tolist())
            running += part.collection.num_sequences
        collection = CollectionInfo(
            tuple(identifiers), np.array(lengths, dtype=np.int64)
        )
        context = collection.context()
        codec = params.make_codec()

        all_ids = heapq.merge(
            *(part.interval_ids() for part in parts)
        )
        table_rows: list[tuple[int, int, int, int, int, int]] = []
        blob_offset = 0
        previous_interval = -1
        # The blob is spooled to a same-directory temp file; it is
        # unlinked in the finally block below, so a failure anywhere in
        # the merge never leaves an orphan on disk.
        with tempfile.NamedTemporaryFile(
            dir=Path(output).parent, delete=False
        ) as blob:
            blob_path = blob.name
            buffer = bytearray()
            for interval in all_ids:
                if interval == previous_interval:
                    continue  # duplicates across parts handled once
                previous_interval = interval
                entries: list[PostingEntry] = []
                for part, offset in zip(parts, offsets):
                    if interval not in part:
                        continue
                    if params.include_positions:
                        for posting in part.postings(interval):
                            entries.append(
                                PostingEntry(
                                    posting.sequence + offset,
                                    posting.positions,
                                )
                            )
                    else:
                        docs, counts = part.docs_counts(interval)
                        for doc, count in zip(
                            docs.tolist(), counts.tolist()
                        ):
                            entries.append(
                                PostingEntry(
                                    doc + offset,
                                    np.zeros(count, dtype=np.int64),
                                )
                            )
                data = codec.encode(entries, context)
                table_rows.append(
                    (
                        interval,
                        len(entries),
                        sum(entry.count for entry in entries),
                        blob_offset,
                        len(data),
                        zlib.crc32(data),
                    )
                )
                blob_offset += len(data)
                buffer.extend(data)
                if len(buffer) >= buffer_limit:
                    blob.write(buffer)
                    buffer.clear()
            blob.write(buffer)

        header = json.dumps(
            {
                "params": params.describe(),
                "identifiers": list(collection.identifiers),
                "lengths": collection.lengths.tolist(),
            }
        ).encode("utf-8")
        packed = np.empty(len(table_rows), dtype=_VOCAB_DTYPE)
        if table_rows:
            table = np.array(table_rows, dtype=np.int64)
            packed["interval_id"] = table[:, 0]
            packed["df"] = table[:, 1]
            packed["cf"] = table[:, 2]
            packed["offset"] = table[:, 3]
            packed["length"] = table[:, 4]
            packed["crc"] = table[:, 5]

        def blob_chunks():
            with open(blob_path, "rb") as blob_in:
                while True:
                    chunk = blob_in.read(1 << 20)
                    if not chunk:
                        break
                    yield chunk

        with atomic_write(output) as out:
            return write_index_stream(out, header, packed, blob_chunks())
    finally:
        if blob_path is not None:
            Path(blob_path).unlink(missing_ok=True)
        for part in parts:
            part.close()


def append_sequences(
    index: InvertedIndex, records: TypingSequence[Sequence]
) -> InvertedIndex:
    """Extend an index with new sequences (appended at the end).

    New records receive the next ordinals; existing ordinals are
    untouched, so sequence sources only need to grow.  Equivalent to
    rebuilding over the combined record list.

    Raises:
        IndexParameterError: if ``records`` is empty.
    """
    if not records:
        raise IndexParameterError("no sequences to append")
    addition = build_index(list(records), index.params)
    return merge_indexes([index, addition])


def build_index_chunked(
    records: Iterable[Sequence],
    params: IndexParameters | None = None,
    chunk_size: int = 1000,
) -> InvertedIndex:
    """Build an index by inverting fixed-size chunks and merging.

    Accepts any iterable of records (e.g. a lazy FASTA reader), so the
    whole collection never needs to be materialised twice.

    Raises:
        IndexParameterError: if ``chunk_size`` < 1 or the collection is
            empty.
    """
    if chunk_size < 1:
        raise IndexParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    if params is None:
        params = IndexParameters()
    parts = [
        build_index(batch, params) for batch in _batches(records, chunk_size)
    ]
    if not parts:
        raise IndexParameterError("cannot index an empty collection")
    if len(parts) == 1:
        return parts[0]
    return merge_indexes(parts)

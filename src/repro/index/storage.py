"""On-disk index format.

The paper's system keeps its index on disk and reads posting lists on
demand; this module reproduces that arrangement.  Layout::

    magic "RPIX" | version u16 | header-length u32 | header JSON
    vocab-count u64 | vocabulary table | postings blob

The header JSON carries the index parameters and the collection's
identifiers/lengths.  The vocabulary table is a packed little-endian
record array — interval id, df, cf, blob offset, blob length — sorted
by interval id so lookups are a binary search over a numpy column.
:class:`DiskIndex` memory-maps the file and fetches each posting list
as a byte slice, never materialising the whole index.
"""

from __future__ import annotations

import json
import mmap
import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import IndexFormatError
from repro.index.builder import (
    CollectionInfo,
    IndexParameters,
    IndexReader,
    InvertedIndex,
    VocabEntry,
)

_MAGIC = b"RPIX"
_VERSION = 1
_PREFIX = struct.Struct("<4sHI")
_COUNT = struct.Struct("<Q")

#: interval id, df, cf, offset into blob, byte length of the list.
_VOCAB_DTYPE = np.dtype(
    [
        ("interval_id", "<u8"),
        ("df", "<u4"),
        ("cf", "<u8"),
        ("offset", "<u8"),
        ("length", "<u4"),
    ]
)


def write_index(index: InvertedIndex, path: str | Path) -> int:
    """Serialise an in-memory index; returns the bytes written."""
    header = json.dumps(
        {
            "params": index.params.describe(),
            "identifiers": list(index.collection.identifiers),
            "lengths": index.collection.lengths.tolist(),
        }
    ).encode("utf-8")

    entries = list(index.entries())
    table = np.empty(len(entries), dtype=_VOCAB_DTYPE)
    offset = 0
    for slot, entry in enumerate(entries):
        table[slot] = (
            entry.interval_id,
            entry.df,
            entry.cf,
            offset,
            len(entry.data),
        )
        offset += len(entry.data)

    with open(path, "wb") as handle:
        handle.write(_PREFIX.pack(_MAGIC, _VERSION, len(header)))
        handle.write(header)
        handle.write(_COUNT.pack(len(entries)))
        handle.write(table.tobytes())
        for entry in entries:
            handle.write(entry.data)
        return handle.tell()


class DiskIndex(IndexReader):
    """A read-only index backed by a memory-mapped file.

    Raises:
        IndexFormatError: if the file is not a valid index.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = open(self._path, "rb")
        try:
            self._map = mmap.mmap(
                self._handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as exc:
            self._handle.close()
            raise IndexFormatError(f"{self._path}: empty index file") from exc
        try:
            self._parse()
        except Exception:
            self.close()
            raise

    def _parse(self) -> None:
        view = self._map
        if len(view) < _PREFIX.size:
            raise IndexFormatError(f"{self._path}: truncated prefix")
        magic, version, header_length = _PREFIX.unpack_from(view, 0)
        if magic != _MAGIC:
            raise IndexFormatError(f"{self._path}: bad magic {magic!r}")
        if version != _VERSION:
            raise IndexFormatError(
                f"{self._path}: unsupported version {version}"
            )
        cursor = _PREFIX.size
        try:
            header = json.loads(view[cursor : cursor + header_length])
        except ValueError as exc:
            raise IndexFormatError(f"{self._path}: bad header JSON") from exc
        cursor += header_length
        self.params = IndexParameters.from_description(header["params"])
        self.collection = CollectionInfo(
            tuple(header["identifiers"]),
            np.array(header["lengths"], dtype=np.int64),
        )
        if cursor + _COUNT.size > len(view):
            raise IndexFormatError(f"{self._path}: truncated vocabulary count")
        (count,) = _COUNT.unpack_from(view, cursor)
        cursor += _COUNT.size
        table_bytes = count * _VOCAB_DTYPE.itemsize
        if cursor + table_bytes > len(view):
            raise IndexFormatError(f"{self._path}: truncated vocabulary")
        # Copy the (small) table out of the map so closing it is safe.
        self._table = np.frombuffer(
            view, dtype=_VOCAB_DTYPE, count=count, offset=cursor
        ).copy()
        self._blob_start = cursor + table_bytes
        blob_length = len(view) - self._blob_start
        ends = self._table["offset"].astype(np.int64) + self._table["length"]
        if count and int(ends.max(initial=0)) > blob_length:
            raise IndexFormatError(f"{self._path}: truncated postings blob")
        self._ids = self._table["interval_id"].astype(np.int64)
        if count and np.any(np.diff(self._ids) <= 0):
            raise IndexFormatError(
                f"{self._path}: vocabulary not strictly sorted"
            )

    def close(self) -> None:
        """Release the mapping and file handle."""
        if getattr(self, "_map", None) is not None:
            self._map.close()
            self._map = None  # type: ignore[assignment]
        if getattr(self, "_handle", None) is not None:
            self._handle.close()
            self._handle = None  # type: ignore[assignment]

    def __enter__(self) -> "DiskIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def lookup_entry(self, interval_id: int) -> VocabEntry | None:
        slot = int(np.searchsorted(self._ids, interval_id))
        if slot >= self._ids.shape[0] or self._ids[slot] != interval_id:
            return None
        row = self._table[slot]
        start = self._blob_start + int(row["offset"])
        data = bytes(self._map[start : start + int(row["length"])])
        return VocabEntry(interval_id, int(row["df"]), int(row["cf"]), data)

    def interval_ids(self) -> Iterator[int]:
        return iter(int(value) for value in self._ids)

    @property
    def vocabulary_size(self) -> int:
        return int(self._ids.shape[0])

    @property
    def pointer_count(self) -> int:
        return int(self._table["df"].sum())

    @property
    def compressed_bytes(self) -> int:
        return int(self._table["length"].sum())

    def to_memory(self) -> InvertedIndex:
        """Materialise the whole index in memory."""
        vocabulary = {}
        for slot in range(self._ids.shape[0]):
            entry = self.lookup_entry(int(self._ids[slot]))
            assert entry is not None
            vocabulary[entry.interval_id] = entry
        return InvertedIndex(self.params, self.collection, vocabulary)


def read_index(path: str | Path) -> DiskIndex:
    """Open an on-disk index for reading."""
    return DiskIndex(path)

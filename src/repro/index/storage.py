"""On-disk index format.

The paper's system keeps its index on disk and reads posting lists on
demand; this module reproduces that arrangement.  Format v2 layout::

    magic "RPIX" | version u16 | header-length u32 | header CRC32
    header JSON
    vocab-count u64 | vocab-table CRC32 | vocabulary table
    postings blob

The header JSON carries the index parameters and the collection's
identifiers/lengths.  The vocabulary table is a packed little-endian
record array — interval id, df, cf, blob offset, blob length, blob
CRC32 — sorted by interval id so lookups are a binary search over a
numpy column.  :class:`DiskIndex` memory-maps the file and fetches each
posting list as a byte slice, never materialising the whole index.

Integrity: the header and vocabulary-table checksums are verified
eagerly when the file is opened; each posting blob's checksum is
verified lazily the first time the list is fetched.  Any mismatch
raises :class:`repro.errors.CorruptionError`.  Format v1 files (no
checksums) still open read-only with a warning.  All writes go through
:func:`repro.index.atomic.atomic_write`, so a crash mid-write never
leaves a half-written index visible.
"""

from __future__ import annotations

import json
import mmap
import struct
import warnings
import zlib
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

import numpy as np

from repro.errors import CorruptionError, IndexFormatError
from repro.index.atomic import atomic_write
from repro.index.builder import (
    CollectionInfo,
    IndexParameters,
    IndexReader,
    InvertedIndex,
    VocabEntry,
)

_MAGIC = b"RPIX"
_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_PREFIX = struct.Struct("<4sHI")
_CRC = struct.Struct("<I")
_COUNT = struct.Struct("<Q")

#: v1 row: interval id, df, cf, offset into blob, byte length of the list.
_VOCAB_DTYPE_V1 = np.dtype(
    [
        ("interval_id", "<u8"),
        ("df", "<u4"),
        ("cf", "<u8"),
        ("offset", "<u8"),
        ("length", "<u4"),
    ]
)

#: v2 row: v1 fields plus the posting blob's CRC32.
_VOCAB_DTYPE = np.dtype(
    [
        ("interval_id", "<u8"),
        ("df", "<u4"),
        ("cf", "<u8"),
        ("offset", "<u8"),
        ("length", "<u4"),
        ("crc", "<u4"),
    ]
)


def _index_header(params: IndexParameters, collection: CollectionInfo) -> bytes:
    return json.dumps(
        {
            "params": params.describe(),
            "identifiers": list(collection.identifiers),
            "lengths": collection.lengths.tolist(),
        }
    ).encode("utf-8")


def write_index_stream(
    handle: BinaryIO,
    header: bytes,
    table: np.ndarray,
    blobs: Iterable[bytes],
    version: int = _VERSION,
) -> int:
    """Write a complete index file to an open binary handle.

    ``table`` must use :data:`_VOCAB_DTYPE` (the ``crc`` column is
    dropped when writing v1).  ``blobs`` supplies the postings blob as
    byte chunks, concatenated verbatim.  Returns the bytes written.
    Shared by :func:`write_index` and the streaming merge.
    """
    if version not in _SUPPORTED_VERSIONS:
        raise IndexFormatError(f"cannot write index version {version}")
    written = 0
    written += handle.write(_PREFIX.pack(_MAGIC, version, len(header)))
    if version >= 2:
        written += handle.write(_CRC.pack(zlib.crc32(header)))
    written += handle.write(header)
    written += handle.write(_COUNT.pack(len(table)))
    if version >= 2:
        table_bytes = np.ascontiguousarray(table, dtype=_VOCAB_DTYPE).tobytes()
    else:
        legacy = np.empty(len(table), dtype=_VOCAB_DTYPE_V1)
        for name in _VOCAB_DTYPE_V1.names:
            legacy[name] = table[name]
        table_bytes = legacy.tobytes()
    if version >= 2:
        written += handle.write(_CRC.pack(zlib.crc32(table_bytes)))
    written += handle.write(table_bytes)
    for chunk in blobs:
        written += handle.write(chunk)
    return written


def write_index(
    index: InvertedIndex, path: str | Path, version: int = _VERSION
) -> int:
    """Serialise an in-memory index atomically; returns the bytes written.

    ``version`` is exposed for compatibility testing only — new files
    should always be written at the current version.
    """
    header = _index_header(index.params, index.collection)
    entries = list(index.entries())
    table = np.empty(len(entries), dtype=_VOCAB_DTYPE)
    offset = 0
    for slot, entry in enumerate(entries):
        table[slot] = (
            entry.interval_id,
            entry.df,
            entry.cf,
            offset,
            len(entry.data),
            zlib.crc32(entry.data),
        )
        offset += len(entry.data)

    with atomic_write(path) as handle:
        return write_index_stream(
            handle, header, table, (entry.data for entry in entries), version
        )


class DiskIndex(IndexReader):
    """A read-only index backed by a memory-mapped file.

    Opening verifies the header and vocabulary-table checksums (format
    v2); each posting blob is verified lazily on first access.

    Raises:
        IndexFormatError: if the file is not a valid index.
        CorruptionError: if an integrity check fails.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = open(self._path, "rb")
        try:
            self._map = mmap.mmap(
                self._handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as exc:
            self._handle.close()
            raise IndexFormatError(f"{self._path}: empty index file") from exc
        try:
            self._parse()
        except Exception:
            self.close()
            raise

    def _parse(self) -> None:
        view = self._map
        if len(view) < _PREFIX.size:
            raise CorruptionError(
                f"{self._path}: truncated prefix", section="prefix"
            )
        magic, version, header_length = _PREFIX.unpack_from(view, 0)
        if magic != _MAGIC:
            raise IndexFormatError(f"{self._path}: bad magic {magic!r}")
        if version not in _SUPPORTED_VERSIONS:
            raise IndexFormatError(
                f"{self._path}: unsupported version {version}"
            )
        self.version = int(version)
        if self.version < 2:
            warnings.warn(
                f"{self._path}: format v1 index has no integrity data; "
                "checksums cannot be verified (rebuild to upgrade)",
                stacklevel=3,
            )
        cursor = _PREFIX.size
        header_crc = None
        if self.version >= 2:
            if cursor + _CRC.size > len(view):
                raise CorruptionError(
                    f"{self._path}: truncated header checksum",
                    section="header_crc",
                )
            (header_crc,) = _CRC.unpack_from(view, cursor)
            cursor += _CRC.size
        if cursor + header_length > len(view):
            raise CorruptionError(
                f"{self._path}: truncated header", section="header"
            )
        header_bytes = bytes(view[cursor : cursor + header_length])
        if header_crc is not None and zlib.crc32(header_bytes) != header_crc:
            raise CorruptionError(
                f"{self._path}: header fails checksum", section="header"
            )
        try:
            header = json.loads(header_bytes)
        except ValueError as exc:
            raise IndexFormatError(f"{self._path}: bad header JSON") from exc
        cursor += header_length
        self.params = IndexParameters.from_description(header["params"])
        self.collection = CollectionInfo(
            tuple(header["identifiers"]),
            np.array(header["lengths"], dtype=np.int64),
        )
        if cursor + _COUNT.size > len(view):
            raise CorruptionError(
                f"{self._path}: truncated vocabulary count", section="count"
            )
        (count,) = _COUNT.unpack_from(view, cursor)
        cursor += _COUNT.size
        table_crc = None
        if self.version >= 2:
            if cursor + _CRC.size > len(view):
                raise CorruptionError(
                    f"{self._path}: truncated vocabulary checksum",
                    section="table_crc",
                )
            (table_crc,) = _CRC.unpack_from(view, cursor)
            cursor += _CRC.size
        dtype = _VOCAB_DTYPE if self.version >= 2 else _VOCAB_DTYPE_V1
        table_bytes = count * dtype.itemsize
        if cursor + table_bytes > len(view):
            raise CorruptionError(
                f"{self._path}: truncated vocabulary", section="table"
            )
        if table_crc is not None and (
            zlib.crc32(view[cursor : cursor + table_bytes]) != table_crc
        ):
            raise CorruptionError(
                f"{self._path}: vocabulary table fails checksum",
                section="table",
            )
        # Copy the (small) table out of the map so closing it is safe.
        self._table = np.frombuffer(
            view, dtype=dtype, count=count, offset=cursor
        ).copy()
        self._blob_start = cursor + table_bytes
        blob_length = len(view) - self._blob_start
        ends = self._table["offset"].astype(np.int64) + self._table["length"]
        if count and int(ends.max(initial=0)) > blob_length:
            raise CorruptionError(
                f"{self._path}: truncated postings blob", section="blob"
            )
        self._ids = self._table["interval_id"].astype(np.int64)
        if count and np.any(np.diff(self._ids) <= 0):
            raise CorruptionError(
                f"{self._path}: vocabulary not strictly sorted",
                section="table",
            )
        if self.version >= 2:
            self._crcs = self._table["crc"]
            self._blob_verified = np.zeros(count, dtype=bool)
        else:
            self._crcs = None
            self._blob_verified = None

    def close(self) -> None:
        """Release the mapping and file handle."""
        if getattr(self, "_map", None) is not None:
            self._map.close()
            self._map = None  # type: ignore[assignment]
        if getattr(self, "_handle", None) is not None:
            self._handle.close()
            self._handle = None  # type: ignore[assignment]

    def __enter__(self) -> "DiskIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _fetch_blob(self, slot: int) -> bytes:
        row = self._table[slot]
        start = self._blob_start + int(row["offset"])
        data = bytes(self._map[start : start + int(row["length"])])
        if self._crcs is not None and not self._blob_verified[slot]:
            if zlib.crc32(data) != int(self._crcs[slot]):
                interval = int(self._ids[slot])
                raise CorruptionError(
                    f"{self._path}: posting list for interval {interval} "
                    "fails checksum",
                    interval_id=interval,
                    section="blob",
                )
            self._blob_verified[slot] = True
        return data

    def lookup_entry(self, interval_id: int) -> VocabEntry | None:
        slot = int(np.searchsorted(self._ids, interval_id))
        if slot >= self._ids.shape[0] or self._ids[slot] != interval_id:
            return None
        row = self._table[slot]
        data = self._fetch_blob(slot)
        return VocabEntry(interval_id, int(row["df"]), int(row["cf"]), data)

    def interval_ids(self) -> Iterator[int]:
        return iter(int(value) for value in self._ids)

    @property
    def vocabulary_size(self) -> int:
        return int(self._ids.shape[0])

    @property
    def pointer_count(self) -> int:
        return int(self._table["df"].sum())

    @property
    def compressed_bytes(self) -> int:
        return int(self._table["length"].sum())

    def verify(self) -> list[str]:
        """Check every posting blob's checksum; returns the problems.

        An empty list means the file is fully intact.  Format v1 files
        report a single note that no integrity data exists.
        """
        if self._crcs is None:
            return [
                f"{self._path}: format v1 has no integrity data; "
                "cannot verify posting lists"
            ]
        issues: list[str] = []
        for slot in range(self._ids.shape[0]):
            try:
                self._fetch_blob(slot)
            except CorruptionError as exc:
                issues.append(str(exc))
        return issues

    def to_memory(self) -> InvertedIndex:
        """Materialise the whole index in memory."""
        vocabulary = {}
        for slot in range(self._ids.shape[0]):
            entry = self.lookup_entry(int(self._ids[slot]))
            assert entry is not None
            vocabulary[entry.interval_id] = entry
        return InvertedIndex(self.params, self.collection, vocabulary)


def read_index(path: str | Path) -> DiskIndex:
    """Open an on-disk index for reading."""
    return DiskIndex(path)

"""Index space accounting — the quantities the E1/E2/E6 tables report.

Sizes are reported both absolutely and relative to the collection, the
form the paper uses ("index size held to an acceptable level" means an
acceptable *fraction* of the data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.builder import IndexReader

#: Bytes an uncompressed pointer costs: a 4-byte ordinal, a 4-byte
#: count, and 4 bytes per offset is the flat record the compressed
#: layout is measured against.
UNCOMPRESSED_DOC_BYTES = 8
UNCOMPRESSED_POSITION_BYTES = 4


@dataclass(frozen=True)
class IndexStatistics:
    """Aggregate size/shape measurements of one index."""

    interval_length: int
    stride: int
    vocabulary_size: int
    pointer_count: int
    occurrence_count: int
    compressed_bytes: int
    collection_sequences: int
    collection_bases: int
    df_quantiles: tuple[int, int, int]  # 50th / 90th / 99th percentile df

    @property
    def bits_per_pointer(self) -> float:
        """Compressed bits per sequence pointer."""
        if not self.pointer_count:
            return 0.0
        return 8.0 * self.compressed_bytes / self.pointer_count

    @property
    def uncompressed_bytes(self) -> int:
        """Flat-record size of the same index, for the compression ratio."""
        return (
            self.pointer_count * UNCOMPRESSED_DOC_BYTES
            + self.occurrence_count * UNCOMPRESSED_POSITION_BYTES
        )

    @property
    def compression_ratio(self) -> float:
        """Uncompressed over compressed size (higher is better)."""
        if not self.compressed_bytes:
            return 0.0
        return self.uncompressed_bytes / self.compressed_bytes

    @property
    def index_to_collection_ratio(self) -> float:
        """Compressed index bytes per collection base."""
        if not self.collection_bases:
            return 0.0
        return self.compressed_bytes / self.collection_bases


def collect_statistics(index: IndexReader) -> IndexStatistics:
    """Measure an index (either in-memory or on-disk)."""
    dfs = []
    occurrences = 0
    compressed = 0
    for interval_id in index.interval_ids():
        entry = index.lookup_entry(interval_id)
        assert entry is not None
        dfs.append(entry.df)
        occurrences += entry.cf
        compressed += len(entry.data)
    df_array = np.array(dfs, dtype=np.int64) if dfs else np.zeros(1, np.int64)
    quantiles = tuple(
        int(np.percentile(df_array, q)) for q in (50, 90, 99)
    )
    return IndexStatistics(
        interval_length=index.params.interval_length,
        stride=index.params.stride,
        vocabulary_size=len(dfs),
        pointer_count=int(sum(dfs)),
        occurrence_count=int(occurrences),
        compressed_bytes=int(compressed),
        collection_sequences=index.collection.num_sequences,
        collection_bases=index.collection.total_length,
        df_quantiles=quantiles,  # type: ignore[arg-type]
    )

"""Compressed posting lists.

A posting list for one interval records, per sequence containing it,
the sequence ordinal, the within-sequence occurrence count, and the
occurrence offsets.  The on-the-wire layout is two sections:

* **section A** — per sequence, interleaved: the sequence-ordinal gap
  and ``count - 1``;
* **section B** — the offset gaps, sequence by sequence.

Coarse ranking only needs section A, so splitting the sections lets it
stop decoding before the (larger) offset data — the positions are only
read by the diagonal-scoring accumulator and the fine search.

Codecs are pluggable by name.  Golomb parameters are *derived, not
stored*: both encoder and decoder compute them from (df, cf) and the
collection statistics with the same rule, which is how the paper avoids
spending space on per-list parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression import fastunpack
from repro.compression.bitio import BitReader, BitWriter
from repro.compression.golomb import GolombCodec, optimal_golomb_parameter
from repro.compression.integer import IntegerCodec, make_codec
from repro.errors import CodecError, CodecValueError


@dataclass(frozen=True)
class PostingsContext:
    """Collection-level statistics every list codec derivation needs.

    Attributes:
        num_sequences: sequences in the collection (document universe).
        total_length: total bases in the collection.
    """

    num_sequences: int
    total_length: int

    @property
    def mean_length(self) -> float:
        """Mean sequence length (1.0 floor to keep derivations sane)."""
        if self.num_sequences <= 0:
            return 1.0
        return max(1.0, self.total_length / self.num_sequences)


@dataclass(frozen=True)
class PostingEntry:
    """One sequence's occurrences of one interval."""

    sequence: int
    positions: np.ndarray

    @property
    def count(self) -> int:
        return int(self.positions.shape[0])


class PostingsCodec:
    """Encodes/decodes posting lists with pluggable integer codes.

    Args:
        doc_codec: codec name for sequence-ordinal gaps ("golomb" uses
            the Bernoulli-derived per-list parameter).
        count_codec: codec name for the count field.
        position_codec: codec name for offset gaps (same Golomb rule).
        include_positions: when False section B is omitted entirely and
            the index stores only ordinals and counts.

    Raises:
        CodecError: if a codec name is unknown.
    """

    def __init__(
        self,
        doc_codec: str = "golomb",
        count_codec: str = "gamma",
        position_codec: str = "golomb",
        include_positions: bool = True,
    ) -> None:
        self.doc_codec_name = doc_codec
        self.count_codec_name = count_codec
        self.position_codec_name = position_codec
        self.include_positions = include_positions
        # Non-parameterised codecs are stateless; build them once.
        self._count_codec = make_codec(count_codec)
        self._doc_codec_static = (
            None if doc_codec == "golomb" else make_codec(doc_codec)
        )
        self._position_codec_static = (
            None if position_codec == "golomb" else make_codec(position_codec)
        )
        # Derived-parameter memo, one table per universe size (the
        # parameter depends only on df and the collection size).
        self._doc_param_tables: dict[int, np.ndarray] = {}

    def _doc_codec(self, df: int, context: PostingsContext) -> IntegerCodec:
        if self._doc_codec_static is not None:
            return self._doc_codec_static
        return GolombCodec(self._doc_parameter(df, context))

    def _doc_parameter(self, df: int, context: PostingsContext) -> int:
        """The derived document-gap Golomb parameter for one list."""
        return optimal_golomb_parameter(
            max(df, 1), max(context.num_sequences, 1)
        )

    def _doc_parameters(
        self, dfs: np.ndarray, context: PostingsContext
    ) -> np.ndarray:
        """Per-list document-gap parameters, via a memo table.

        The table is filled by the scalar rule itself (not a vectorised
        transcendental, whose last-ulp differences from libm could flip
        a ``ceil`` at a boundary and silently desynchronise decoder and
        encoder), so batch decodes see exactly the per-list parameters.
        """
        universe = max(context.num_sequences, 1)
        max_df = int(dfs.max()) if dfs.shape[0] else 0
        table = self._doc_param_tables.get(universe)
        if table is None or table.shape[0] <= max_df:
            size = max(max_df + 1, 64)
            table = np.fromiter(
                (
                    optimal_golomb_parameter(max(df, 1), universe)
                    for df in range(size)
                ),
                dtype=np.int64,
                count=size,
            )
            self._doc_param_tables[universe] = table
        return table[dfs]

    def _fast_decodable(self) -> bool:
        """Whether the block-decode tier applies: the default codec
        configuration (Golomb gaps, gamma counts, Golomb offsets) with
        a tier above the pure-Python floor."""
        return (
            self.doc_codec_name == "golomb"
            and self.count_codec_name == "gamma"
            and (not self.include_positions
                 or self.position_codec_name == "golomb")
            and fastunpack.active_tier() != "python"
        )

    def _position_codec(
        self, df: int, cf: int, context: PostingsContext
    ) -> IntegerCodec:
        if self._position_codec_static is not None:
            return self._position_codec_static
        return GolombCodec(self._position_parameter(df, cf, context))

    def _position_parameter(
        self, df: int, cf: int, context: PostingsContext
    ) -> int:
        """The derived offset-gap Golomb parameter for one list."""
        per_sequence = max(1, round(cf / max(df, 1)))
        return optimal_golomb_parameter(
            per_sequence, round(context.mean_length)
        )

    def encode(
        self, entries: list[PostingEntry], context: PostingsContext
    ) -> bytes:
        """Compress a posting list (entries must be ordinal-sorted).

        Uses the vectorised packer when the codec configuration allows
        (Golomb gaps + gamma counts, the default); the scalar writer is
        the fallback and the behavioural reference — both produce
        bit-identical output.

        Raises:
            CodecError: if entries are unsorted or a count is zero.
        """
        df = len(entries)
        cf = sum(entry.count for entry in entries)
        doc_codec = self._doc_codec(df, context)
        position_codec = self._position_codec(df, cf, context)

        if (
            df
            and self.doc_codec_name == "golomb"
            and self.count_codec_name == "gamma"
            and (not self.include_positions
                 or self.position_codec_name == "golomb")
        ):
            fast = self._encode_vectorised(
                entries, doc_codec, position_codec
            )
            if fast is not None:
                return fast

        writer = BitWriter()
        previous_doc = -1
        for entry in entries:
            if entry.sequence <= previous_doc:
                raise CodecError(
                    "posting entries must be strictly ordinal-sorted"
                )
            if entry.count == 0:
                raise CodecError("posting entry with zero occurrences")
            doc_codec.encode_value(writer, entry.sequence - previous_doc - 1)
            self._count_codec.encode_value(writer, entry.count - 1)
            previous_doc = entry.sequence
        if self.include_positions:
            for entry in entries:
                previous_position = -1
                for position in entry.positions:
                    position_codec.encode_value(
                        writer, int(position) - previous_position - 1
                    )
                    previous_position = int(position)
        return writer.getvalue()

    def _encode_vectorised(
        self,
        entries: list[PostingEntry],
        doc_codec: IntegerCodec,
        position_codec: IntegerCodec,
    ) -> bytes | None:
        """Array-at-a-time encoding; None when a code overflows the
        vector window (the caller then uses the scalar writer)."""
        from repro.compression.fastpack import (
            gamma_code_array,
            golomb_code_array,
            interleave_codes,
            pack_patterns,
        )

        docs = np.fromiter(
            (entry.sequence for entry in entries), dtype=np.int64,
            count=len(entries),
        )
        counts = np.fromiter(
            (entry.count for entry in entries), dtype=np.int64,
            count=len(entries),
        )
        if int(docs[0]) < 0 or (docs.shape[0] > 1
                                and int(np.diff(docs).min()) <= 0):
            raise CodecError("posting entries must be strictly ordinal-sorted")
        if int(counts.min()) < 1:
            raise CodecError("posting entry with zero occurrences")

        doc_gaps = np.empty_like(docs)
        doc_gaps[0] = docs[0]
        doc_gaps[1:] = np.diff(docs) - 1
        assert isinstance(doc_codec, GolombCodec)
        doc_patterns, doc_lengths, doc_overflow = golomb_code_array(
            doc_gaps, doc_codec.parameter
        )
        if bool(doc_overflow.any()):
            return None
        try:
            count_patterns, count_lengths = gamma_code_array(counts - 1)
        except CodecValueError:
            return None  # absurd count; the scalar writer handles it
        patterns, lengths = interleave_codes(
            (doc_patterns, doc_lengths), (count_patterns, count_lengths)
        )

        if self.include_positions:
            all_positions = np.concatenate(
                [entry.positions for entry in entries]
            ).astype(np.int64)
            previous = np.empty_like(all_positions)
            previous[1:] = all_positions[:-1]
            starts = np.zeros(all_positions.shape[0], dtype=bool)
            starts[np.cumsum(counts[:-1])] = True
            starts[0] = True
            previous[starts] = -1
            position_gaps = all_positions - previous - 1
            assert isinstance(position_codec, GolombCodec)
            pos_patterns, pos_lengths, pos_overflow = golomb_code_array(
                position_gaps, position_codec.parameter
            )
            if bool(pos_overflow.any()):
                return None
            patterns = np.concatenate([patterns, pos_patterns])
            lengths = np.concatenate([lengths, pos_lengths])
        return pack_patterns(patterns, lengths)

    def decode_docs_counts(
        self, data: bytes, df: int, context: PostingsContext
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode section A only: (ordinals, counts) as int64 arrays.

        Runs on the active kernel tier (see docs/KERNELS.md) when the
        codec configuration allows; every tier is bit-identical to the
        scalar loop below, including the errors raised on bad data.

        A lone list only beats the scalar loop on the compiled tier —
        the numpy tier pays its dispatch cost per *batch*, so it serves
        :meth:`decode_docs_counts_batch` instead.
        """
        if self._fast_decodable() and fastunpack.active_tier() == "numba":
            return fastunpack.decode_docs_counts(
                data, df, self._doc_parameter(df, context)
            )
        return self._decode_docs_counts_scalar(data, df, context)

    def decode_docs_counts_batch(
        self,
        blobs: list[bytes],
        dfs: list[int],
        context: PostingsContext,
        cfs: list[int] | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Section-A decode of many lists in one vectorised pass.

        One result per blob, in order.  Lists the block decoder cannot
        finish cleanly (overflow codes, truncation) are re-decoded with
        the scalar loop, so values and exceptions match the
        per-list path exactly.  Passing ``cfs`` (per-list occurrence
        totals) lets the block decoder clip each blob to its provable
        section-A bound and skip the offset section entirely.
        """
        decoded: list[tuple[np.ndarray, np.ndarray] | None]
        if self._fast_decodable() and blobs:
            dfs_array = np.asarray(dfs, dtype=np.int64)
            decoded = fastunpack.decode_docs_counts_batch(
                blobs,
                dfs_array,
                self._doc_parameters(dfs_array, context),
                None if cfs is None else np.asarray(cfs, dtype=np.int64),
                context.num_sequences,
            )
        else:
            decoded = [None] * len(blobs)
        return [
            result
            if result is not None
            else self._decode_docs_counts_scalar(blob, df, context)
            for blob, df, result in zip(blobs, dfs, decoded)
        ]

    def decode_docs_counts_flat(
        self,
        blobs: list[bytes],
        dfs: list[int],
        context: PostingsContext,
        cfs: list[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Section-A decode of many lists into flat lane-major arrays.

        Returns ``(docs, counts)`` int64 arrays concatenating every
        list's entries in request order (list ``i`` occupies
        ``cumsum(dfs)[i-1] : cumsum(dfs)[i]``).  On the vector tiers
        the whole batch decodes in one table build; lists the block
        decoder cannot finish are spliced through the scalar loop, so
        the values (and any exception) match the per-list path exactly.
        On the scalar floor this is just the per-list decode
        concatenated — same arrays, same order.
        """
        dfs_array = np.asarray(dfs, dtype=np.int64)
        total = int(dfs_array.sum()) if len(blobs) else 0
        if self._fast_decodable() and blobs and total:
            docs, counts, ok = fastunpack.decode_docs_counts_flat(
                blobs,
                dfs_array,
                self._doc_parameters(dfs_array, context),
                None if cfs is None else np.asarray(cfs, dtype=np.int64),
                context.num_sequences,
            )
            if not ok.all():
                first = np.cumsum(dfs_array) - dfs_array
                for slot in np.flatnonzero(~ok).tolist():
                    start = int(first[slot])
                    stop = start + int(dfs_array[slot])
                    d, c = self._decode_docs_counts_scalar(
                        blobs[slot], int(dfs_array[slot]), context
                    )
                    docs[start:stop] = d
                    counts[start:stop] = c
            return docs, counts
        docs = np.empty(total, dtype=np.int64)
        counts = np.empty(total, dtype=np.int64)
        start = 0
        for blob, df in zip(blobs, dfs):
            stop = start + int(df)
            d, c = self.decode_docs_counts(blob, int(df), context)
            docs[start:stop] = d
            counts[start:stop] = c
            start = stop
        return docs, counts

    def _decode_docs_counts_scalar(
        self, data: bytes, df: int, context: PostingsContext
    ) -> tuple[np.ndarray, np.ndarray]:
        """The pure-Python section-A reference decode."""
        doc_codec = self._doc_codec(df, context)
        reader = BitReader(data)
        docs = np.empty(df, dtype=np.int64)
        counts = np.empty(df, dtype=np.int64)
        previous_doc = -1
        for slot in range(df):
            previous_doc += doc_codec.decode_value(reader) + 1
            docs[slot] = previous_doc
            counts[slot] = self._count_codec.decode_value(reader) + 1
        return docs, counts

    def decode(
        self, data: bytes, df: int, cf: int, context: PostingsContext
    ) -> list[PostingEntry]:
        """Decode the full list including occurrence offsets.

        Raises:
            CodecError: if the codec was built without positions.
        """
        if not self.include_positions:
            raise CodecError("this index stores no occurrence offsets")
        doc_codec = self._doc_codec(df, context)
        position_codec = self._position_codec(df, cf, context)
        reader = BitReader(data)
        docs = np.empty(df, dtype=np.int64)
        counts = np.empty(df, dtype=np.int64)
        previous_doc = -1
        for slot in range(df):
            previous_doc += doc_codec.decode_value(reader) + 1
            docs[slot] = previous_doc
            counts[slot] = self._count_codec.decode_value(reader) + 1
        entries = []
        for slot in range(df):
            previous_position = -1
            positions = np.empty(counts[slot], dtype=np.int64)
            for occurrence in range(int(counts[slot])):
                previous_position += position_codec.decode_value(reader) + 1
                positions[occurrence] = previous_position
            entries.append(PostingEntry(int(docs[slot]), positions))
        return entries

    def decode_batch(
        self,
        blobs: list[bytes],
        dfs: list[int],
        cfs: list[int],
        context: PostingsContext,
    ) -> list[list[PostingEntry]]:
        """Full decode (offsets included) of many lists at once.

        One result per blob, in order.  Lists the block decoder cannot
        finish cleanly are re-decoded with the scalar loop, so values
        and exceptions match :meth:`decode` exactly.
        """
        decoded: list[
            tuple[np.ndarray, np.ndarray, np.ndarray] | None
        ]
        if self._fast_decodable() and self.include_positions and blobs:
            doc_parameters = self._doc_parameters(
                np.asarray(dfs, dtype=np.int64), context
            )
            position_parameters = np.fromiter(
                (
                    self._position_parameter(df, cf, context)
                    for df, cf in zip(dfs, cfs)
                ),
                dtype=np.int64,
                count=len(dfs),
            )
            decoded = fastunpack.decode_postings_batch(
                blobs,
                np.asarray(dfs, dtype=np.int64),
                doc_parameters,
                position_parameters,
            )
        else:
            decoded = [None] * len(blobs)
        results: list[list[PostingEntry]] = []
        for blob, df, cf, fast in zip(blobs, dfs, cfs, decoded):
            if fast is None:
                results.append(self.decode(blob, df, cf, context))
                continue
            docs, counts, positions = fast
            results.append(
                [
                    PostingEntry(int(doc), chunk)
                    for doc, chunk in zip(
                        docs.tolist(),
                        np.split(positions, np.cumsum(counts)[:-1]),
                    )
                ]
            )
        return results

    def describe(self) -> dict[str, object]:
        """Codec configuration as a plain dict (for index headers)."""
        return {
            "doc_codec": self.doc_codec_name,
            "count_codec": self.count_codec_name,
            "position_codec": self.position_codec_name,
            "include_positions": self.include_positions,
        }

    @classmethod
    def from_description(cls, description: dict[str, object]) -> "PostingsCodec":
        """Rebuild a codec from :meth:`describe` output."""
        return cls(
            doc_codec=str(description["doc_codec"]),
            count_codec=str(description["count_codec"]),
            position_codec=str(description["position_codec"]),
            include_positions=bool(description["include_positions"]),
        )

"""Compressed posting lists.

A posting list for one interval records, per sequence containing it,
the sequence ordinal, the within-sequence occurrence count, and the
occurrence offsets.  The on-the-wire layout is two sections:

* **section A** — per sequence, interleaved: the sequence-ordinal gap
  and ``count - 1``;
* **section B** — the offset gaps, sequence by sequence.

Coarse ranking only needs section A, so splitting the sections lets it
stop decoding before the (larger) offset data — the positions are only
read by the diagonal-scoring accumulator and the fine search.

Codecs are pluggable by name.  Golomb parameters are *derived, not
stored*: both encoder and decoder compute them from (df, cf) and the
collection statistics with the same rule, which is how the paper avoids
spending space on per-list parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.golomb import GolombCodec, optimal_golomb_parameter
from repro.compression.integer import IntegerCodec, make_codec
from repro.errors import CodecError, CodecValueError


@dataclass(frozen=True)
class PostingsContext:
    """Collection-level statistics every list codec derivation needs.

    Attributes:
        num_sequences: sequences in the collection (document universe).
        total_length: total bases in the collection.
    """

    num_sequences: int
    total_length: int

    @property
    def mean_length(self) -> float:
        """Mean sequence length (1.0 floor to keep derivations sane)."""
        if self.num_sequences <= 0:
            return 1.0
        return max(1.0, self.total_length / self.num_sequences)


@dataclass(frozen=True)
class PostingEntry:
    """One sequence's occurrences of one interval."""

    sequence: int
    positions: np.ndarray

    @property
    def count(self) -> int:
        return int(self.positions.shape[0])


class PostingsCodec:
    """Encodes/decodes posting lists with pluggable integer codes.

    Args:
        doc_codec: codec name for sequence-ordinal gaps ("golomb" uses
            the Bernoulli-derived per-list parameter).
        count_codec: codec name for the count field.
        position_codec: codec name for offset gaps (same Golomb rule).
        include_positions: when False section B is omitted entirely and
            the index stores only ordinals and counts.

    Raises:
        CodecError: if a codec name is unknown.
    """

    def __init__(
        self,
        doc_codec: str = "golomb",
        count_codec: str = "gamma",
        position_codec: str = "golomb",
        include_positions: bool = True,
    ) -> None:
        self.doc_codec_name = doc_codec
        self.count_codec_name = count_codec
        self.position_codec_name = position_codec
        self.include_positions = include_positions
        # Non-parameterised codecs are stateless; build them once.
        self._count_codec = make_codec(count_codec)
        self._doc_codec_static = (
            None if doc_codec == "golomb" else make_codec(doc_codec)
        )
        self._position_codec_static = (
            None if position_codec == "golomb" else make_codec(position_codec)
        )

    def _doc_codec(self, df: int, context: PostingsContext) -> IntegerCodec:
        if self._doc_codec_static is not None:
            return self._doc_codec_static
        return GolombCodec(
            optimal_golomb_parameter(max(df, 1), max(context.num_sequences, 1))
        )

    def _position_codec(
        self, df: int, cf: int, context: PostingsContext
    ) -> IntegerCodec:
        if self._position_codec_static is not None:
            return self._position_codec_static
        per_sequence = max(1, round(cf / max(df, 1)))
        return GolombCodec(
            optimal_golomb_parameter(per_sequence, round(context.mean_length))
        )

    def encode(
        self, entries: list[PostingEntry], context: PostingsContext
    ) -> bytes:
        """Compress a posting list (entries must be ordinal-sorted).

        Uses the vectorised packer when the codec configuration allows
        (Golomb gaps + gamma counts, the default); the scalar writer is
        the fallback and the behavioural reference — both produce
        bit-identical output.

        Raises:
            CodecError: if entries are unsorted or a count is zero.
        """
        df = len(entries)
        cf = sum(entry.count for entry in entries)
        doc_codec = self._doc_codec(df, context)
        position_codec = self._position_codec(df, cf, context)

        if (
            df
            and self.doc_codec_name == "golomb"
            and self.count_codec_name == "gamma"
            and (not self.include_positions
                 or self.position_codec_name == "golomb")
        ):
            fast = self._encode_vectorised(
                entries, doc_codec, position_codec
            )
            if fast is not None:
                return fast

        writer = BitWriter()
        previous_doc = -1
        for entry in entries:
            if entry.sequence <= previous_doc:
                raise CodecError(
                    "posting entries must be strictly ordinal-sorted"
                )
            if entry.count == 0:
                raise CodecError("posting entry with zero occurrences")
            doc_codec.encode_value(writer, entry.sequence - previous_doc - 1)
            self._count_codec.encode_value(writer, entry.count - 1)
            previous_doc = entry.sequence
        if self.include_positions:
            for entry in entries:
                previous_position = -1
                for position in entry.positions:
                    position_codec.encode_value(
                        writer, int(position) - previous_position - 1
                    )
                    previous_position = int(position)
        return writer.getvalue()

    def _encode_vectorised(
        self,
        entries: list[PostingEntry],
        doc_codec: IntegerCodec,
        position_codec: IntegerCodec,
    ) -> bytes | None:
        """Array-at-a-time encoding; None when a code overflows the
        vector window (the caller then uses the scalar writer)."""
        from repro.compression.fastpack import (
            gamma_code_array,
            golomb_code_array,
            interleave_codes,
            pack_patterns,
        )

        docs = np.fromiter(
            (entry.sequence for entry in entries), dtype=np.int64,
            count=len(entries),
        )
        counts = np.fromiter(
            (entry.count for entry in entries), dtype=np.int64,
            count=len(entries),
        )
        if int(docs[0]) < 0 or (docs.shape[0] > 1
                                and int(np.diff(docs).min()) <= 0):
            raise CodecError("posting entries must be strictly ordinal-sorted")
        if int(counts.min()) < 1:
            raise CodecError("posting entry with zero occurrences")

        doc_gaps = np.empty_like(docs)
        doc_gaps[0] = docs[0]
        doc_gaps[1:] = np.diff(docs) - 1
        assert isinstance(doc_codec, GolombCodec)
        doc_patterns, doc_lengths, doc_overflow = golomb_code_array(
            doc_gaps, doc_codec.parameter
        )
        if bool(doc_overflow.any()):
            return None
        try:
            count_patterns, count_lengths = gamma_code_array(counts - 1)
        except CodecValueError:
            return None  # absurd count; the scalar writer handles it
        patterns, lengths = interleave_codes(
            (doc_patterns, doc_lengths), (count_patterns, count_lengths)
        )

        if self.include_positions:
            all_positions = np.concatenate(
                [entry.positions for entry in entries]
            ).astype(np.int64)
            previous = np.empty_like(all_positions)
            previous[1:] = all_positions[:-1]
            starts = np.zeros(all_positions.shape[0], dtype=bool)
            starts[np.cumsum(counts[:-1])] = True
            starts[0] = True
            previous[starts] = -1
            position_gaps = all_positions - previous - 1
            assert isinstance(position_codec, GolombCodec)
            pos_patterns, pos_lengths, pos_overflow = golomb_code_array(
                position_gaps, position_codec.parameter
            )
            if bool(pos_overflow.any()):
                return None
            patterns = np.concatenate([patterns, pos_patterns])
            lengths = np.concatenate([lengths, pos_lengths])
        return pack_patterns(patterns, lengths)

    def decode_docs_counts(
        self, data: bytes, df: int, context: PostingsContext
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode section A only: (ordinals, counts) as int64 arrays."""
        doc_codec = self._doc_codec(df, context)
        reader = BitReader(data)
        docs = np.empty(df, dtype=np.int64)
        counts = np.empty(df, dtype=np.int64)
        previous_doc = -1
        for slot in range(df):
            previous_doc += doc_codec.decode_value(reader) + 1
            docs[slot] = previous_doc
            counts[slot] = self._count_codec.decode_value(reader) + 1
        return docs, counts

    def decode(
        self, data: bytes, df: int, cf: int, context: PostingsContext
    ) -> list[PostingEntry]:
        """Decode the full list including occurrence offsets.

        Raises:
            CodecError: if the codec was built without positions.
        """
        if not self.include_positions:
            raise CodecError("this index stores no occurrence offsets")
        doc_codec = self._doc_codec(df, context)
        position_codec = self._position_codec(df, cf, context)
        reader = BitReader(data)
        docs = np.empty(df, dtype=np.int64)
        counts = np.empty(df, dtype=np.int64)
        previous_doc = -1
        for slot in range(df):
            previous_doc += doc_codec.decode_value(reader) + 1
            docs[slot] = previous_doc
            counts[slot] = self._count_codec.decode_value(reader) + 1
        entries = []
        for slot in range(df):
            previous_position = -1
            positions = np.empty(counts[slot], dtype=np.int64)
            for occurrence in range(int(counts[slot])):
                previous_position += position_codec.decode_value(reader) + 1
                positions[occurrence] = previous_position
            entries.append(PostingEntry(int(docs[slot]), positions))
        return entries

    def describe(self) -> dict[str, object]:
        """Codec configuration as a plain dict (for index headers)."""
        return {
            "doc_codec": self.doc_codec_name,
            "count_codec": self.count_codec_name,
            "position_codec": self.position_codec_name,
            "include_positions": self.include_positions,
        }

    @classmethod
    def from_description(cls, description: dict[str, object]) -> "PostingsCodec":
        """Rebuild a codec from :meth:`describe` output."""
        return cls(
            doc_codec=str(description["doc_codec"]),
            count_codec=str(description["count_codec"]),
            position_codec=str(description["position_codec"]),
            include_positions=bool(description["include_positions"]),
        )

"""Interval (k-mer) inverted index: extraction, postings, storage."""

from repro.index.atomic import (
    atomic_write,
    file_crc32,
    write_bytes_atomic,
    write_text_atomic,
)
from repro.index.blocked import DEFAULT_BLOCK_SIZE, BlockedPostings
from repro.index.builder import (
    CollectionInfo,
    IndexParameters,
    IndexReader,
    InvertedIndex,
    VocabEntry,
    build_index,
)
from repro.index.intervals import (
    MAX_INTERVAL_LENGTH,
    IntervalExtractor,
    interval_id,
    interval_text,
)
from repro.index.merge import (
    append_sequences,
    build_index_chunked,
    merge_index_files,
    merge_indexes,
)
from repro.index.postings import PostingEntry, PostingsCodec, PostingsContext
from repro.index.statistics import IndexStatistics, collect_statistics
from repro.index.stopping import (
    StoppingReport,
    stop_above_frequency,
    stop_most_frequent,
)
from repro.index.storage import DiskIndex, read_index, write_index
from repro.index.store import (
    MemorySequenceSource,
    SequenceSource,
    SequenceStore,
    read_store,
    write_store,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "MAX_INTERVAL_LENGTH",
    "BlockedPostings",
    "CollectionInfo",
    "DiskIndex",
    "IndexParameters",
    "IndexReader",
    "IndexStatistics",
    "IntervalExtractor",
    "InvertedIndex",
    "MemorySequenceSource",
    "PostingEntry",
    "PostingsCodec",
    "PostingsContext",
    "SequenceSource",
    "SequenceStore",
    "StoppingReport",
    "VocabEntry",
    "append_sequences",
    "atomic_write",
    "build_index",
    "build_index_chunked",
    "collect_statistics",
    "file_crc32",
    "merge_index_files",
    "merge_indexes",
    "interval_id",
    "interval_text",
    "read_index",
    "read_store",
    "stop_above_frequency",
    "stop_most_frequent",
    "write_bytes_atomic",
    "write_index",
    "write_store",
    "write_text_atomic",
]

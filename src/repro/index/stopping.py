"""Index stopping: discarding the most frequent intervals.

High-frequency intervals (poly-A runs, low-complexity repeats) are the
bulk of the pointer volume but carry little discriminating power, so —
exactly as stop-words are dropped from text indexes — the paper's
system can discard them.  E6 measures the size/time/recall trade-off
this buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexParameterError
from repro.index.builder import InvertedIndex, VocabEntry


@dataclass(frozen=True)
class StoppingReport:
    """What a stopping pass removed.

    Attributes:
        dropped_intervals: vocabulary rows removed.
        dropped_pointers: sequence pointers removed with them.
        dropped_bytes: compressed posting bytes removed.
        threshold_cf: collection frequency at/above which rows were
            dropped (0 when nothing was dropped).
    """

    dropped_intervals: int
    dropped_pointers: int
    dropped_bytes: int
    threshold_cf: int


def stop_most_frequent(
    index: InvertedIndex, fraction: float
) -> tuple[InvertedIndex, StoppingReport]:
    """Drop the top ``fraction`` of vocabulary rows by collection frequency.

    Args:
        index: the index to stop (left untouched; a new one is returned).
        fraction: fraction of *vocabulary entries* to drop, 0 <= f < 1.

    Returns:
        The stopped index and a report of what was removed.

    Raises:
        IndexParameterError: if ``fraction`` is out of range.
    """
    if not 0.0 <= fraction < 1.0:
        raise IndexParameterError(
            f"stopping fraction must lie in [0, 1), got {fraction}"
        )
    entries = list(index.entries())
    drop_count = int(len(entries) * fraction)
    if drop_count == 0:
        return (
            index.replace_vocabulary(
                {entry.interval_id: entry for entry in entries}
            ),
            StoppingReport(0, 0, 0, 0),
        )
    by_frequency = sorted(entries, key=lambda entry: entry.cf, reverse=True)
    dropped = by_frequency[:drop_count]
    kept = by_frequency[drop_count:]
    report = StoppingReport(
        dropped_intervals=len(dropped),
        dropped_pointers=sum(entry.df for entry in dropped),
        dropped_bytes=sum(len(entry.data) for entry in dropped),
        threshold_cf=min(entry.cf for entry in dropped),
    )
    vocabulary = {entry.interval_id: entry for entry in kept}
    return index.replace_vocabulary(vocabulary), report


def stop_above_frequency(
    index: InvertedIndex, max_cf: int
) -> tuple[InvertedIndex, StoppingReport]:
    """Drop vocabulary rows whose collection frequency exceeds ``max_cf``.

    Raises:
        IndexParameterError: if ``max_cf`` is negative.
    """
    if max_cf < 0:
        raise IndexParameterError(f"max_cf must be >= 0, got {max_cf}")
    kept: dict[int, VocabEntry] = {}
    dropped_intervals = 0
    dropped_pointers = 0
    dropped_bytes = 0
    threshold = 0
    for entry in index.entries():
        if entry.cf > max_cf:
            dropped_intervals += 1
            dropped_pointers += entry.df
            dropped_bytes += len(entry.data)
            threshold = (
                entry.cf if not threshold else min(threshold, entry.cf)
            )
        else:
            kept[entry.interval_id] = entry
    report = StoppingReport(
        dropped_intervals, dropped_pointers, dropped_bytes, threshold
    )
    return index.replace_vocabulary(kept), report

"""Crash-safe file persistence shared by every on-disk writer.

A torn write must never leave a half-written index, store, or manifest
visible under its final name.  Every writer in the package therefore
funnels through :func:`atomic_write`:

1. write to a temporary file in the *same directory* as the target
   (so the final rename cannot cross filesystems);
2. flush and ``fsync`` the temporary file;
3. ``os.replace`` it over the target (atomic on POSIX);
4. ``fsync`` the containing directory so the rename itself is durable.

A crash at any point leaves either the old file or the new file — never
a mixture — and the orphaned temporary is unlinked on failure.

The OS entry points are bound to module attributes (``_replace``,
``_fsync``) so the fault-injection harness
(:mod:`repro.instrumentation.faults`) can simulate crashes at each
stage deterministically.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import zlib
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.errors import StorageError

# Patchable indirection for fault injection; see module docstring.
_replace = os.replace
_fsync = os.fsync


def _fsync_directory(directory: Path) -> None:
    """Flush a directory's metadata (the rename) to stable storage."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # some platforms/filesystems refuse directory handles
    try:
        _fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_write(path: str | Path) -> Iterator[BinaryIO]:
    """Context manager yielding a binary handle that lands atomically.

    The handle writes to a same-directory temporary file; on clean exit
    the data is fsynced and renamed over ``path``, and the directory is
    fsynced.  On any exception the temporary file is removed and the
    target is untouched.

    Raises:
        StorageError: if the temporary file cannot be created or the
            flush/rename sequence fails.
    """
    target = Path(path)
    try:
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name + ".", suffix=".tmp"
        )
    except OSError as exc:
        raise StorageError(
            f"cannot create temporary file next to {target}: {exc}"
        ) from exc
    handle = os.fdopen(fd, "wb")
    try:
        yield handle
        handle.flush()
        _fsync(handle.fileno())
        handle.close()
        _replace(tmp_name, target)
    except BaseException as exc:
        if not handle.closed:
            handle.close()
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        if isinstance(exc, OSError):
            raise StorageError(
                f"atomic write to {target} failed: {exc}"
            ) from exc
        raise
    _fsync_directory(target.parent)


def write_bytes_atomic(path: str | Path, data: bytes) -> int:
    """Atomically replace ``path`` with ``data``; returns bytes written."""
    with atomic_write(path) as handle:
        handle.write(data)
    return len(data)


def write_text_atomic(path: str | Path, text: str) -> int:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    return write_bytes_atomic(path, text.encode("utf-8"))


def file_crc32(path: str | Path, chunk_size: int = 1 << 20) -> int:
    """CRC32 of a whole file, streamed (the manifest's file digests)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF

"""Inverted-index construction and the in-memory index.

Building is a single vectorised pass: every (interval id, sequence
ordinal, offset) triple in the collection goes into three flat numpy
arrays, one lexicographic sort groups them, and each group is handed to
the postings codec.  This mirrors the sort-based inversion used for the
paper's on-disk indexes, scaled to in-memory collections.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence as TypingSequence

import numpy as np

from repro.errors import (
    CodecValueError,
    IndexLookupError,
    IndexParameterError,
)
from repro.index.intervals import IntervalExtractor
from repro.index.postings import PostingEntry, PostingsCodec, PostingsContext
from repro.instrumentation.instruments import NULL_INSTRUMENTS, coalesce
from repro.sequences.record import Sequence


@dataclass(frozen=True)
class IndexParameters:
    """Everything that determines an index's shape.

    Attributes:
        interval_length: the fixed substring (k-mer) length.
        stride: window stride; 1 = overlapping, interval_length =
            non-overlapping.
        doc_codec / count_codec / position_codec: integer-codec names
            for the three posting fields.
        include_positions: store occurrence offsets (needed for
            diagonal coarse scoring; drop for a smaller index).
    """

    interval_length: int = 8
    stride: int = 1
    doc_codec: str = "golomb"
    count_codec: str = "gamma"
    position_codec: str = "golomb"
    include_positions: bool = True

    def make_extractor(self) -> IntervalExtractor:
        """The extractor these parameters describe."""
        return IntervalExtractor(self.interval_length, self.stride)

    def make_codec(self) -> PostingsCodec:
        """The postings codec these parameters describe."""
        return PostingsCodec(
            doc_codec=self.doc_codec,
            count_codec=self.count_codec,
            position_codec=self.position_codec,
            include_positions=self.include_positions,
        )

    def describe(self) -> dict[str, object]:
        """Parameters as a plain dict (for index headers)."""
        return {
            "interval_length": self.interval_length,
            "stride": self.stride,
            "doc_codec": self.doc_codec,
            "count_codec": self.count_codec,
            "position_codec": self.position_codec,
            "include_positions": self.include_positions,
        }

    @classmethod
    def from_description(cls, description: dict[str, object]) -> "IndexParameters":
        """Rebuild parameters from :meth:`describe` output."""
        return cls(
            interval_length=int(description["interval_length"]),  # type: ignore[arg-type]
            stride=int(description["stride"]),  # type: ignore[arg-type]
            doc_codec=str(description["doc_codec"]),
            count_codec=str(description["count_codec"]),
            position_codec=str(description["position_codec"]),
            include_positions=bool(description["include_positions"]),
        )


@dataclass(frozen=True)
class CollectionInfo:
    """Identifiers and lengths of the indexed collection.

    This is the only collection knowledge the index itself retains; the
    residues live in a :class:`~repro.index.store.SequenceStore` (or in
    memory) and are touched only by the fine search.
    """

    identifiers: tuple[str, ...]
    lengths: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        lengths = np.ascontiguousarray(self.lengths, dtype=np.int64)
        lengths.setflags(write=False)
        object.__setattr__(self, "lengths", lengths)
        if len(self.identifiers) != int(lengths.shape[0]):
            raise IndexParameterError(
                "identifier and length counts disagree: "
                f"{len(self.identifiers)} vs {lengths.shape[0]}"
            )

    @classmethod
    def from_sequences(cls, sequences: TypingSequence[Sequence]) -> "CollectionInfo":
        return cls(
            tuple(record.identifier for record in sequences),
            np.array([len(record) for record in sequences], dtype=np.int64),
        )

    @property
    def num_sequences(self) -> int:
        return len(self.identifiers)

    @property
    def total_length(self) -> int:
        return int(self.lengths.sum())

    def context(self) -> PostingsContext:
        """The statistics the postings codec derives parameters from."""
        return PostingsContext(self.num_sequences, self.total_length)


@dataclass(frozen=True)
class VocabEntry:
    """One vocabulary row: an interval and its compressed posting list."""

    interval_id: int
    df: int  # sequences containing the interval
    cf: int  # total occurrences across the collection
    data: bytes = field(repr=False)


class IndexReader(ABC):
    """Common read API of the in-memory and on-disk indexes."""

    params: IndexParameters
    collection: CollectionInfo

    #: Which coarse backend this reader serves — engines dispatch their
    #: ranker on this attribute (see :mod:`repro.coarse_backends`).
    coarse_backend = "inverted"

    @abstractmethod
    def lookup_entry(self, interval_id: int) -> VocabEntry | None:
        """The vocabulary row for an interval, or None if absent."""

    @abstractmethod
    def interval_ids(self) -> Iterator[int]:
        """All indexed interval ids in ascending order."""

    @property
    @abstractmethod
    def vocabulary_size(self) -> int:
        """Number of distinct intervals indexed."""

    def __contains__(self, interval_id: int) -> bool:
        return self.lookup_entry(interval_id) is not None

    @property
    def instruments(self):
        """Observability sink (shared no-op until attached)."""
        return getattr(self, "_instruments", NULL_INSTRUMENTS)

    def set_instruments(self, instruments) -> None:
        """Attach an :class:`~repro.instrumentation.Instruments` sink.

        The reader reports decode-cache traffic
        (``index.decode_cache.hits`` / ``misses`` / ``evictions``) and
        section-A decode volume (``index.postings_decoded``).  Passing
        ``None`` detaches (reverts to the shared no-op).
        """
        self._instruments = coalesce(instruments)

    @property
    def codec(self) -> PostingsCodec:
        """The postings codec, built once and cached."""
        codec = getattr(self, "_codec_cache", None)
        if codec is None:
            codec = self.params.make_codec()
            self._codec_cache = codec
        return codec

    @property
    def context(self) -> PostingsContext:
        """The collection statistics context, built once and cached."""
        context = getattr(self, "_context_cache", None)
        if context is None:
            context = self.collection.context()
            self._context_cache = context
        return context

    def enable_decode_cache(self, max_entries: int = 4096) -> None:
        """Cache decoded section-A lists (hot intervals repeat across
        queries).  Off by default so timing experiments measure real
        decode work; long-running services should turn it on.

        Raises:
            IndexParameterError: if ``max_entries`` < 1.
        """
        if max_entries < 1:
            raise IndexParameterError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._decode_cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._decode_cache_limit = max_entries

    def disable_decode_cache(self) -> None:
        """Drop the decode cache (and stop caching)."""
        self._decode_cache = None
        self._decode_cache_limit = 0

    def docs_counts(
        self, interval_id: int, entry: VocabEntry | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Section-A decode: (sequence ordinals, counts), or None.

        Callers that already hold the interval's :class:`VocabEntry`
        pass it as ``entry`` to skip the second vocabulary lookup.
        """
        instruments = self.instruments
        cache = getattr(self, "_decode_cache", None)
        if cache is not None and interval_id in cache:
            cache.move_to_end(interval_id)
            instruments.count("index.decode_cache.hits")
            return cache[interval_id]
        if entry is None:
            entry = self.lookup_entry(interval_id)
        if entry is None:
            return None
        decoded = self.codec.decode_docs_counts(
            entry.data, entry.df, self.context
        )
        instruments.count("index.postings_decoded")
        if cache is not None:
            instruments.count("index.decode_cache.misses")
            cache[interval_id] = decoded
            if len(cache) > self._decode_cache_limit:
                cache.popitem(last=False)
                instruments.count("index.decode_cache.evictions")
        return decoded

    def docs_counts_batch(
        self, interval_ids: TypingSequence[int]
    ) -> list[tuple[VocabEntry, np.ndarray, np.ndarray] | None]:
        """Section-A decode of many intervals in one vectorised pass.

        One result per requested interval, in order: ``(entry, docs,
        counts)``, or ``None`` for intervals not in the vocabulary.
        Returning the resolved :class:`VocabEntry` alongside the decode
        means a scorer that needs per-list statistics (df for idf
        weighting) performs exactly one vocabulary lookup per interval.
        """
        entries = [self.lookup_entry(int(i)) for i in interval_ids]
        return self.docs_counts_from_entries(interval_ids, entries)

    def docs_counts_from_entries(
        self,
        interval_ids: TypingSequence[int],
        entries: TypingSequence[VocabEntry | None],
    ) -> list[tuple[VocabEntry, np.ndarray, np.ndarray] | None]:
        """:meth:`docs_counts_batch` given pre-resolved entries.

        The split exists for delegating views (quarantine, deadline)
        that must intercept the lookups but still want the wrapped
        reader's decode cache and batch decode.
        """
        if type(self).docs_counts is not IndexReader.docs_counts:
            # The batch is only a sound shortcut past docs_counts when
            # docs_counts is the stock implementation.  A subclass that
            # re-defines it (integrity guards, fault injection, extra
            # accounting) must see every read, so degrade to its
            # per-interval method.
            results = []
            for interval_id, entry in zip(interval_ids, entries):
                if entry is None:
                    results.append(None)
                    continue
                decoded = self.docs_counts(int(interval_id), entry)
                results.append(
                    None if decoded is None else (entry, *decoded)
                )
            return results
        instruments = self.instruments
        cache = getattr(self, "_decode_cache", None)
        results: list[tuple[VocabEntry, np.ndarray, np.ndarray] | None]
        results = [None] * len(entries)
        miss_slots: list[int] = []
        for slot, (interval_id, entry) in enumerate(
            zip(interval_ids, entries)
        ):
            if entry is None:
                continue
            if cache is not None and interval_id in cache:
                cache.move_to_end(interval_id)
                instruments.count("index.decode_cache.hits")
                docs, counts = cache[interval_id]
                results[slot] = (entry, docs, counts)
            else:
                miss_slots.append(slot)
        if not miss_slots:
            return results
        miss_entries = [entries[slot] for slot in miss_slots]
        decoded = self.codec.decode_docs_counts_batch(
            [entry.data for entry in miss_entries],
            [entry.df for entry in miss_entries],
            self.context,
            cfs=[entry.cf for entry in miss_entries],
        )
        instruments.count("index.postings_decoded", len(miss_slots))
        for slot, entry, (docs, counts) in zip(
            miss_slots, miss_entries, decoded
        ):
            results[slot] = (entry, docs, counts)
            if cache is not None:
                interval_id = interval_ids[slot]
                instruments.count("index.decode_cache.misses")
                cache[int(interval_id)] = (docs, counts)
                if len(cache) > self._decode_cache_limit:
                    cache.popitem(last=False)
                    instruments.count("index.decode_cache.evictions")
        return results

    def docs_counts_flat(
        self, interval_ids: TypingSequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Section-A decode of many intervals as flat lane-major arrays.

        Returns ``(lens, docs, counts)``: ``lens[i]`` is interval
        ``i``'s entry count (0 when the interval is absent — or yields
        no evidence, for delegating views), and ``docs``/``counts``
        concatenate the entries in request order, so interval ``i``
        occupies ``cumsum(lens)[i-1] : cumsum(lens)[i]``.  This is the
        zero-materialisation fast path for coarse scoring: one decode,
        one weighting, one accumulation for the whole batch.
        """
        if hasattr(interval_ids, "tolist"):
            interval_ids = interval_ids.tolist()
        entries = [self.lookup_entry(i) for i in interval_ids]
        return self.docs_counts_flat_from_entries(interval_ids, entries)

    def docs_counts_flat_from_entries(
        self,
        interval_ids: TypingSequence[int],
        entries: TypingSequence[VocabEntry | None],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`docs_counts_flat` given pre-resolved entries.

        Soundness mirrors :meth:`docs_counts_from_entries`: a subclass
        that re-defines :meth:`docs_counts`, or an enabled decode
        cache, routes through the per-interval method so every read is
        observed (and cached lists stay cached).
        """
        lens = np.zeros(len(entries), dtype=np.int64)
        cache = getattr(self, "_decode_cache", None)
        if (
            type(self).docs_counts is not IndexReader.docs_counts
            or cache is not None
        ):
            pieces: list[tuple[np.ndarray, np.ndarray]] = []
            for slot, (interval_id, entry) in enumerate(
                zip(interval_ids, entries)
            ):
                if entry is None:
                    continue
                decoded = self.docs_counts(int(interval_id), entry)
                if decoded is None:
                    continue
                lens[slot] = decoded[0].shape[0]
                pieces.append(decoded)
            if not pieces:
                empty = np.empty(0, dtype=np.int64)
                return lens, empty, empty
            return (
                lens,
                np.concatenate([docs for docs, _ in pieces]),
                np.concatenate([counts for _, counts in pieces]),
            )
        if None in entries:
            slots = [
                slot for slot, entry in enumerate(entries)
                if entry is not None
            ]
            present: TypingSequence[VocabEntry] = [
                entries[slot] for slot in slots
            ]
            present_dfs = [entry.df for entry in present]
            lens[slots] = present_dfs
        else:
            present = entries
            present_dfs = [entry.df for entry in present]
            lens[:] = present_dfs
        docs, counts = self.codec.decode_docs_counts_flat(
            [entry.data for entry in present],
            present_dfs,
            self.context,
            cfs=[entry.cf for entry in present],
        )
        self.instruments.count("index.postings_decoded", len(present))
        return lens, docs, counts

    def postings(
        self, interval_id: int, entry: VocabEntry | None = None
    ) -> list[PostingEntry]:
        """Full decode including occurrence offsets.

        Raises:
            IndexLookupError: if the interval is not in the vocabulary.
        """
        if entry is None:
            entry = self.lookup_entry(interval_id)
        if entry is None:
            raise IndexLookupError(f"interval {interval_id} not indexed")
        return self.codec.decode(entry.data, entry.df, entry.cf, self.context)

    def postings_batch(
        self, interval_ids: TypingSequence[int]
    ) -> list[list[PostingEntry] | None]:
        """Full decode (offsets included) of many intervals at once.

        One result per requested interval, in order; unlike
        :meth:`postings` an absent interval yields ``None`` rather than
        raising, so callers can fan a whole query out in one call.
        """
        entries = [self.lookup_entry(int(i)) for i in interval_ids]
        return self.postings_from_entries(interval_ids, entries)

    def postings_from_entries(
        self,
        interval_ids: TypingSequence[int],
        entries: TypingSequence[VocabEntry | None],
    ) -> list[list[PostingEntry] | None]:
        """:meth:`postings_batch` given pre-resolved entries."""
        if type(self).postings is not IndexReader.postings:
            # Same soundness rule as docs_counts_from_entries: a
            # subclass that re-defines the per-interval read must see
            # every read.
            return [
                None if entry is None
                else self.postings(int(interval_id), entry)
                for interval_id, entry in zip(interval_ids, entries)
            ]
        present = [
            slot for slot, entry in enumerate(entries) if entry is not None
        ]
        results: list[list[PostingEntry] | None] = [None] * len(entries)
        if not present:
            return results
        batch = self.codec.decode_batch(
            [entries[slot].data for slot in present],
            [entries[slot].df for slot in present],
            [entries[slot].cf for slot in present],
            self.context,
        )
        for slot, postings in zip(present, batch):
            results[slot] = postings
        return results

    @property
    def pointer_count(self) -> int:
        """Total postings (sequence pointers) across the vocabulary."""
        return sum(
            entry.df for entry in map(self.lookup_entry, self.interval_ids())
            if entry is not None
        )

    @property
    def compressed_bytes(self) -> int:
        """Total bytes of compressed posting data."""
        return sum(
            len(entry.data)
            for entry in map(self.lookup_entry, self.interval_ids())
            if entry is not None
        )


class InvertedIndex(IndexReader):
    """In-memory interval index: vocabulary dict over compressed lists."""

    def __init__(
        self,
        params: IndexParameters,
        collection: CollectionInfo,
        vocabulary: dict[int, VocabEntry],
    ) -> None:
        self.params = params
        self.collection = collection
        self._vocabulary = vocabulary

    def lookup_entry(self, interval_id: int) -> VocabEntry | None:
        return self._vocabulary.get(interval_id)

    def interval_ids(self) -> Iterator[int]:
        return iter(sorted(self._vocabulary))

    @property
    def vocabulary_size(self) -> int:
        return len(self._vocabulary)

    def entries(self) -> Iterator[VocabEntry]:
        """Vocabulary rows in ascending interval-id order."""
        for interval_id in sorted(self._vocabulary):
            yield self._vocabulary[interval_id]

    def replace_vocabulary(
        self, vocabulary: dict[int, VocabEntry]
    ) -> "InvertedIndex":
        """A new index sharing parameters/collection with new rows."""
        return InvertedIndex(self.params, self.collection, vocabulary)


def build_index(
    sequences: TypingSequence[Sequence],
    params: IndexParameters | None = None,
) -> InvertedIndex:
    """Index a collection of sequences.

    Args:
        sequences: the collection, in the ordinal order queries will
            report.
        params: index shape; defaults to overlapping length-8 intervals
            with Golomb/gamma/Golomb coding.

    Raises:
        IndexParameterError: if the collection is empty.
    """
    if params is None:
        params = IndexParameters()
    if not sequences:
        raise IndexParameterError("cannot index an empty collection")

    collection = CollectionInfo.from_sequences(sequences)
    extractor = params.make_extractor()
    codec = params.make_codec()
    context = collection.context()

    id_chunks: list[np.ndarray] = []
    doc_chunks: list[np.ndarray] = []
    position_chunks: list[np.ndarray] = []
    for ordinal, record in enumerate(sequences):
        ids, positions = extractor.extract(record.codes)
        if not ids.shape[0]:
            continue
        id_chunks.append(ids)
        doc_chunks.append(np.full(ids.shape[0], ordinal, dtype=np.int64))
        position_chunks.append(positions)

    vocabulary: dict[int, VocabEntry] = {}
    if id_chunks:
        all_ids = np.concatenate(id_chunks)
        all_docs = np.concatenate(doc_chunks)
        all_positions = np.concatenate(position_chunks)
        order = np.lexsort((all_positions, all_docs, all_ids))
        all_ids = all_ids[order]
        all_docs = all_docs[order]
        all_positions = all_positions[order]

        vocabulary = _bulk_encode_vocabulary(
            all_ids, all_docs, all_positions, params, context
        )
        if vocabulary is None:
            vocabulary = _loop_encode_vocabulary(
                all_ids, all_docs, all_positions, codec, context
            )
    return InvertedIndex(params, collection, vocabulary)


def _loop_encode_vocabulary(
    all_ids: np.ndarray,
    all_docs: np.ndarray,
    all_positions: np.ndarray,
    codec,
    context,
) -> dict[int, VocabEntry]:
    """Per-interval encoding loop — the reference path and the
    fallback for non-default codec configurations."""
    vocabulary: dict[int, VocabEntry] = {}
    unique_ids, id_starts = np.unique(all_ids, return_index=True)
    id_bounds = np.append(id_starts, all_ids.shape[0])
    for slot, interval in enumerate(unique_ids):
        lo, hi = int(id_bounds[slot]), int(id_bounds[slot + 1])
        docs = all_docs[lo:hi]
        positions = all_positions[lo:hi]
        unique_docs, doc_starts = np.unique(docs, return_index=True)
        doc_bounds = np.append(doc_starts, docs.shape[0])
        entries = [
            PostingEntry(
                int(unique_docs[i]),
                positions[int(doc_bounds[i]) : int(doc_bounds[i + 1])],
            )
            for i in range(unique_docs.shape[0])
        ]
        data = codec.encode(entries, context)
        vocabulary[int(interval)] = VocabEntry(
            int(interval), len(entries), hi - lo, data
        )
    return vocabulary


def _bulk_encode_vocabulary(
    all_ids: np.ndarray,
    all_docs: np.ndarray,
    all_positions: np.ndarray,
    params: IndexParameters,
    context,
) -> dict[int, VocabEntry] | None:
    """Whole-index vectorised encoding.

    Computes every posting list's gap codes in flat array passes and
    packs them into one buffer with per-interval byte alignment, so
    each interval's slice is bit-identical to encoding it alone.
    Returns None when the codec configuration has no vector path or a
    code overflows the vector window (both fall back to the loop).
    """
    if (
        params.doc_codec != "golomb"
        or params.count_codec != "gamma"
        or (params.include_positions and params.position_codec != "golomb")
    ):
        return None
    from repro.compression.fastpack import (
        gamma_code_array,
        golomb_code_array_multi,
        pack_grouped,
    )

    # --- entry level: one (interval, ordinal) pair per row -------------
    is_entry_start = np.empty(all_ids.shape[0], dtype=bool)
    is_entry_start[0] = True
    is_entry_start[1:] = (np.diff(all_ids) != 0) | (np.diff(all_docs) != 0)
    entry_starts = np.flatnonzero(is_entry_start)
    entry_ids = all_ids[entry_starts]
    entry_docs = all_docs[entry_starts]
    entry_counts = np.diff(np.append(entry_starts, all_ids.shape[0]))

    # --- interval level -------------------------------------------------
    is_interval_start = np.empty(entry_ids.shape[0], dtype=bool)
    is_interval_start[0] = True
    is_interval_start[1:] = np.diff(entry_ids) != 0
    interval_of_entry = np.cumsum(is_interval_start) - 1
    unique_ids = entry_ids[is_interval_start]
    num_intervals = unique_ids.shape[0]
    df = np.bincount(interval_of_entry, minlength=num_intervals)
    cf = np.bincount(
        interval_of_entry, weights=entry_counts, minlength=num_intervals
    ).astype(np.int64)

    # --- per-interval codec parameters (must match the scalar rule) ----
    num_sequences = max(context.num_sequences, 1)
    density = np.minimum(df / num_sequences, 1.0 - 1e-12)
    doc_parameters = np.maximum(
        1, np.ceil(np.log(2.0 - density) / -np.log1p(-density))
    ).astype(np.int64)

    # --- document gaps ---------------------------------------------------
    doc_gaps = np.empty_like(entry_docs)
    doc_gaps[0] = entry_docs[0]
    doc_gaps[1:] = entry_docs[1:] - entry_docs[:-1] - 1
    doc_gaps[is_interval_start] = entry_docs[is_interval_start]
    doc_patterns, doc_lengths, doc_overflow = golomb_code_array_multi(
        doc_gaps, doc_parameters[interval_of_entry]
    )
    if bool(doc_overflow.any()):
        return None
    try:
        count_patterns, count_lengths = gamma_code_array(entry_counts - 1)
    except CodecValueError:
        return None  # absurd count; the scalar loop handles it

    # --- occurrence gaps -------------------------------------------------
    if params.include_positions:
        occurrence_is_start = is_entry_start
        previous_positions = np.empty_like(all_positions)
        previous_positions[1:] = all_positions[:-1]
        previous_positions[occurrence_is_start] = -1
        position_gaps = all_positions - previous_positions - 1
        per_sequence = np.maximum(
            1, np.rint(cf / np.maximum(df, 1))
        ).astype(np.int64)
        mean_length = max(1, round(context.mean_length))
        pos_density = np.minimum(
            per_sequence / mean_length, 1.0 - 1e-12
        )
        position_parameters = np.maximum(
            1, np.ceil(np.log(2.0 - pos_density) / -np.log1p(-pos_density))
        ).astype(np.int64)
        interval_of_occurrence = (np.cumsum(is_entry_start) - 1)
        interval_of_occurrence = interval_of_entry[interval_of_occurrence]
        pos_patterns, pos_lengths, pos_overflow = golomb_code_array_multi(
            position_gaps, position_parameters[interval_of_occurrence]
        )
        if bool(pos_overflow.any()):
            return None
    else:
        pos_patterns = np.empty(0, dtype=np.uint64)
        pos_lengths = np.empty(0, dtype=np.int64)
        interval_of_occurrence = np.empty(0, dtype=np.int64)

    # --- assemble the global code order: per interval, section A
    #     (doc gap, count interleaved) then section B (offsets) --------
    codes_a = 2 * df
    codes_b = cf if params.include_positions else np.zeros_like(cf)
    interval_code_starts = np.zeros(num_intervals, dtype=np.int64)
    np.cumsum((codes_a + codes_b)[:-1], out=interval_code_starts[1:])

    entry_rank = np.arange(entry_ids.shape[0]) - np.repeat(
        np.flatnonzero(is_interval_start), df
    )
    doc_slots = interval_code_starts[interval_of_entry] + 2 * entry_rank
    count_slots = doc_slots + 1

    total_codes = int((codes_a + codes_b).sum())
    patterns = np.empty(total_codes, dtype=np.uint64)
    lengths = np.empty(total_codes, dtype=np.int64)
    group_ids = np.empty(total_codes, dtype=np.int64)
    patterns[doc_slots] = doc_patterns
    lengths[doc_slots] = doc_lengths
    group_ids[doc_slots] = interval_of_entry
    patterns[count_slots] = count_patterns
    lengths[count_slots] = count_lengths
    group_ids[count_slots] = interval_of_entry

    if params.include_positions and all_positions.shape[0]:
        # Rank of each occurrence within its interval: global index
        # minus the interval's first occurrence index.
        interval_first_occurrence = np.zeros(num_intervals, dtype=np.int64)
        occ_counts = np.bincount(
            interval_of_occurrence, minlength=num_intervals
        )
        np.cumsum(occ_counts[:-1], out=interval_first_occurrence[1:])
        occurrence_rank = (
            np.arange(all_positions.shape[0])
            - interval_first_occurrence[interval_of_occurrence]
        )
        pos_slots = (
            interval_code_starts[interval_of_occurrence]
            + codes_a[interval_of_occurrence]
            + occurrence_rank
        )
        patterns[pos_slots] = pos_patterns
        lengths[pos_slots] = pos_lengths
        group_ids[pos_slots] = interval_of_occurrence

    buffer, bounds = pack_grouped(patterns, lengths, group_ids)
    vocabulary: dict[int, VocabEntry] = {}
    for slot in range(num_intervals):
        interval = int(unique_ids[slot])
        vocabulary[interval] = VocabEntry(
            interval,
            int(df[slot]),
            int(cf[slot]),
            buffer[int(bounds[slot]) : int(bounds[slot + 1])],
        )
    return vocabulary


def index_sequences_from(
    records: Iterable[Sequence], params: IndexParameters | None = None
) -> InvertedIndex:
    """Convenience wrapper accepting any iterable of records."""
    return build_index(list(records), params)

"""Focused tests for Golomb/Rice coding and the parameter rule."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.golomb import (
    GolombCodec,
    RiceCodec,
    optimal_golomb_parameter,
)
from repro.errors import CodecValueError


class TestParameterRule:
    def test_dense_list_gets_small_parameter(self):
        assert optimal_golomb_parameter(900, 1000) == 1

    def test_sparse_list_gets_large_parameter(self):
        sparse = optimal_golomb_parameter(10, 1_000_000)
        dense = optimal_golomb_parameter(10, 100)
        assert sparse > dense
        assert sparse > 1000

    def test_half_density_classic_value(self):
        # p = 0.5 -> b = ceil(log(1.5)/ -log(0.5)) = ceil(0.585) = 1
        assert optimal_golomb_parameter(500, 1000) == 1

    def test_rule_tracks_mean_gap(self):
        # For small p the optimal b is about 0.69 * (universe/pointers).
        parameter = optimal_golomb_parameter(100, 100_000)
        assert 600 <= parameter <= 800

    def test_invalid_arguments(self):
        with pytest.raises(CodecValueError):
            optimal_golomb_parameter(0, 10)
        with pytest.raises(CodecValueError):
            optimal_golomb_parameter(10, 0)


class TestTruncatedBinary:
    @pytest.mark.parametrize("parameter", [1, 2, 3, 5, 6, 7, 8, 100, 257])
    def test_all_remainders_roundtrip(self, parameter):
        codec = GolombCodec(parameter)
        values = list(range(3 * parameter + 2))
        assert codec.decode_array(codec.encode_array(values), len(values)) == values

    def test_non_power_of_two_is_shorter_for_low_remainders(self):
        codec = GolombCodec(5)  # threshold 3: remainders 0-2 use 2 bits
        assert codec.code_length(0) < codec.code_length(3)

    def test_power_of_two_remainders_equal_length(self):
        codec = GolombCodec(8)
        lengths = {codec.code_length(value) for value in range(8)}
        assert len(lengths) == 1

    def test_parameter_one_is_unary(self):
        codec = GolombCodec(1)
        assert codec.code_length(4) == 5


class TestRice:
    def test_rice_is_power_of_two_golomb(self):
        rice = RiceCodec(3)
        golomb = GolombCodec(8)
        for value in range(50):
            assert rice.code_length(value) == golomb.code_length(value)

    def test_rice_rejects_negative_log(self):
        with pytest.raises(CodecValueError):
            RiceCodec(-1)

    def test_for_density_picks_nearby_power(self):
        golomb = GolombCodec.for_density(10, 10_000)
        rice = RiceCodec.for_density(10, 10_000)
        assert rice.parameter / 2 <= golomb.parameter <= rice.parameter * 2


class TestSpaceOptimality:
    """Golomb with the derived parameter beats Elias gamma on gap lists
    drawn from the matching Bernoulli model — the paper's observation."""

    @given(st.integers(min_value=0, max_value=2**31))
    def test_roundtrip_single_value_large(self, value):
        # A large parameter keeps the unary quotient short even for
        # values near 2**31 (tiny parameters would be pathologically
        # slow there, which is why the derivation rule scales b).
        codec = GolombCodec(1 << 24)
        assert codec.decode_array(codec.encode_array([value]), 1) == [value]

    def test_beats_gamma_on_geometric_gaps(self):
        import numpy as np

        from repro.compression.elias import EliasGammaCodec

        rng = np.random.default_rng(0)
        num_pointers, universe = 1000, 64_000
        gaps = rng.geometric(num_pointers / universe, size=num_pointers) - 1
        golomb = GolombCodec.for_density(num_pointers, universe)
        gamma = EliasGammaCodec()
        golomb_bits = golomb.encoded_bit_length(int(gap) for gap in gaps)
        gamma_bits = gamma.encoded_bit_length(int(gap) for gap in gaps)
        assert golomb_bits < gamma_bits

"""Unit tests for alignment significance statistics."""

import math

import numpy as np
import pytest

from repro.align.statistics import (
    GumbelParameters,
    annotate_evalues,
    calibrate_gapped,
    ungapped_lambda,
)
from repro.align.scoring import ScoringScheme
from repro.errors import AlignmentError
from repro.search.results import SearchHit


class TestUngappedLambda:
    def test_closed_form_plus_one_minus_one(self):
        """For +1/-1 uniform composition: e^lambda = 3, exactly."""
        lam = ungapped_lambda(ScoringScheme(match=1, mismatch=-1))
        assert lam == pytest.approx(math.log(3.0), abs=1e-9)

    def test_karlin_equation_is_satisfied(self):
        scheme = ScoringScheme(match=2, mismatch=-3)
        lam = ungapped_lambda(scheme)
        total = 0.25 * math.exp(lam * 2) + 0.75 * math.exp(lam * -3)
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_harsher_mismatch_raises_lambda(self):
        soft = ungapped_lambda(ScoringScheme(match=1, mismatch=-1))
        hard = ungapped_lambda(ScoringScheme(match=1, mismatch=-3))
        assert hard > soft

    def test_skewed_composition_changes_lambda(self):
        uniform = ungapped_lambda(ScoringScheme(), gc_content=0.5)
        skewed = ungapped_lambda(ScoringScheme(), gc_content=0.8)
        assert uniform != pytest.approx(skewed)

    def test_positive_expected_score_rejected(self):
        # match 3 / mismatch -1 under uniform composition: expectation 0.
        with pytest.raises(AlignmentError, match="negative"):
            ungapped_lambda(ScoringScheme(match=3, mismatch=-1))

    def test_gc_content_validation(self):
        with pytest.raises(AlignmentError):
            ungapped_lambda(ScoringScheme(), gc_content=0.0)


class TestGumbelParameters:
    def test_evalue_decreases_exponentially_in_score(self):
        params = GumbelParameters(lam=0.7, k=0.1)
        ratio = params.evalue(10, 100, 1000) / params.evalue(11, 100, 1000)
        assert ratio == pytest.approx(math.exp(0.7))

    def test_evalue_linear_in_search_space(self):
        params = GumbelParameters(lam=0.7, k=0.1)
        assert params.evalue(20, 100, 2000) == pytest.approx(
            2 * params.evalue(20, 100, 1000)
        )

    def test_pvalue_bounds(self):
        params = GumbelParameters(lam=0.7, k=0.1)
        assert 0.0 <= params.pvalue(40, 100, 1000) <= 1.0
        assert params.pvalue(1, 100, 10**6) == pytest.approx(1.0, abs=1e-3)

    def test_pvalue_close_to_evalue_when_small(self):
        params = GumbelParameters(lam=0.7, k=0.1)
        evalue = params.evalue(40, 100, 1000)
        assert params.pvalue(40, 100, 1000) == pytest.approx(evalue, rel=1e-2)

    def test_bit_score_is_monotone(self):
        params = GumbelParameters(lam=0.7, k=0.1)
        assert params.bit_score(30) > params.bit_score(20)


class TestCalibration:
    @pytest.fixture(scope="class")
    def params(self):
        return calibrate_gapped(
            ScoringScheme(), samples=50, query_length=100, target_length=400,
            seed=5,
        )

    def test_validation(self):
        with pytest.raises(AlignmentError):
            calibrate_gapped(ScoringScheme(), samples=5)
        with pytest.raises(AlignmentError):
            calibrate_gapped(ScoringScheme(), query_length=4)

    def test_parameters_are_positive(self, params):
        assert params.lam > 0
        assert params.k > 0

    def test_planted_match_is_significant(self, params):
        # A 150/150 exact match in a megabase collection.
        assert params.evalue(150, 150, 10**6) < 1e-6

    def test_chance_score_is_insignificant(self, params):
        """Scores at the level random alignments reach must get E-values
        no smaller than ~0.01 — the statistic separates signal from noise."""
        assert params.evalue(15, 150, 10**6) > 1e-2

    def test_deterministic_in_seed(self):
        first = calibrate_gapped(ScoringScheme(), samples=20, seed=3)
        second = calibrate_gapped(ScoringScheme(), samples=20, seed=3)
        assert first == second

    def test_lambda_below_ungapped_bound(self, params):
        """Gaps only add alignments, so gapped lambda cannot exceed the
        ungapped Karlin-Altschul lambda."""
        assert params.lam <= ungapped_lambda(ScoringScheme()) * 1.1


class TestAnnotate:
    def test_hits_paired_with_evalues(self):
        params = GumbelParameters(lam=0.7, k=0.1)
        hits = [
            SearchHit(0, "a", 50),
            SearchHit(1, "b", 20),
        ]
        annotated = annotate_evalues(hits, params, 100, 10_000)
        assert [hit for hit, _ in annotated] == hits
        assert annotated[0][1] < annotated[1][1]

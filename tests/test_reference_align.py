"""Unit tests for the scalar reference aligners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.reference import gotoh_score, smith_waterman_score
from repro.align.scoring import AffineScoringScheme, ScoringScheme
from repro.sequences import alphabet

short_codes = st.text(alphabet="ACGT", min_size=0, max_size=25).map(
    alphabet.encode
)


class TestSmithWaterman:
    def test_identical_sequences(self):
        codes = alphabet.encode("ACGTACGT")
        assert smith_waterman_score(codes, codes, ScoringScheme()) == 8

    def test_no_common_substring(self):
        assert (
            smith_waterman_score(
                alphabet.encode("AAAA"), alphabet.encode("TTTT"), ScoringScheme()
            )
            == 0
        )

    def test_known_value_with_gap(self):
        # ACGT vs ACT: align ACGT/AC-T -> 3 matches + 1 gap = 3*1 - 2 = 1,
        # or the ungapped AC (2). Optimum depends on penalties.
        scheme = ScoringScheme(match=1, mismatch=-1, gap=-2)
        score = smith_waterman_score(
            alphabet.encode("ACGT"), alphabet.encode("ACT"), scheme
        )
        assert score == 2

    def test_cheap_gap_changes_answer(self):
        scheme = ScoringScheme(match=2, mismatch=-2, gap=-1)
        score = smith_waterman_score(
            alphabet.encode("ACGT"), alphabet.encode("ACT"), scheme
        )
        assert score == 5  # ACGT / AC-T: 3 matches (6) - 1 gap

    def test_local_ignores_bad_flanks(self):
        scheme = ScoringScheme()
        query = alphabet.encode("TTTTACGTACGTTTTT")
        target = alphabet.encode("GGGGACGTACGGGGG")
        assert smith_waterman_score(query, target, scheme) >= 7


class TestGotoh:
    def test_equals_linear_when_affine_is_flat(self):
        """With open == extend the affine model is the linear model."""
        linear = ScoringScheme(match=1, mismatch=-1, gap=-2)
        affine = AffineScoringScheme(
            match=1, mismatch=-1, gap_open=-2, gap_extend=-2
        )
        for first, second in [
            ("ACGTACGT", "ACGGT"),
            ("TTTT", "TTAT"),
            ("GATTACA", "GATCACA"),
        ]:
            a = alphabet.encode(first)
            b = alphabet.encode(second)
            assert gotoh_score(a, b, affine) == smith_waterman_score(a, b, linear)

    @given(first=short_codes, second=short_codes)
    @settings(max_examples=60, deadline=None)
    def test_flat_affine_equals_linear_property(self, first, second):
        linear = ScoringScheme(match=2, mismatch=-3, gap=-4)
        affine = AffineScoringScheme(2, -3, gap_open=-4, gap_extend=-4)
        assert gotoh_score(first, second, affine) == smith_waterman_score(
            first, second, linear
        )

    def test_long_gaps_cheaper_under_affine(self):
        """One long gap should beat the linear model's per-base cost.

        Two 12-base exact segments separated by a 6-base insertion in
        the target: affine bridges (cost 4 + 5*1 = 9 < 12 gained), the
        linear model at -3/base does not (cost 18 > 12) and must settle
        for a single segment.
        """
        affine = AffineScoringScheme(1, -1, gap_open=-4, gap_extend=-1)
        linear = ScoringScheme(1, -1, gap=-3)
        first = "ACGTACGTACGT"
        second = "TGCATGCATGCA"
        query = alphabet.encode(first + second)
        target = alphabet.encode(first + "CCCCCC" + second)
        affine_score = gotoh_score(query, target, affine)
        linear_score = smith_waterman_score(query, target, linear)
        assert linear_score == 12
        assert affine_score == 24 - 9
        assert affine_score > linear_score

    @given(first=short_codes, second=short_codes)
    @settings(max_examples=60, deadline=None)
    def test_affine_never_negative(self, first, second):
        affine = AffineScoringScheme()
        assert gotoh_score(first, second, affine) >= 0

"""Unit and property tests for interval (k-mer) extraction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IndexParameterError
from repro.index.intervals import (
    MAX_INTERVAL_LENGTH,
    IntervalExtractor,
    interval_id,
    interval_text,
)
from repro.sequences import alphabet

base_text = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestPacking:
    def test_known_ids(self):
        assert interval_id("A") == 0
        assert interval_id("T") == 3
        assert interval_id("AA") == 0
        assert interval_id("AC") == 1
        assert interval_id("TT") == 15
        assert interval_id("CA") == 4

    def test_lowercase_accepted(self):
        assert interval_id("acg") == interval_id("ACG")

    def test_rejects_wildcards(self):
        with pytest.raises(IndexParameterError):
            interval_id("ACN")

    def test_rejects_empty_and_too_long(self):
        with pytest.raises(IndexParameterError):
            interval_id("")
        with pytest.raises(IndexParameterError):
            interval_id("A" * (MAX_INTERVAL_LENGTH + 1))

    def test_unpack_known(self):
        assert interval_text(0, 3) == "AAA"
        assert interval_text(63, 3) == "TTT"
        assert interval_text(interval_id("GATTACA"), 7) == "GATTACA"

    def test_unpack_range_check(self):
        with pytest.raises(IndexParameterError):
            interval_text(64, 3)
        with pytest.raises(IndexParameterError):
            interval_text(-1, 3)

    @given(st.text(alphabet="ACGT", min_size=1, max_size=MAX_INTERVAL_LENGTH))
    def test_pack_unpack_roundtrip(self, text):
        assert interval_text(interval_id(text), len(text)) == text


class TestExtractorValidation:
    def test_length_bounds(self):
        with pytest.raises(IndexParameterError):
            IntervalExtractor(0)
        with pytest.raises(IndexParameterError):
            IntervalExtractor(MAX_INTERVAL_LENGTH + 1)

    def test_stride_bounds(self):
        with pytest.raises(IndexParameterError):
            IntervalExtractor(4, stride=0)

    def test_vocabulary_limit(self):
        assert IntervalExtractor(8).vocabulary_limit == 4**8


class TestExtraction:
    def test_overlapping_positions(self):
        codes = alphabet.encode("ACGTAC")
        ids, positions = IntervalExtractor(4).extract(codes)
        assert positions.tolist() == [0, 1, 2]
        assert ids.tolist() == [
            interval_id("ACGT"),
            interval_id("CGTA"),
            interval_id("GTAC"),
        ]

    def test_non_overlapping_stride(self):
        codes = alphabet.encode("ACGTACGTAC")
        ids, positions = IntervalExtractor(4, stride=4).extract(codes)
        assert positions.tolist() == [0, 4]
        assert ids.tolist() == [interval_id("ACGT")] * 2

    def test_stride_two(self):
        codes = alphabet.encode("ACGTACG")
        _, positions = IntervalExtractor(3, stride=2).extract(codes)
        assert positions.tolist() == [0, 2, 4]

    def test_short_sequence_yields_nothing(self):
        ids, positions = IntervalExtractor(8).extract(alphabet.encode("ACGT"))
        assert ids.shape == (0,)
        assert positions.shape == (0,)

    def test_wildcard_windows_skipped(self):
        codes = alphabet.encode("ACGTNACGT")
        ids, positions = IntervalExtractor(4).extract(codes)
        assert positions.tolist() == [0, 5]
        assert ids.tolist() == [interval_id("ACGT")] * 2

    def test_all_wildcards_yields_nothing(self):
        ids, _ = IntervalExtractor(2).extract(alphabet.encode("NNNN"))
        assert ids.shape == (0,)

    def test_extract_distinct_sorted_unique(self):
        codes = alphabet.encode("AAAAA")
        distinct = IntervalExtractor(2).extract_distinct(codes)
        assert distinct.tolist() == [0]

    @given(base_text, st.integers(min_value=1, max_value=8))
    def test_ids_match_reference_packing(self, text, length):
        codes = alphabet.encode(text)
        ids, positions = IntervalExtractor(length).extract(codes)
        expected_count = max(0, len(text) - length + 1)
        assert ids.shape[0] == expected_count
        for packed, position in zip(ids, positions):
            window = text[int(position) : int(position) + length]
            assert interval_id(window) == int(packed)

    @given(base_text, st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6))
    def test_stride_is_subset_of_overlapping(self, text, length, stride):
        codes = alphabet.encode(text)
        all_ids, all_positions = IntervalExtractor(length).extract(codes)
        sub_ids, sub_positions = IntervalExtractor(length, stride).extract(codes)
        full = dict(zip(all_positions.tolist(), all_ids.tolist()))
        for packed, position in zip(sub_ids, sub_positions):
            assert position % stride == 0
            assert full[int(position)] == int(packed)

"""Unit tests for bounded-accumulator coarse ranking and disk merging."""

import numpy as np
import pytest

from repro.errors import IndexParameterError, SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.merge import merge_index_files
from repro.index.storage import read_index, write_index
from repro.search.coarse import CoarseRanker
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(131)
    return [
        Sequence(f"la{slot}", rng.integers(0, 4, 250, dtype=np.uint8))
        for slot in range(25)
    ]


@pytest.fixture(scope="module")
def index(records):
    return build_index(records, IndexParameters(interval_length=7))


class TestLimitedAccumulators:
    def test_validation(self, index):
        with pytest.raises(SearchError):
            CoarseRanker(index, max_accumulators=0)
        with pytest.raises(SearchError):
            CoarseRanker(index, max_accumulators=5, accumulator_policy="maybe")
        with pytest.raises(SearchError, match="count scorer"):
            CoarseRanker(index, scorer="diagonal", max_accumulators=5)

    def test_unbounded_limit_matches_plain_ranking(self, index, records):
        query = records[4].codes[:120]
        plain = CoarseRanker(index).rank(query, 10)
        bounded = CoarseRanker(
            index, max_accumulators=len(records) * 10
        ).rank(query, 10)
        assert [(c.ordinal, c.coarse_score) for c in plain] == [
            (c.ordinal, c.coarse_score) for c in bounded
        ]

    def test_tight_bound_keeps_the_strong_answer(self, index, records):
        query = records[9].codes[30:170]
        for policy in ("continue", "quit"):
            ranked = CoarseRanker(
                index, max_accumulators=4, accumulator_policy=policy
            ).rank(query, 3)
            assert ranked[0].ordinal == 9, policy

    def test_bound_limits_candidate_count(self, index, records):
        query = records[2].codes[:150]
        ranked = CoarseRanker(index, max_accumulators=6).rank(query, 100)
        assert len(ranked) <= 6

    def test_quit_scores_bounded_by_continue(self, index, records):
        """Quit stops earlier, so no sequence can score higher under it."""
        query = records[14].codes[:150]
        continue_scores = {
            c.ordinal: c.coarse_score
            for c in CoarseRanker(
                index, max_accumulators=6, accumulator_policy="continue"
            ).rank(query, 100)
        }
        quit_scores = {
            c.ordinal: c.coarse_score
            for c in CoarseRanker(
                index, max_accumulators=6, accumulator_policy="quit"
            ).rank(query, 100)
        }
        for ordinal, score in quit_scores.items():
            assert score <= continue_scores.get(ordinal, score)

    def test_rarest_first_processing_prefers_discriminating_evidence(self):
        # Collection where one interval is ubiquitous and one is unique.
        rng = np.random.default_rng(9)
        records = []
        for slot in range(12):
            codes = rng.integers(0, 4, 100, dtype=np.uint8)
            codes[:20] = 0  # shared poly-A block
            records.append(Sequence(f"q{slot}", codes))
        index = build_index(records, IndexParameters(interval_length=5))
        # Query = poly-A + sequence 3's unique suffix.
        query = np.concatenate(
            [np.zeros(20, dtype=np.uint8), records[3].codes[60:100]]
        )
        ranked = CoarseRanker(index, max_accumulators=3).rank(query, 3)
        assert ranked[0].ordinal == 3


class TestDiskMerge:
    def test_merged_file_equals_direct_build(self, records, tmp_path):
        params = IndexParameters(interval_length=7)
        first = tmp_path / "a.rpix"
        second = tmp_path / "b.rpix"
        output = tmp_path / "m.rpix"
        write_index(build_index(records[:10], params), first)
        write_index(build_index(records[10:], params), second)
        written = merge_index_files([str(first), str(second)], str(output))
        assert output.stat().st_size == written
        direct = build_index(records, params)
        with read_index(output) as merged:
            assert merged.vocabulary_size == direct.vocabulary_size
            assert merged.collection.identifiers == (
                direct.collection.identifiers
            )
            for interval in direct.interval_ids():
                ours = merged.lookup_entry(interval)
                theirs = direct.lookup_entry(interval)
                assert (ours.df, ours.cf, ours.data) == (
                    theirs.df, theirs.cf, theirs.data,
                )

    def test_three_way_disk_merge_searchable(self, records, tmp_path):
        from repro.index.store import MemorySequenceSource
        from repro.search.engine import PartitionedSearchEngine

        params = IndexParameters(interval_length=7)
        paths = []
        for slot, chunk in enumerate(
            (records[:8], records[8:16], records[16:])
        ):
            path = tmp_path / f"part{slot}.rpix"
            write_index(build_index(chunk, params), path)
            paths.append(str(path))
        output = tmp_path / "all.rpix"
        merge_index_files(paths, str(output))
        with read_index(output) as merged:
            engine = PartitionedSearchEngine(
                merged, MemorySequenceSource(records), coarse_cutoff=10
            )
            query = records[19].codes[50:200]
            assert engine.search(query).best().ordinal == 19

    def test_empty_path_list_rejected(self, tmp_path):
        with pytest.raises(IndexParameterError):
            merge_index_files([], str(tmp_path / "out.rpix"))

    def test_parameter_mismatch_rejected(self, records, tmp_path):
        first = tmp_path / "a.rpix"
        second = tmp_path / "b.rpix"
        write_index(
            build_index(records[:5], IndexParameters(interval_length=6)), first
        )
        write_index(
            build_index(records[5:], IndexParameters(interval_length=8)), second
        )
        with pytest.raises(IndexParameterError):
            merge_index_files(
                [str(first), str(second)], str(tmp_path / "out.rpix")
            )

    def test_positions_free_disk_merge(self, records, tmp_path):
        params = IndexParameters(interval_length=7, include_positions=False)
        first = tmp_path / "a.rpix"
        second = tmp_path / "b.rpix"
        write_index(build_index(records[:10], params), first)
        write_index(build_index(records[10:], params), second)
        output = tmp_path / "m.rpix"
        merge_index_files([str(first), str(second)], str(output))
        direct = build_index(records, params)
        with read_index(output) as merged:
            for interval in list(direct.interval_ids())[:200]:
                assert (
                    merged.lookup_entry(interval).data
                    == direct.lookup_entry(interval).data
                )

"""Integration tests: the invariants DESIGN.md promises, end to end."""

import numpy as np
import pytest

from repro.eval.ground_truth import compute_ground_truth
from repro.eval.metrics import recall_at
from repro.index.builder import IndexParameters, build_index
from repro.index.stopping import stop_most_frequent
from repro.index.storage import read_index, write_index
from repro.index.store import read_store, write_store
from repro.search.engine import PartitionedSearchEngine
from repro.search.exhaustive import ExhaustiveSearcher


class TestPartitionedEqualsExhaustive:
    """With cutoff = collection size, partitioned search must agree with
    the exhaustive scanner on every answer the index can reach."""

    def test_rankings_identical_for_index_reachable_answers(
        self, small_workload, small_index, small_source
    ):
        collection, queries = small_workload
        engine = PartitionedSearchEngine(
            small_index,
            small_source,
            coarse_cutoff=len(collection.sequences),
        )
        exhaustive = ExhaustiveSearcher(small_source, max_query_length=256)
        for case in queries:
            partitioned = engine.search(case.query, top_k=10)
            oracle = exhaustive.search(case.query, top_k=10)
            partitioned_scores = {
                hit.ordinal: hit.score for hit in partitioned.hits
            }
            # Every partitioned answer carries the true alignment score.
            for hit in oracle.hits:
                if hit.ordinal in partitioned_scores:
                    assert partitioned_scores[hit.ordinal] == hit.score
            # The top answer has index-visible evidence by construction
            # (the query is a window of it), so it must agree exactly.
            assert partitioned.best().ordinal == oracle.best().ordinal
            assert partitioned.best().score == oracle.best().score

    def test_fine_scores_equal_oracle_scores(
        self, small_workload, small_index, small_source
    ):
        collection, queries = small_workload
        engine = PartitionedSearchEngine(
            small_index,
            small_source,
            coarse_cutoff=len(collection.sequences),
        )
        exhaustive = ExhaustiveSearcher(small_source, max_query_length=256)
        truth = compute_ground_truth(
            exhaustive, [case.query for case in queries]
        )
        for case, entry in zip(queries, truth.truths):
            report = engine.search(case.query, top_k=20)
            for hit in report.hits:
                assert hit.score == int(entry.scores[hit.ordinal])


class TestRecallUnderPruning:
    def test_small_cutoff_retains_family_recall(
        self, small_workload, small_index, small_source
    ):
        _, queries = small_workload
        engine = PartitionedSearchEngine(
            small_index, small_source, coarse_cutoff=10
        )
        recalls = []
        for case in queries:
            report = engine.search(case.query, top_k=10)
            recalls.append(recall_at(report.ordinals(), case.relevant, 10))
        assert float(np.mean(recalls)) >= 0.75

    def test_stopped_index_still_answers(
        self, small_workload, small_index, small_source
    ):
        _, queries = small_workload
        stopped, report = stop_most_frequent(small_index, 0.02)
        assert report.dropped_intervals > 0
        engine = PartitionedSearchEngine(
            stopped, small_source, coarse_cutoff=10
        )
        found = 0
        for case in queries:
            hits = engine.search(case.query, top_k=10)
            if case.source_ordinal in hits.ordinals():
                found += 1
        assert found == len(queries)


class TestDiskPipeline:
    """The whole system survives a disk round trip (the paper's actual
    deployment shape: on-disk index + on-disk store)."""

    @pytest.fixture()
    def disk_paths(self, small_workload, small_index, tmp_path):
        collection, _ = small_workload
        index_path = tmp_path / "c.rpix"
        store_path = tmp_path / "c.rpsq"
        write_index(small_index, index_path)
        write_store(list(collection.sequences), store_path, coding="direct")
        return index_path, store_path

    def test_disk_engine_matches_memory_engine(
        self, small_workload, small_index, small_source, disk_paths
    ):
        _, queries = small_workload
        index_path, store_path = disk_paths
        memory_engine = PartitionedSearchEngine(
            small_index, small_source, coarse_cutoff=15
        )
        with read_index(index_path) as index, read_store(store_path) as store:
            disk_engine = PartitionedSearchEngine(
                index, store, coarse_cutoff=15
            )
            for case in queries:
                from_memory = memory_engine.search(case.query, top_k=5)
                from_disk = disk_engine.search(case.query, top_k=5)
                assert [
                    (hit.ordinal, hit.score) for hit in from_memory.hits
                ] == [(hit.ordinal, hit.score) for hit in from_disk.hits]

    def test_raw_and_direct_stores_agree(
        self, small_workload, small_index, tmp_path, disk_paths
    ):
        collection, queries = small_workload
        index_path, direct_path = disk_paths
        raw_path = tmp_path / "raw.rpsq"
        write_store(list(collection.sequences), raw_path, coding="raw")
        with read_index(index_path) as index, \
                read_store(direct_path) as direct, \
                read_store(raw_path) as raw:
            direct_engine = PartitionedSearchEngine(index, direct, coarse_cutoff=10)
            raw_engine = PartitionedSearchEngine(index, raw, coarse_cutoff=10)
            case = queries[0]
            assert [
                (h.ordinal, h.score)
                for h in direct_engine.search(case.query).hits
            ] == [
                (h.ordinal, h.score) for h in raw_engine.search(case.query).hits
            ]


class TestBaselineAgreement:
    """All four engines must agree on the easy part of the task: the
    query's own source sequence is the best answer."""

    def test_engines_agree_on_best_answer(self, small_workload, small_index, small_source):
        from repro.search.blast_like import BlastLikeSearcher
        from repro.search.fasta_like import FastaLikeSearcher

        collection, queries = small_workload
        records = list(collection.sequences)
        engines = {
            "partitioned": PartitionedSearchEngine(
                small_index, small_source, coarse_cutoff=20
            ),
            "exhaustive": ExhaustiveSearcher(records, max_query_length=256),
            "fasta": FastaLikeSearcher(records),
            "blast": BlastLikeSearcher(records),
        }
        case = queries[0]
        for name, engine in engines.items():
            report = engine.search(case.query, top_k=3)
            assert report.best() is not None, name
            assert report.best().ordinal == case.source_ordinal, name


class TestIndexParameterVariants:
    @pytest.mark.parametrize(
        "params",
        [
            IndexParameters(interval_length=6),
            IndexParameters(interval_length=10),
            IndexParameters(interval_length=8, stride=4),
            IndexParameters(interval_length=8, include_positions=False),
            IndexParameters(
                interval_length=8, doc_codec="vbyte",
                count_codec="delta", position_codec="gamma",
            ),
        ],
        ids=["k6", "k10", "stride4", "no-positions", "alt-codecs"],
    )
    def test_search_works_across_index_shapes(self, small_workload, params):
        collection, queries = small_workload
        records = list(collection.sequences)
        index = build_index(records, params)
        from repro.index.store import MemorySequenceSource

        engine = PartitionedSearchEngine(
            index, MemorySequenceSource(records), coarse_cutoff=15
        )
        case = queries[0]
        report = engine.search(case.query, top_k=5)
        assert report.best().ordinal == case.source_ordinal

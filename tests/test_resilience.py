"""Retry / breaker units and sharded-engine degradation behaviour.

The end-to-end contract: a shard that keeps failing is retried, then
dropped for the query (``shards_degraded`` names it), then skipped
outright once its breaker opens — and the query result over the
surviving shards is identical to an engine built without the bad shard.
"""

import random

import numpy as np
import pytest

from repro.errors import SearchError, StorageError
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.instrumentation.instruments import Instruments
from repro.search.resilience import (
    CircuitBreaker,
    RetryPolicy,
    ShardResilience,
    ShardTimeout,
    ShardUnavailable,
)
from repro.sequences.record import Sequence
from repro.sharding import ShardedSearchEngine


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(SearchError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SearchError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(SearchError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(SearchError):
            RetryPolicy(base_delay=-1.0)

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_delay_capped(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=2.5, jitter=0.0
        )
        assert policy.delay(5) == pytest.approx(2.5)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.5
        )
        rng = random.Random(7)
        delays = [policy.delay(1, rng) for _ in range(200)]
        assert all(0.5 <= d <= 1.5 for d in delays)
        assert max(delays) > 1.1 and min(delays) < 0.9

    def test_delay_requires_positive_retries(self):
        with pytest.raises(SearchError):
            RetryPolicy().delay(0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, 10.0, clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_count(self):
        breaker = CircuitBreaker(2, 10.0, FakeClock())
        breaker.record_failure()
        breaker.record_success()
        assert breaker.failures == 0
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_single_admission(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 5.0, clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 5.0, clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(SearchError):
            CircuitBreaker(0)
        with pytest.raises(SearchError):
            CircuitBreaker(1, -1.0)


class TestShardResilience:
    def test_validation(self):
        with pytest.raises(SearchError):
            ShardResilience(shard_timeout=0.0)
        with pytest.raises(SearchError):
            ShardResilience(breaker_failures=0)

    def test_hashable_for_engine_cache_keys(self):
        a = ShardResilience(shard_timeout=1.0)
        b = ShardResilience(shard_timeout=1.0)
        assert a == b and hash(a) == hash(b)

    def test_make_breaker_carries_thresholds(self):
        resilience = ShardResilience(
            breaker_failures=2, breaker_reset_seconds=7.0
        )
        breaker = resilience.make_breaker(FakeClock())
        assert breaker.failure_threshold == 2
        assert breaker.reset_seconds == 7.0


class FlakyIndex:
    """Index proxy whose lookups raise StorageError for a while."""

    def __init__(self, inner, failures):
        self._inner = inner
        self.remaining = failures
        self.params = inner.params
        self.collection = inner.collection

    def _maybe_fail(self):
        if self.remaining > 0:
            self.remaining -= 1
            raise StorageError("injected shard fault")

    def lookup_entry(self, interval_id):
        self._maybe_fail()
        return self._inner.lookup_entry(interval_id)

    def docs_counts(self, interval_id, entry=None):
        self._maybe_fail()
        return self._inner.docs_counts(interval_id, entry)

    def postings(self, interval_id, entry=None):
        self._maybe_fail()
        return self._inner.postings(interval_id, entry)

    def interval_ids(self):
        return self._inner.interval_ids()

    @property
    def vocabulary_size(self):
        return self._inner.vocabulary_size


PARAMS = IndexParameters(interval_length=6)
FAST_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.001, max_delay=0.002, jitter=0.0
)


def _records(count=24, length=200, seed=11):
    rng = np.random.default_rng(seed)
    records = []
    for slot in range(count):
        codes = rng.integers(0, 4, length, dtype=np.uint8)
        if slot and slot % 4 == 0:
            codes[30:90] = records[0].codes[30:90]
        records.append(Sequence(f"res{slot:03d}", codes))
    return records


def _query(records):
    return Sequence("resq", records[0].codes[20:120].copy())


def _shard_pairs(records, shards=3, flaky_slot=None, failures=0):
    pairs = []
    for slot in range(shards):
        part = records[slot::shards]
        index = build_index(part, PARAMS)
        if slot == flaky_slot:
            index = FlakyIndex(index, failures)
        pairs.append((index, MemorySequenceSource(part)))
    return pairs


def test_transient_fault_retried_to_success():
    """One failing attempt, then clean: retry hides it completely."""
    records = _records()
    resilience = ShardResilience(retry=FAST_RETRY, seed=3)
    instruments = Instruments()
    flaky = ShardedSearchEngine(
        _shard_pairs(records, flaky_slot=1, failures=1),
        resilience=resilience,
        instruments=instruments,
    )
    clean = ShardedSearchEngine(_shard_pairs(records))
    query = _query(records)
    report = flaky.search(query, top_k=8)
    expected = clean.search(query, top_k=8)
    assert report.shards_degraded == ()
    assert not report.partial
    assert [h.ordinal for h in report.hits] == [
        h.ordinal for h in expected.hits
    ]
    snapshot = instruments.metrics.snapshot()
    assert snapshot["counters"].get("sharded.shard.1.retries", 0) >= 1
    assert "sharded.shard.1.degraded" not in snapshot["counters"]


def test_persistent_fault_degrades_and_trips_breaker():
    records = _records()
    resilience = ShardResilience(
        retry=FAST_RETRY, breaker_failures=3, breaker_reset_seconds=60.0,
        seed=3,
    )
    instruments = Instruments()
    engine = ShardedSearchEngine(
        _shard_pairs(records, flaky_slot=1, failures=10_000),
        resilience=resilience,
        instruments=instruments,
    )
    query = _query(records)
    first = engine.search(query, top_k=8)
    assert first.shards_degraded == (1,)
    assert first.partial
    assert engine.breaker_states() == {
        0: "closed", 1: "open", 2: "closed",
    }
    # Breaker now open: the shard is skipped without attempts.
    second = engine.search(query, top_k=8)
    assert second.shards_degraded == (1,)
    counters = instruments.metrics.snapshot()["counters"]
    assert counters.get("sharded.shard.1.breaker_skips", 0) >= 1
    assert counters.get("sharded.degraded_queries", 0) == 2

    # Degraded results equal a two-shard engine without the bad shard.
    surviving = [
        pair for slot, pair in enumerate(_shard_pairs(records))
        if slot != 1
    ]
    # Ordinals differ between layouts, so compare identifiers + scores.
    reduced = ShardedSearchEngine(surviving).search(query, top_k=8)
    assert [(h.identifier, h.score) for h in second.hits] == [
        (h.identifier, h.score) for h in reduced.hits
    ]


def test_no_resilience_propagates_shard_errors():
    records = _records()
    engine = ShardedSearchEngine(
        _shard_pairs(records, flaky_slot=0, failures=10_000)
    )
    with pytest.raises(StorageError):
        engine.search(_query(records), top_k=5)


def test_shard_timeout_is_a_timeout_error():
    exc = ShardTimeout("slow")
    assert isinstance(exc, TimeoutError)


def test_shard_unavailable_carries_context():
    exc = ShardUnavailable(2, "breaker_open", "shard 2: circuit breaker open")
    assert exc.shard == 2
    assert exc.reason == "breaker_open"
    assert isinstance(exc, SearchError)


def test_attempt_timeout_drops_slow_shard():
    """A shard whose attempts exceed the timeout degrades the query."""
    import time as _time

    records = _records()

    class SlowIndex(FlakyIndex):
        def lookup_entry(self, interval_id):
            _time.sleep(0.05)
            return self._inner.lookup_entry(interval_id)

        def docs_counts(self, interval_id, entry=None):
            _time.sleep(0.05)
            return self._inner.docs_counts(interval_id, entry)

        def postings(self, interval_id, entry=None):
            _time.sleep(0.05)
            return self._inner.postings(interval_id, entry)

    pairs = _shard_pairs(records)
    slow = SlowIndex(build_index(records[1::3], PARAMS), 0)
    pairs[1] = (slow, pairs[1][1])
    engine = ShardedSearchEngine(
        pairs,
        resilience=ShardResilience(
            shard_timeout=0.02,
            retry=RetryPolicy(max_attempts=1, jitter=0.0),
            breaker_failures=1,
            seed=3,
        ),
    )
    try:
        report = engine.search(_query(records), top_k=5)
        assert report.shards_degraded == (1,)
        assert engine.breaker_states()[1] == "open"
    finally:
        engine.close()

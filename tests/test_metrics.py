"""Unit and property tests for the effectiveness metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.eval.metrics import (
    average_precision,
    eleven_point_interpolated,
    mean_eleven_point,
    precision_at,
    ranking_overlap,
    recall_at,
    recall_precision_points,
)

rankings = st.lists(st.integers(min_value=0, max_value=30), max_size=20,
                    unique=True)
relevant_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=10)


class TestRecallPrecision:
    def test_perfect_ranking(self):
        assert recall_at([1, 2, 3], {1, 2, 3}, 3) == 1.0
        assert precision_at([1, 2, 3], {1, 2, 3}, 3) == 1.0

    def test_partial_recall(self):
        assert recall_at([1, 9, 2], {1, 2, 3, 4}, 3) == 0.5

    def test_precision_with_irrelevant_noise(self):
        assert precision_at([1, 9, 8, 7], {1}, 4) == 0.25

    def test_cutoff_shorter_than_ranking(self):
        assert recall_at([1, 2, 3], {3}, 2) == 0.0

    def test_empty_relevant_set(self):
        assert recall_at([1, 2], set(), 2) == 0.0
        assert average_precision([1, 2], set()) == 0.0

    def test_empty_ranking(self):
        assert precision_at([], {1}, 5) == 0.0
        assert recall_at([], {1}, 5) == 0.0

    def test_cutoff_validation(self):
        with pytest.raises(ReproError):
            recall_at([1], {1}, 0)
        with pytest.raises(ReproError):
            precision_at([1], {1}, -3)

    @given(ranking=rankings, relevant=relevant_sets,
           cutoff=st.integers(min_value=1, max_value=25))
    def test_bounds(self, ranking, relevant, cutoff):
        assert 0.0 <= recall_at(ranking, relevant, cutoff) <= 1.0
        assert 0.0 <= precision_at(ranking, relevant, cutoff) <= 1.0

    @given(ranking=rankings, relevant=relevant_sets)
    def test_recall_monotone_in_cutoff(self, ranking, relevant):
        values = [recall_at(ranking, relevant, c) for c in range(1, 22)]
        assert values == sorted(values)


class TestAveragePrecision:
    def test_all_relevant_first(self):
        assert average_precision([5, 6, 1, 2], {5, 6}) == 1.0

    def test_relevant_last(self):
        assert average_precision([9, 8, 1], {1}) == pytest.approx(1 / 3)

    def test_missing_relevant_items_penalised(self):
        assert average_precision([1], {1, 2}) == pytest.approx(0.5)

    @given(ranking=rankings, relevant=relevant_sets)
    def test_bounds(self, ranking, relevant):
        assert 0.0 <= average_precision(ranking, relevant) <= 1.0


class TestElevenPoint:
    def test_perfect_curve_is_all_ones(self):
        curve = eleven_point_interpolated([1, 2], {1, 2})
        assert curve == [1.0] * 11

    def test_no_relevant_found(self):
        assert eleven_point_interpolated([9, 8], {1}) == [0.0] * 11

    def test_interpolation_is_monotone_non_increasing(self):
        curve = eleven_point_interpolated([1, 9, 2, 8, 3], {1, 2, 3})
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    @given(ranking=rankings, relevant=relevant_sets)
    def test_curve_bounds_and_length(self, ranking, relevant):
        curve = eleven_point_interpolated(ranking, relevant)
        assert len(curve) == 11
        assert all(0.0 <= value <= 1.0 for value in curve)

    def test_points_are_recall_ordered(self):
        points = recall_precision_points([1, 9, 2], {1, 2})
        recalls = [recall for recall, _ in points]
        assert recalls == sorted(recalls)

    def test_mean_curves(self):
        mean = mean_eleven_point([[1.0] * 11, [0.0] * 11])
        assert mean == [0.5] * 11

    def test_mean_validation(self):
        with pytest.raises(ReproError):
            mean_eleven_point([])
        with pytest.raises(ReproError):
            mean_eleven_point([[1.0] * 10])


class TestRankingOverlap:
    def test_identical_rankings(self):
        assert ranking_overlap([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_disjoint_rankings(self):
        assert ranking_overlap([1, 2], [3, 4], 2) == 0.0

    def test_order_within_cutoff_ignored(self):
        assert ranking_overlap([1, 2], [2, 1], 2) == 1.0

    def test_empty_rankings_overlap_fully(self):
        assert ranking_overlap([], [], 5) == 1.0

    @given(first=rankings, second=rankings,
           cutoff=st.integers(min_value=1, max_value=20))
    def test_symmetry_and_bounds(self, first, second, cutoff):
        forward = ranking_overlap(first, second, cutoff)
        backward = ranking_overlap(second, first, cutoff)
        assert forward == backward
        assert 0.0 <= forward <= 1.0

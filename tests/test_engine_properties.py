"""Property-flavoured invariants of the search engines."""

import numpy as np
import pytest

from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.search.engine import PartitionedSearchEngine
from repro.search.exhaustive import ExhaustiveSearcher
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(121)
    records = [
        Sequence(f"pp{slot}", rng.integers(0, 4, 300, dtype=np.uint8))
        for slot in range(25)
    ]
    index = build_index(records, IndexParameters(interval_length=8))
    source = MemorySequenceSource(records)
    queries = [records[s].slice(40, 200) for s in (0, 6, 12, 18)]
    return records, index, source, queries


class TestTopKPrefixProperty:
    """top_k=j answers are a prefix of top_k=k answers for j < k."""

    def test_partitioned(self, setup):
        _, index, source, queries = setup
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=15)
        for query in queries:
            small = engine.search(query, top_k=3).ordinals()
            large = engine.search(query, top_k=10).ordinals()
            assert large[: len(small)] == small

    def test_exhaustive(self, setup):
        records, _, _, queries = setup
        engine = ExhaustiveSearcher(records, max_query_length=256)
        for query in queries:
            small = engine.search(query, top_k=3).ordinals()
            large = engine.search(query, top_k=10).ordinals()
            assert large[: len(small)] == small


class TestDeterminism:
    def test_repeat_searches_identical(self, setup):
        _, index, source, queries = setup
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=15)
        for query in queries:
            first = engine.search(query, top_k=10)
            second = engine.search(query, top_k=10)
            assert [(h.ordinal, h.score) for h in first.hits] == [
                (h.ordinal, h.score) for h in second.hits
            ]

    def test_two_engine_instances_agree(self, setup):
        _, index, source, queries = setup
        first_engine = PartitionedSearchEngine(index, source, coarse_cutoff=15)
        second_engine = PartitionedSearchEngine(index, source, coarse_cutoff=15)
        for query in queries:
            assert first_engine.search(query).ordinals() == (
                second_engine.search(query).ordinals()
            )


class TestCutoffMonotonicity:
    """A larger coarse cutoff can only add candidates, so the best
    answer's score never decreases."""

    def test_best_score_monotone_in_cutoff(self, setup):
        _, index, source, queries = setup
        for query in queries:
            previous_best = 0
            for cutoff in (1, 5, 15, 25):
                engine = PartitionedSearchEngine(
                    index, source, coarse_cutoff=cutoff
                )
                best = engine.search(query).best()
                score = best.score if best else 0
                assert score >= previous_best
                previous_best = score


class TestScoreSemantics:
    def test_scores_bounded_by_self_alignment(self, setup):
        _, index, source, queries = setup
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=25)
        for query in queries:
            report = engine.search(query, top_k=25)
            bound = len(query) * engine.scheme.match
            assert all(0 < hit.score <= bound for hit in report.hits)

    def test_exhaustive_is_an_upper_bound_per_sequence(self, setup):
        records, index, source, queries = setup
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=25)
        oracle = ExhaustiveSearcher(records, max_query_length=256)
        for query in queries:
            true_scores = oracle.scores(query)
            for hit in engine.search(query, top_k=25).hits:
                assert hit.score == int(true_scores[hit.ordinal])

    def test_frames_scores_never_exceed_full(self, setup):
        records, index, source, queries = setup
        framed = PartitionedSearchEngine(
            index, source, coarse_cutoff=25, fine_mode="frames"
        )
        oracle = ExhaustiveSearcher(records, max_query_length=256)
        for query in queries:
            true_scores = oracle.scores(query)
            for hit in framed.search(query, top_k=25).hits:
                assert hit.score <= int(true_scores[hit.ordinal])

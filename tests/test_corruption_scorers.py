"""Regression tests: ``on_corruption="skip"`` must not crash scorers.

The quarantining index view answers ``docs_counts`` with ``None`` when
a posting blob fails integrity *after* its vocabulary row was read
successfully.  The IDF scorer and the limited-accumulator path both
used to ``assert`` that could never happen and crashed mid-query; they
must skip the interval's evidence like the count scorer does.
"""

import numpy as np
import pytest

from repro.errors import CorruptionError
from repro.index.builder import IndexParameters, IndexReader, build_index
from repro.index.store import MemorySequenceSource
from repro.instrumentation import Instruments
from repro.search.coarse import CoarseRanker
from repro.search.engine import (
    PartitionedSearchEngine,
    QuarantiningIndexReader,
)
from repro.sequences.record import Sequence


class FaultyIndex(IndexReader):
    """Delegating index whose posting blobs fail integrity on demand.

    Vocabulary lookups keep succeeding — the shape of real damage where
    the vocabulary section is intact but a posting blob is corrupt.
    Every interval id divisible by ``bad_every`` is damaged.
    """

    def __init__(self, inner: IndexReader, bad_every: int = 2) -> None:
        self._inner = inner
        self.params = inner.params
        self.collection = inner.collection
        self.bad_every = bad_every

    def _check(self, interval_id: int) -> None:
        if (
            interval_id % self.bad_every == 0
            and self._inner.lookup_entry(interval_id) is not None
        ):
            raise CorruptionError(
                "synthetic blob damage",
                interval_id=interval_id,
                section="postings",
            )

    def lookup_entry(self, interval_id):
        return self._inner.lookup_entry(interval_id)

    def docs_counts(self, interval_id, entry=None):
        self._check(interval_id)
        return self._inner.docs_counts(interval_id, entry)

    def postings(self, interval_id, entry=None):
        self._check(interval_id)
        return self._inner.postings(interval_id, entry)

    def interval_ids(self):
        return self._inner.interval_ids()

    @property
    def vocabulary_size(self):
        return self._inner.vocabulary_size


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(907)
    records = [
        Sequence(f"cs{slot}", rng.integers(0, 4, 400, dtype=np.uint8))
        for slot in range(30)
    ]
    index = build_index(records, IndexParameters(interval_length=8))
    source = MemorySequenceSource(records)
    return records, index, source


class TestSkipPolicyScorers:
    def test_idf_scorer_survives_quarantined_blobs(self, setup):
        records, index, source = setup
        engine = PartitionedSearchEngine(
            FaultyIndex(index),
            source,
            coarse_scorer="idf",
            coarse_cutoff=10,
            on_corruption="skip",
        )
        report = engine.search(records[4].slice(100, 260), top_k=5)
        assert report.quarantined_intervals > 0
        # Half the evidence is gone, but the planted answer still wins.
        assert report.best().ordinal == 4

    def test_idf_scorer_survives_fully_quarantined_query(self, setup):
        records, index, source = setup
        engine = PartitionedSearchEngine(
            FaultyIndex(index, bad_every=1),
            source,
            coarse_scorer="idf",
            on_corruption="skip",
        )
        report = engine.search(records[4].slice(100, 260), top_k=5)
        assert report.hits == []
        assert report.quarantined_intervals > 0

    def test_limited_accumulators_survive_quarantined_blobs(self, setup):
        records, index, _ = setup
        quarantining = QuarantiningIndexReader(FaultyIndex(index))
        ranker = CoarseRanker(quarantining, "count", max_accumulators=8)
        candidates = ranker.rank(records[4].codes[:160], cutoff=10)
        assert quarantining.quarantined
        assert all(candidate.coarse_score > 0 for candidate in candidates)

    def test_limited_accumulators_quit_policy_survives(self, setup):
        records, index, _ = setup
        quarantining = QuarantiningIndexReader(FaultyIndex(index))
        ranker = CoarseRanker(
            quarantining,
            "count",
            max_accumulators=4,
            accumulator_policy="quit",
        )
        ranker.rank(records[4].codes[:160], cutoff=10)
        assert quarantining.quarantined

    def test_count_scorer_matches_idf_quarantine_set(self, setup):
        """Both scorers must quarantine the same damaged intervals."""
        records, index, source = setup
        reports = {}
        for scorer in ("count", "idf"):
            engine = PartitionedSearchEngine(
                FaultyIndex(index),
                source,
                coarse_scorer=scorer,
                on_corruption="skip",
            )
            engine.search(records[4].slice(100, 260), top_k=5)
            reports[scorer] = engine.quarantined_intervals
        assert reports["count"] == reports["idf"]

    def test_quarantine_counter_matches_engine_state(self, setup):
        records, index, source = setup
        instruments = Instruments()
        engine = PartitionedSearchEngine(
            FaultyIndex(index),
            source,
            coarse_scorer="idf",
            on_corruption="skip",
            instruments=instruments,
        )
        engine.search(records[4].slice(100, 260), top_k=5)
        engine.search(records[9].slice(50, 210), top_k=5)
        assert (
            instruments.metrics.counter_value("index.quarantined_intervals")
            == engine.quarantined_intervals
        )

"""Property tests: vectorised code packing is bit-identical to the
scalar writer, across codes, groups, and whole index builds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitio import BitWriter
from repro.compression.elias import EliasGammaCodec
from repro.compression.fastpack import (
    MAX_VECTOR_BITS,
    gamma_code_array,
    golomb_code_array,
    golomb_code_array_multi,
    interleave_codes,
    pack_grouped,
    pack_patterns,
)
from repro.compression.golomb import GolombCodec
from repro.errors import CodecValueError


def scalar_gamma(values) -> bytes:
    writer = BitWriter()
    codec = EliasGammaCodec()
    for value in values:
        codec.encode_value(writer, int(value))
    return writer.getvalue()


def scalar_golomb(values, parameter) -> bytes:
    writer = BitWriter()
    codec = GolombCodec(parameter)
    for value in values:
        codec.encode_value(writer, int(value))
    return writer.getvalue()


class TestGammaVector:
    @given(st.lists(st.integers(min_value=0, max_value=2**28 - 1),
                    min_size=1, max_size=200))
    def test_bit_identical_to_scalar(self, values):
        patterns, lengths = gamma_code_array(np.array(values))
        assert pack_patterns(patterns, lengths) == scalar_gamma(values)

    def test_rejects_negative(self):
        with pytest.raises(CodecValueError):
            gamma_code_array(np.array([-1]))

    def test_rejects_oversized(self):
        with pytest.raises(CodecValueError):
            gamma_code_array(np.array([2**28]))

    def test_boundary_value_fits_the_window(self):
        patterns, lengths = gamma_code_array(np.array([2**28 - 1]))
        assert int(lengths[0]) == 57
        assert pack_patterns(patterns, lengths) == scalar_gamma([2**28 - 1])

    def test_empty(self):
        patterns, lengths = gamma_code_array(np.empty(0, dtype=np.int64))
        assert pack_patterns(patterns, lengths) == b""


class TestGolombVector:
    @given(
        values=st.lists(st.integers(min_value=0, max_value=5000), min_size=1,
                        max_size=200),
        parameter=st.integers(min_value=1, max_value=300),
    )
    def test_bit_identical_to_scalar(self, values, parameter):
        patterns, lengths, overflow = golomb_code_array(
            np.array(values), parameter
        )
        if bool(overflow.any()):
            return  # overflowed codes are the scalar path's job
        assert pack_patterns(patterns, lengths) == scalar_golomb(
            values, parameter
        )

    def test_overflow_flagged_for_huge_quotients(self):
        _, lengths, overflow = golomb_code_array(np.array([10**6]), 1)
        assert bool(overflow[0])
        assert int(lengths[0]) > MAX_VECTOR_BITS

    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2000),
                st.integers(min_value=1, max_value=200),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_multi_parameter_matches_per_value_scalar(self, pairs):
        values = np.array([value for value, _ in pairs])
        parameters = np.array([parameter for _, parameter in pairs])
        patterns, lengths, overflow = golomb_code_array_multi(
            values, parameters
        )
        if bool(overflow.any()):
            return
        writer = BitWriter()
        for value, parameter in pairs:
            GolombCodec(parameter).encode_value(writer, value)
        assert pack_patterns(patterns, lengths) == writer.getvalue()

    def test_multi_shape_mismatch(self):
        with pytest.raises(CodecValueError):
            golomb_code_array_multi(np.array([1, 2]), np.array([3]))


class TestInterleaveAndGroups:
    def test_interleave_matches_alternating_scalar(self):
        first = np.array([5, 6, 7])
        second = np.array([0, 1, 2])
        gamma_patterns, gamma_lengths = gamma_code_array(first)
        golomb = GolombCodec(4)
        g_patterns, g_lengths, _ = golomb_code_array(second, 4)
        patterns, lengths = interleave_codes(
            (gamma_patterns, gamma_lengths), (g_patterns, g_lengths)
        )
        writer = BitWriter()
        gamma = EliasGammaCodec()
        for a, b in zip(first.tolist(), second.tolist()):
            gamma.encode_value(writer, a)
            golomb.encode_value(writer, b)
        assert pack_patterns(patterns, lengths) == writer.getvalue()

    @given(
        groups=st.lists(
            st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                     max_size=20),
            min_size=1,
            max_size=15,
        )
    )
    def test_grouped_packing_slices_equal_separate_encodings(self, groups):
        values = np.concatenate([np.array(group) for group in groups])
        group_ids = np.concatenate(
            [np.full(len(group), slot) for slot, group in enumerate(groups)]
        )
        patterns, lengths = gamma_code_array(values)
        buffer, bounds = pack_grouped(patterns, lengths, group_ids)
        for slot, group in enumerate(groups):
            piece = buffer[int(bounds[slot]) : int(bounds[slot + 1])]
            assert piece == scalar_gamma(group)

    def test_group_ids_must_be_sorted(self):
        patterns, lengths = gamma_code_array(np.array([1, 2]))
        with pytest.raises(CodecValueError):
            pack_grouped(patterns, lengths, np.array([1, 0]))

    def test_pack_patterns_rejects_wide_codes(self):
        with pytest.raises(CodecValueError):
            pack_patterns(
                np.array([1], dtype=np.uint64),
                np.array([MAX_VECTOR_BITS + 1]),
            )


class TestBulkBuildEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        texts=st.lists(st.text(alphabet="ACGTN", min_size=1, max_size=60),
                       min_size=1, max_size=10),
        interval_length=st.integers(min_value=1, max_value=6),
        positions=st.booleans(),
    )
    def test_bulk_equals_loop_for_any_collection(
        self, texts, interval_length, positions
    ):
        import repro.index.builder as builder_module
        from repro.index.builder import IndexParameters, build_index
        from repro.sequences.record import Sequence

        records = [
            Sequence.from_text(f"h{slot}", text)
            for slot, text in enumerate(texts)
        ]
        params = IndexParameters(
            interval_length=interval_length, include_positions=positions
        )
        fast = build_index(records, params)
        original = builder_module._bulk_encode_vocabulary
        builder_module._bulk_encode_vocabulary = lambda *args, **kw: None
        try:
            slow = build_index(records, params)
        finally:
            builder_module._bulk_encode_vocabulary = original
        assert fast.vocabulary_size == slow.vocabulary_size
        for interval in fast.interval_ids():
            ours = fast.lookup_entry(interval)
            theirs = slow.lookup_entry(interval)
            assert (ours.df, ours.cf, ours.data) == (
                theirs.df, theirs.cf, theirs.data,
            )

"""Tests for the public API surface: exports, error taxonomy, version."""

import pytest

import repro
from repro import errors


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "subpackage",
        ["sequences", "compression", "index", "align", "search", "eval",
         "workloads"],
    )
    def test_subpackage_all_names_resolve(self, subpackage):
        import importlib

        module = importlib.import_module(f"repro.{subpackage}")
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{subpackage}.{name}"

    def test_quickstart_docstring_names_exist(self):
        # The module docstring's quickstart uses these names.
        for name in (
            "PartitionedSearchEngine",
            "build_index",
            "MemorySequenceSource",
            "Sequence",
        ):
            assert name in repro.__all__


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.AlphabetError,
            errors.FastaFormatError,
            errors.CodecError,
            errors.CodecValueError,
            errors.BitStreamError,
            errors.IndexError_,
            errors.IndexParameterError,
            errors.IndexFormatError,
            errors.IndexLookupError,
            errors.AlignmentError,
            errors.SearchError,
            errors.WorkloadError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_codec_sub_hierarchy(self):
        assert issubclass(errors.CodecValueError, errors.CodecError)
        assert issubclass(errors.BitStreamError, errors.CodecError)

    def test_index_sub_hierarchy(self):
        for exc in (
            errors.IndexParameterError,
            errors.IndexFormatError,
            errors.IndexLookupError,
        ):
            assert issubclass(exc, errors.IndexError_)

    def test_catching_the_base_class_works_end_to_end(self):
        from repro import ReproError, Sequence

        with pytest.raises(ReproError):
            Sequence.from_text("x", "not dna!")

    def test_repro_error_is_not_a_builtin_alias(self):
        assert errors.ReproError is not Exception
        assert errors.IndexError_ is not IndexError

"""Unit tests for the extension features: E-value annotation, idf
scoring, query wildcard expansion, and dynamic index append."""

import numpy as np
import pytest

from repro.align.statistics import calibrate_gapped
from repro.errors import IndexParameterError, SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.intervals import IntervalExtractor, interval_id
from repro.index.merge import append_sequences
from repro.index.store import MemorySequenceSource
from repro.search.coarse import CoarseRanker
from repro.search.engine import PartitionedSearchEngine
from repro.sequences import alphabet
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def collection():
    rng = np.random.default_rng(111)
    return [
        Sequence(f"x{slot}", rng.integers(0, 4, 400, dtype=np.uint8))
        for slot in range(40)
    ]


@pytest.fixture(scope="module")
def index(collection):
    return build_index(collection, IndexParameters(interval_length=8))


@pytest.fixture(scope="module")
def source(collection):
    return MemorySequenceSource(collection)


class TestSignificanceAnnotation:
    def test_hits_carry_evalues(self, collection, index, source):
        from repro.align.scoring import ScoringScheme

        params = calibrate_gapped(ScoringScheme(), samples=25, seed=2)
        engine = PartitionedSearchEngine(
            index, source, coarse_cutoff=10, significance=params
        )
        query = collection[5].slice(100, 260)
        report = engine.search(query, top_k=5)
        assert all(hit.evalue is not None for hit in report.hits)
        # The exact self-match is overwhelmingly significant.
        assert report.best().evalue < 1e-10

    def test_evalues_ordered_inverse_to_scores(self, collection, index, source):
        from repro.align.scoring import ScoringScheme

        params = calibrate_gapped(ScoringScheme(), samples=25, seed=2)
        engine = PartitionedSearchEngine(
            index, source, coarse_cutoff=40, significance=params
        )
        report = engine.search(collection[7].slice(0, 200), top_k=10)
        evalues = [hit.evalue for hit in report.hits]
        assert evalues == sorted(evalues)

    def test_no_parameters_no_evalues(self, collection, index, source):
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=10)
        report = engine.search(collection[3].slice(0, 150))
        assert all(hit.evalue is None for hit in report.hits)


class TestIdfScorer:
    def test_idf_downweights_ubiquitous_intervals(self):
        # Every sequence shares a poly-A prefix; only seq 0 shares the
        # distinctive suffix with the query.
        rng = np.random.default_rng(5)
        records = []
        for slot in range(10):
            codes = rng.integers(0, 4, 120, dtype=np.uint8)
            codes[:30] = 0
            records.append(Sequence(f"i{slot}", codes))
        index = build_index(records, IndexParameters(interval_length=6))
        query = np.concatenate(
            [np.zeros(30, dtype=np.uint8), records[0].codes[90:120]]
        )
        count_rank = CoarseRanker(index, "count").rank(query, cutoff=10)
        idf_rank = CoarseRanker(index, "idf").rank(query, cutoff=10)
        # Under idf, sequence 0's unique suffix dominates decisively.
        assert idf_rank[0].ordinal == 0
        idf_margin = idf_rank[0].coarse_score / idf_rank[1].coarse_score
        count_margin = count_rank[0].coarse_score / count_rank[1].coarse_score
        assert idf_margin > count_margin

    def test_engine_accepts_idf_by_name(self, collection, index, source):
        engine = PartitionedSearchEngine(
            index, source, coarse_scorer="idf", coarse_cutoff=10
        )
        query = collection[11].slice(50, 220)
        assert engine.search(query).best().ordinal == 11


class TestWildcardExpansion:
    def test_validation(self):
        extractor = IntervalExtractor(4)
        with pytest.raises(IndexParameterError):
            extractor.extract_expanded(alphabet.encode("ACGT"), max_wildcards=0)
        with pytest.raises(IndexParameterError):
            extractor.extract_expanded(
                alphabet.encode("ACGT"), max_expansion=0
            )

    def test_clean_sequences_unchanged(self):
        extractor = IntervalExtractor(4)
        codes = alphabet.encode("ACGTACGT")
        plain_ids, plain_positions = extractor.extract(codes)
        expanded_ids, expanded_positions = extractor.extract_expanded(codes)
        assert plain_ids.tolist() == expanded_ids.tolist()
        assert plain_positions.tolist() == expanded_positions.tolist()

    def test_single_n_expands_to_four(self):
        extractor = IntervalExtractor(4)
        ids, positions = extractor.extract_expanded(alphabet.encode("ACNT"))
        assert positions.tolist() == [0, 0, 0, 0]
        expected = {interval_id(f"AC{base}T") for base in "ACGT"}
        assert set(ids.tolist()) == expected

    def test_two_letter_code_expands_to_two(self):
        extractor = IntervalExtractor(4)
        ids, _ = extractor.extract_expanded(alphabet.encode("ACRT"))
        assert set(ids.tolist()) == {
            interval_id("ACAT"), interval_id("ACGT")
        }

    def test_heavily_wildcarded_window_still_skipped(self):
        extractor = IntervalExtractor(4)
        ids, _ = extractor.extract_expanded(
            alphabet.encode("NNNT"), max_wildcards=1
        )
        assert ids.shape[0] == 0

    def test_expansion_cap(self):
        extractor = IntervalExtractor(4)
        ids, _ = extractor.extract_expanded(
            alphabet.encode("NNTT"), max_wildcards=2, max_expansion=5
        )
        assert ids.shape[0] == 5

    def test_short_sequence(self):
        extractor = IntervalExtractor(8)
        ids, _ = extractor.extract_expanded(alphabet.encode("ACN"))
        assert ids.shape[0] == 0

    def test_wildcarded_query_reaches_the_index(self, collection, index, source):
        codes = collection[20].codes[100:220].copy()
        codes[::15] = alphabet.IUPAC_ALPHABET.index("N")  # sprinkle Ns
        strict = CoarseRanker(index)
        expanding = CoarseRanker(index, expand_query_wildcards=1)
        strict_rank = strict.rank(codes, cutoff=1)
        expanded_rank = expanding.rank(codes, cutoff=1)
        assert expanded_rank[0].ordinal == 20
        assert (
            expanded_rank[0].coarse_score
            > (strict_rank[0].coarse_score if strict_rank else 0.0)
        )

    def test_negative_expansion_rejected(self, index):
        with pytest.raises(SearchError):
            CoarseRanker(index, expand_query_wildcards=-1)


class TestAppendSequences:
    def test_append_equals_rebuild(self, collection):
        params = IndexParameters(interval_length=8)
        base = build_index(collection[:30], params)
        grown = append_sequences(base, collection[30:])
        rebuilt = build_index(collection, params)
        assert grown.collection.identifiers == rebuilt.collection.identifiers
        assert grown.vocabulary_size == rebuilt.vocabulary_size
        for interval in list(grown.interval_ids())[:300]:
            assert (
                grown.lookup_entry(interval).data
                == rebuilt.lookup_entry(interval).data
            )

    def test_append_nothing_rejected(self, index):
        with pytest.raises(IndexParameterError):
            append_sequences(index, [])

    def test_search_after_append(self, collection):
        params = IndexParameters(interval_length=8)
        base = build_index(collection[:35], params)
        grown = append_sequences(base, collection[35:])
        engine = PartitionedSearchEngine(
            grown, MemorySequenceSource(collection), coarse_cutoff=10
        )
        query = collection[38].slice(100, 260)
        assert engine.search(query).best().ordinal == 38

"""Per-query deadlines: units + partial-result behaviour end to end.

The contract under test: an expired deadline never raises — the engine
returns whatever ranking the work completed before expiry produced,
with ``deadline_expired=True`` on the report.  A generous deadline
changes nothing (score identity with the unbudgeted path).
"""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.search.deadline import (
    NO_DEADLINE,
    Deadline,
    DeadlineIndexView,
    ensure_deadline,
)
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.record import Sequence
from repro.sharding import ShardedSearchEngine


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline()
        assert not deadline.bounded
        assert not deadline.expired()
        assert deadline.remaining() is None

    def test_after_none_is_shared_sentinel(self):
        assert Deadline.after(None) is NO_DEADLINE

    def test_after_negative_raises(self):
        with pytest.raises(SearchError):
            Deadline.after(-0.5)

    def test_expiry_follows_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.bounded
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert not deadline.expired()
        clock.advance(0.5)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        clock.advance(10.0)
        assert deadline.expired()

    def test_zero_budget_expires_immediately(self):
        clock = FakeClock()
        assert Deadline.after(0.0, clock).expired()

    def test_tightened_keeps_the_tighter(self):
        clock = FakeClock()
        wide = Deadline.after(10.0, clock)
        assert wide.tightened(None) is wide
        assert wide.tightened(20.0) is wide
        tight = wide.tightened(1.0)
        assert tight.remaining() == pytest.approx(1.0)
        unbounded = Deadline(clock=clock)
        assert unbounded.tightened(3.0).remaining() == pytest.approx(3.0)

    def test_ensure_deadline(self):
        assert ensure_deadline(None) is NO_DEADLINE
        deadline = Deadline.after(1.0, FakeClock())
        assert ensure_deadline(deadline) is deadline


class TestDeadlineIndexView:
    @pytest.fixture()
    def index(self, tiny_collection):
        return build_index(
            tiny_collection, IndexParameters(interval_length=6)
        )

    def test_passthrough_before_expiry(self, index):
        clock = FakeClock()
        view = DeadlineIndexView(index, Deadline.after(5.0, clock))
        assert view.params is index.params
        assert view.collection is index.collection
        assert view.vocabulary_size == index.vocabulary_size
        interval = next(iter(index.interval_ids()))
        assert view.lookup_entry(interval) == index.lookup_entry(interval)
        assert view.postings(interval) == index.postings(interval)

    def test_empty_evidence_after_expiry(self, index):
        clock = FakeClock()
        view = DeadlineIndexView(index, Deadline.after(1.0, clock))
        interval = next(iter(index.interval_ids()))
        clock.advance(2.0)
        assert view.lookup_entry(interval) is None
        assert view.docs_counts(interval) is None
        assert view.postings(interval) == []


@pytest.fixture(scope="module")
def shard_pairs(small_workload):
    """Three (index, source) shards over the small-workload collection."""
    collection, _ = small_workload
    records = list(collection.sequences)
    params = IndexParameters(interval_length=8)
    pairs = []
    for slot in range(3):
        part = records[slot::3]
        pairs.append(
            (build_index(part, params), MemorySequenceSource(part))
        )
    return pairs


@pytest.fixture(scope="module")
def engine_pair(small_workload, small_index, small_source, shard_pairs):
    """One partitioned engine and one 3-shard engine over the same data."""
    _, queries = small_workload
    single = PartitionedSearchEngine(small_index, small_source)
    sharded = ShardedSearchEngine(shard_pairs)
    return single, sharded, queries


@pytest.mark.parametrize("which", ["single", "sharded"])
def test_expired_deadline_returns_partial_not_raise(engine_pair, which):
    single, sharded, queries = engine_pair
    engine = single if which == "single" else sharded
    clock = FakeClock()
    deadline = Deadline.after(0.0, clock)
    report = engine.search(queries[0].query, top_k=5, deadline=deadline)
    assert report.deadline_expired
    assert report.partial
    # Expired before any work: nothing could be ranked.
    assert report.hits == []


@pytest.mark.parametrize("which", ["single", "sharded"])
def test_generous_deadline_matches_unbudgeted(engine_pair, which):
    single, sharded, queries = engine_pair
    engine = single if which == "single" else sharded
    for case in queries[:3]:
        free = engine.search(case.query, top_k=8)
        budgeted = engine.search(
            case.query, top_k=8, deadline=Deadline.after(60.0)
        )
        assert not budgeted.deadline_expired
        assert not budgeted.partial
        assert [h.ordinal for h in budgeted.hits] == [
            h.ordinal for h in free.hits
        ]
        assert [h.score for h in budgeted.hits] == [
            h.score for h in free.hits
        ]


def test_mid_query_expiry_yields_prefix_partial(engine_pair):
    """Expire between phases: hits (if any) come from completed work and
    the report is flagged; no exception regardless of where the clock
    lands."""
    single, _, queries = engine_pair
    query = queries[0].query
    full = single.search(query, top_k=10)
    # A clock that jumps past the expiry point after a fixed number of
    # reads lands expiry at different pipeline stages.
    for reads_before_expiry in (1, 3, 10, 50, 200):
        class CountingClock:
            def __init__(self, budget):
                self.calls = 0
                self.budget = budget

            def __call__(self):
                self.calls += 1
                return 0.0 if self.calls <= self.budget else 100.0

        clock = CountingClock(reads_before_expiry)
        deadline = Deadline.after(1.0, clock)
        report = single.search(query, top_k=10, deadline=deadline)
        # Partial hits are genuine scored alignments, in sorted order.
        scores = [h.score for h in report.hits]
        assert scores == sorted(scores, reverse=True)
        if report.deadline_expired:
            assert report.partial
            full_ordinals = {h.ordinal for h in full.hits}
            for hit in report.hits:
                assert hit.ordinal in full_ordinals or hit.score > 0
        else:
            # The query finished before it burned through the clock
            # budget: results must be the unbudgeted ones.
            assert [h.ordinal for h in report.hits] == [
                h.ordinal for h in full.hits
            ]


def test_both_strands_skips_reverse_after_expiry(engine_pair):
    single, _, queries = engine_pair
    engine = PartitionedSearchEngine(
        single.index, single.source, both_strands=True
    )
    clock = FakeClock()
    report = engine.search(
        queries[0].query, top_k=5, deadline=Deadline.after(0.0, clock)
    )
    assert report.deadline_expired
    assert report.hits == []


def test_search_batch_threads_deadline(engine_pair):
    single, _, queries = engine_pair
    clock = FakeClock()
    deadline = Deadline.after(0.0, clock)
    reports = single.search_batch(
        [c.query for c in queries[:3]], top_k=5, deadline=deadline
    )
    assert len(reports) == 3
    assert all(r.deadline_expired for r in reports)


def test_sharded_deadline_event_annotations(
    engine_pair, shard_pairs, tmp_path
):
    from repro.instrumentation.eventlog import QueryEventLog, read_events
    from repro.instrumentation.instruments import Instruments

    _, _, queries = engine_pair
    log_path = tmp_path / "events.jsonl"
    with QueryEventLog(log_path) as eventlog:
        instruments = Instruments(eventlog=eventlog)
        engine = ShardedSearchEngine(shard_pairs, instruments=instruments)
        engine.search(
            queries[0].query, top_k=5, deadline=Deadline.after(0.0, FakeClock())
        )
    events = read_events(log_path)
    assert events, "expected one query event"
    event = events[-1]
    assert event["outcome"] == "partial"
    assert event["deadline_expired"] is True
    assert event["shards_degraded"] == []

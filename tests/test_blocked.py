"""Unit and property tests for self-indexing (skip-pointer) postings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.errors import BitStreamError, CodecError, CodecValueError
from repro.index.blocked import BlockedPostings
from repro.index.postings import PostingsContext

CONTEXT = PostingsContext(num_sequences=500, total_length=250_000)


@st.composite
def doc_count_lists(draw):
    docs = sorted(
        draw(
            st.sets(st.integers(min_value=0, max_value=499), min_size=1,
                    max_size=120)
        )
    )
    counts = [
        draw(st.integers(min_value=1, max_value=40)) for _ in docs
    ]
    return np.array(docs, dtype=np.int64), np.array(counts, dtype=np.int64)


class TestBitPrimitives:
    def test_write_bit_chunk_splices_exactly(self):
        inner = BitWriter()
        inner.write_bits(0b10110, 5)
        outer = BitWriter()
        outer.write_bits(0b1, 1)
        outer.write_bit_chunk(inner.getvalue(), inner.bit_length)
        reader = BitReader(outer.getvalue())
        assert reader.read_bits(6) == 0b110110

    def test_write_bit_chunk_validates_length(self):
        with pytest.raises(CodecValueError):
            BitWriter().write_bit_chunk(b"x", 9)

    def test_skip_bits_lands_correctly(self):
        writer = BitWriter()
        writer.write_bits(0xABCD, 16)
        writer.write_bits(0b101, 3)
        reader = BitReader(writer.getvalue())
        reader.skip_bits(16)
        assert reader.read_bits(3) == 0b101

    def test_skip_bits_across_buffered_boundary(self):
        writer = BitWriter()
        writer.write_bits(0x12345678, 32)
        writer.write_bits(0x9A, 8)
        reader = BitReader(writer.getvalue())
        reader.read_bits(4)  # leaves 4 buffered bits
        reader.skip_bits(28)
        assert reader.read_bits(8) == 0x9A

    def test_skip_bits_exhaustion(self):
        reader = BitReader(b"ab")
        with pytest.raises(BitStreamError):
            reader.skip_bits(17)

    def test_skip_negative(self):
        with pytest.raises(CodecValueError):
            BitReader(b"a").skip_bits(-1)


class TestBlockedRoundTrip:
    def test_block_size_validation(self):
        with pytest.raises(CodecError):
            BlockedPostings(block_size=0)

    def test_unsorted_rejected(self):
        codec = BlockedPostings()
        with pytest.raises(CodecError):
            codec.encode(
                np.array([5, 3]), np.array([1, 1]), CONTEXT
            )

    def test_zero_count_rejected(self):
        codec = BlockedPostings()
        with pytest.raises(CodecError):
            codec.encode(np.array([1]), np.array([0]), CONTEXT)

    def test_mismatched_arrays_rejected(self):
        codec = BlockedPostings()
        with pytest.raises(CodecError):
            codec.encode(np.array([1, 2]), np.array([1]), CONTEXT)

    def test_empty_list(self):
        codec = BlockedPostings()
        data = codec.encode(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), CONTEXT
        )
        docs, counts = codec.decode_all(data, 0, CONTEXT)
        assert docs.shape == (0,)
        assert counts.shape == (0,)

    @pytest.mark.parametrize("block_size", [1, 2, 7, 32, 1000])
    def test_roundtrip_across_block_sizes(self, block_size):
        rng = np.random.default_rng(3)
        docs = np.unique(rng.integers(0, 500, size=90)).astype(np.int64)
        counts = rng.integers(1, 20, size=docs.shape[0]).astype(np.int64)
        codec = BlockedPostings(block_size=block_size)
        data = codec.encode(docs, counts, CONTEXT)
        out_docs, out_counts = codec.decode_all(data, docs.shape[0], CONTEXT)
        assert out_docs.tolist() == docs.tolist()
        assert out_counts.tolist() == counts.tolist()

    @given(pair=doc_count_lists())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, pair):
        docs, counts = pair
        codec = BlockedPostings(block_size=8)
        data = codec.encode(docs, counts, CONTEXT)
        out_docs, out_counts = codec.decode_all(data, docs.shape[0], CONTEXT)
        assert out_docs.tolist() == docs.tolist()
        assert out_counts.tolist() == counts.tolist()


class TestCandidateDecoding:
    @given(pair=doc_count_lists(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_candidates_match_full_decode(self, pair, data):
        docs, counts = pair
        codec = BlockedPostings(block_size=8)
        encoded = codec.encode(docs, counts, CONTEXT)
        wanted = data.draw(
            st.sets(st.integers(min_value=0, max_value=499), max_size=15)
        )
        found = codec.decode_candidates(
            encoded, docs.shape[0], CONTEXT, wanted
        )
        expected = {
            int(doc): int(count)
            for doc, count in zip(docs, counts)
            if int(doc) in wanted
        }
        assert found == expected

    def test_empty_wanted_set(self):
        codec = BlockedPostings()
        data = codec.encode(np.array([3]), np.array([2]), CONTEXT)
        assert codec.decode_candidates(data, 1, CONTEXT, []) == {}

    def test_wanted_outside_list(self):
        codec = BlockedPostings()
        data = codec.encode(
            np.array([10, 20]), np.array([1, 1]), CONTEXT
        )
        assert codec.decode_candidates(data, 2, CONTEXT, [5, 15, 25]) == {}

    def test_skipping_is_cheaper_than_decoding(self):
        """Fetching one ordinal from a long list must beat a full
        decode — the reason the directory exists."""
        import time

        rng = np.random.default_rng(11)
        big_context = PostingsContext(num_sequences=200_000,
                                      total_length=10**8)
        docs = np.unique(
            rng.integers(0, 200_000, size=20_000)
        ).astype(np.int64)
        counts = rng.integers(1, 5, size=docs.shape[0]).astype(np.int64)
        codec = BlockedPostings(block_size=64)
        data = codec.encode(docs, counts, big_context)

        wanted = [int(docs[17])]
        started = time.perf_counter()
        for _ in range(5):
            found = codec.decode_candidates(
                data, docs.shape[0], big_context, wanted
            )
        candidate_seconds = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(5):
            codec.decode_all(data, docs.shape[0], big_context)
        full_seconds = time.perf_counter() - started
        assert found == {int(docs[17]): int(counts[17])}
        assert candidate_seconds * 3 < full_seconds

"""Unit and property tests for compressed posting lists."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.index.postings import PostingEntry, PostingsCodec, PostingsContext

CONTEXT = PostingsContext(num_sequences=100, total_length=50_000)


def make_entries(spec: list[tuple[int, list[int]]]) -> list[PostingEntry]:
    return [
        PostingEntry(doc, np.array(positions, dtype=np.int64))
        for doc, positions in spec
    ]


@st.composite
def posting_lists(draw):
    """Strategy: a valid (sorted docs, sorted positive positions) list."""
    num_docs = draw(st.integers(min_value=1, max_value=12))
    docs = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=99),
                min_size=num_docs,
                max_size=num_docs,
            )
        )
    )
    spec = []
    for doc in docs:
        positions = sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=499),
                    min_size=1,
                    max_size=8,
                )
            )
        )
        spec.append((doc, positions))
    return spec


class TestRoundTrip:
    @given(posting_lists())
    def test_full_roundtrip_default_codecs(self, spec):
        codec = PostingsCodec()
        entries = make_entries(spec)
        df = len(entries)
        cf = sum(entry.count for entry in entries)
        decoded = codec.decode(codec.encode(entries, CONTEXT), df, cf, CONTEXT)
        assert [(e.sequence, e.positions.tolist()) for e in decoded] == spec

    @given(posting_lists())
    def test_section_a_matches_full_decode(self, spec):
        codec = PostingsCodec()
        entries = make_entries(spec)
        data = codec.encode(entries, CONTEXT)
        docs, counts = codec.decode_docs_counts(data, len(entries), CONTEXT)
        assert docs.tolist() == [doc for doc, _ in spec]
        assert counts.tolist() == [len(positions) for _, positions in spec]

    @pytest.mark.parametrize(
        "doc_codec,count_codec,position_codec",
        [
            ("golomb", "gamma", "golomb"),
            ("gamma", "gamma", "gamma"),
            ("delta", "delta", "delta"),
            ("vbyte", "vbyte", "vbyte"),
            ("rice", "gamma", "rice"),
        ],
    )
    def test_roundtrip_across_codec_choices(
        self, doc_codec, count_codec, position_codec
    ):
        codec = PostingsCodec(doc_codec, count_codec, position_codec)
        spec = [(0, [0, 7, 8]), (3, [499]), (99, [1, 2, 3, 4])]
        entries = make_entries(spec)
        decoded = codec.decode(codec.encode(entries, CONTEXT), 3, 8, CONTEXT)
        assert [(e.sequence, e.positions.tolist()) for e in decoded] == spec

    def test_docs_only_mode(self):
        codec = PostingsCodec(include_positions=False)
        entries = make_entries([(1, [5, 9]), (4, [0])])
        data = codec.encode(entries, CONTEXT)
        docs, counts = codec.decode_docs_counts(data, 2, CONTEXT)
        assert docs.tolist() == [1, 4]
        assert counts.tolist() == [2, 1]
        with pytest.raises(CodecError, match="no occurrence offsets"):
            codec.decode(data, 2, 3, CONTEXT)

    def test_docs_only_is_smaller(self):
        entries = make_entries([(d, list(range(0, 40, 5))) for d in range(0, 50, 5)])
        with_positions = PostingsCodec().encode(entries, CONTEXT)
        without = PostingsCodec(include_positions=False).encode(entries, CONTEXT)
        assert len(without) < len(with_positions)


class TestValidation:
    def test_unsorted_entries_rejected(self):
        codec = PostingsCodec()
        entries = make_entries([(5, [1]), (2, [1])])
        with pytest.raises(CodecError, match="sorted"):
            codec.encode(entries, CONTEXT)

    def test_duplicate_docs_rejected(self):
        codec = PostingsCodec()
        entries = make_entries([(5, [1]), (5, [2])])
        with pytest.raises(CodecError, match="sorted"):
            codec.encode(entries, CONTEXT)

    def test_empty_positions_rejected(self):
        codec = PostingsCodec()
        entries = [PostingEntry(0, np.empty(0, dtype=np.int64))]
        with pytest.raises(CodecError, match="zero occurrences"):
            codec.encode(entries, CONTEXT)

    def test_unknown_codec_name(self):
        with pytest.raises(CodecError):
            PostingsCodec(doc_codec="lzw")

    def test_empty_list_roundtrip(self):
        codec = PostingsCodec()
        data = codec.encode([], CONTEXT)
        docs, counts = codec.decode_docs_counts(data, 0, CONTEXT)
        assert docs.shape == (0,)
        assert counts.shape == (0,)


class TestDescription:
    def test_describe_roundtrip(self):
        original = PostingsCodec("vbyte", "delta", "rice", include_positions=False)
        rebuilt = PostingsCodec.from_description(original.describe())
        assert rebuilt.describe() == original.describe()

    def test_decoder_derives_same_golomb_parameters(self):
        """Encode and decode are separate codec instances (as when the
        index is reloaded from disk): parameters must be derivable."""
        spec = [(d, [d * 3, d * 3 + 1]) for d in range(0, 60, 3)]
        entries = make_entries(spec)
        encoder = PostingsCodec()
        data = encoder.encode(entries, CONTEXT)
        decoder = PostingsCodec.from_description(encoder.describe())
        decoded = decoder.decode(data, len(spec), sum(len(p) for _, p in spec), CONTEXT)
        assert [(e.sequence, e.positions.tolist()) for e in decoded] == spec


class TestContext:
    def test_mean_length(self):
        assert PostingsContext(10, 1000).mean_length == 100.0

    def test_mean_length_floor(self):
        assert PostingsContext(0, 0).mean_length == 1.0
        assert PostingsContext(10, 1).mean_length == 1.0

"""Metric and trace exporters: Prometheus text, Chrome trace events.

Round-trip property for the Prometheus exporter (what we emit must
parse back to the registry's values), structural validity for the
trace-event JSON (Perfetto's loader requires ``ph``/``ts``/``dur``
complete events), and one-span-per-shard coverage for the sharded
fan-out.
"""

import json

import numpy as np
import pytest

from repro.database import Database
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.instrumentation import (
    Instruments,
    MetricsRegistry,
    Tracer,
    format_span_tree,
    metrics_json,
    parse_prometheus_text,
    prometheus_text,
    trace_event_json,
    trace_events,
    write_metrics,
    write_trace,
)
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.record import Sequence

PARAMS = IndexParameters(interval_length=6)


def _records(count=24, length=200, seed=41):
    rng = np.random.default_rng(seed)
    return [
        Sequence(f"x{slot:03d}", rng.integers(0, 4, length, dtype=np.uint8))
        for slot in range(count)
    ]


def _query(records, number=0, span=90):
    source = records[number]
    return Sequence(f"q{number}", source.codes[20 : 20 + span].copy())


@pytest.fixture()
def populated_registry():
    registry = MetricsRegistry()
    registry.count("queries", 7)
    registry.count("store.bytes_read", 123)
    registry.set_gauge("batch.workers", 4)
    histogram = registry.histogram("coarse_seconds")
    for value in (0.001, 0.004, 0.2):
        histogram.observe(value)
    return registry


class TestPrometheusExporter:
    def test_round_trip_counters_and_gauges(self, populated_registry):
        text = prometheus_text(populated_registry)
        families = parse_prometheus_text(text)
        assert families["repro_queries_total"][()] == 7
        assert families["repro_store_bytes_read_total"][()] == 123
        assert families["repro_batch_workers"][()] == 4

    def test_histogram_sum_count_and_cumulative_buckets(
        self, populated_registry
    ):
        families = parse_prometheus_text(
            prometheus_text(populated_registry)
        )
        assert families["repro_coarse_seconds_count"][()] == 3
        assert families["repro_coarse_seconds_sum"][()] == pytest.approx(
            0.205
        )
        buckets = families["repro_coarse_seconds_bucket"]
        inf_key = (("le", "+Inf"),)
        assert buckets[inf_key] == 3
        # Cumulative: every bucket's count <= the +Inf count, and the
        # counts are non-decreasing in bound order.
        bounds = sorted(
            (
                float(labels[0][1])
                for labels in buckets
                if labels[0][1] != "+Inf"
            )
        )
        counts = []
        for bound in bounds:
            for labels, value in buckets.items():
                if labels[0][1] != "+Inf" and float(labels[0][1]) == bound:
                    counts.append(value)
        assert counts == sorted(counts)
        assert all(count <= 3 for count in counts)

    def test_metric_names_are_sanitised(self):
        registry = MetricsRegistry()
        registry.count("batch.worker.search-batch_0.queries", 2)
        text = prometheus_text(registry)
        families = parse_prometheus_text(text)
        (name,) = families
        assert name == "repro_batch_worker_search_batch_0_queries_total"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not prometheus\n")

    def test_json_snapshot_envelope(self, populated_registry):
        document = metrics_json(populated_registry, meta={"queries": 7})
        assert document["schema"] == "repro.metrics/v1"
        assert document["meta"] == {"queries": 7}
        assert document["counters"]["queries"] == 7
        assert document["histograms"]["coarse_seconds"]["count"] == 3

    def test_write_metrics_picks_format_by_suffix(
        self, populated_registry, tmp_path
    ):
        json_path = write_metrics(
            populated_registry, tmp_path / "m.json", meta={}
        )
        prom_path = write_metrics(
            populated_registry, tmp_path / "m.prom", meta={}
        )
        loaded = json.loads(json_path.read_text())
        assert loaded["counters"]["queries"] == 7
        assert "repro_queries_total 7" in prom_path.read_text()


class TestTraceEvents:
    def test_events_have_required_fields(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as span:
                span.annotate("candidates", 3)
        events = trace_events(tracer)
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0
            assert {"name", "pid", "tid", "cat"} <= set(event)
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["args"] == {"candidates": 3}

    def test_document_is_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        target = write_trace(tracer, tmp_path / "t.json", meta={"n": 1})
        document = json.loads(target.read_text())
        assert document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"] == {"n": 1}

    def test_sharded_search_emits_one_span_per_shard(self, tmp_path):
        records = _records()
        instruments = Instruments()
        with Database.create(
            records, tmp_path / "db", params=PARAMS, shards=3
        ) as db:
            db.set_instruments(instruments)
            db.search(_query(records), top_k=5)
        events = trace_events(instruments.tracer)
        coarse_shards = sorted(
            event["args"]["shard"]
            for event in events
            if event["name"].endswith(".coarse")
        )
        assert coarse_shards == [0, 1, 2]
        names = {event["name"] for event in events}
        assert {"search", "coarse", "merge", "fine"} <= names
        document = trace_event_json(instruments.tracer)
        json.loads(json.dumps(document))  # serialisable end to end
        merge = next(e for e in events if e["name"] == "merge")
        assert merge["args"]["shards_contributing"] >= 1


class TestFormatSpanTree:
    def test_depth_indentation_and_annotations(self):
        tracer = Tracer()
        with tracer.span("search"):
            with tracer.span("coarse") as span:
                span.annotate("candidates", 12)
        text = format_span_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("search")
        assert lines[1].startswith("  coarse")
        assert "[candidates=12]" in lines[1]
        assert "ms" in lines[0]

    def test_empty_tracer_formats_to_empty(self):
        assert format_span_tree(Tracer()) == ""

    def test_drop_count_is_reported(self):
        tracer = Tracer(max_roots=2)
        for number in range(5):
            with tracer.span(f"r{number}"):
                pass
        text = format_span_tree(tracer)
        assert "3 span tree(s) dropped" in text


class TestEngineTraceIntegration:
    def test_partitioned_search_trace_loads(self, tmp_path):
        records = _records()
        instruments = Instruments()
        engine = PartitionedSearchEngine(
            build_index(records, PARAMS),
            MemorySequenceSource(records),
            coarse_cutoff=10,
            instruments=instruments,
        )
        engine.search(_query(records), top_k=5)
        events = trace_events(instruments.tracer)
        assert {event["name"] for event in events} == {
            "search",
            "coarse",
            "fine",
        }
        # Child spans nest inside the search span's time window.
        search = next(e for e in events if e["name"] == "search")
        for event in events:
            assert event["ts"] >= search["ts"] - 1e-6
            assert (
                event["ts"] + event["dur"]
                <= search["ts"] + search["dur"] + 1e-6
            )

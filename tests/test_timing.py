"""Unit tests for timing helpers."""

import time

from repro.eval.timing import Timer, TimingSummary


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert 0.005 < timer.seconds < 1.0

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            time.sleep(0.01)
        assert timer.seconds >= first


class TestTimingSummary:
    def test_accumulates(self):
        summary = TimingSummary("demo")
        summary.add(0.1)
        summary.add(0.3)
        assert summary.total == 0.4
        assert summary.mean == 0.2
        assert summary.median == 0.2

    def test_empty_summary(self):
        summary = TimingSummary("empty")
        assert summary.total == 0.0
        assert summary.mean == 0.0
        assert summary.median == 0.0

    def test_describe_contains_label_and_counts(self):
        summary = TimingSummary("scan")
        summary.add(0.25)
        text = summary.describe()
        assert "scan" in text
        assert "n=1" in text
        assert "250.0ms" in text

"""Unit tests for the partitioned search engine."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.search.engine import PartitionedSearchEngine
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def setup(small_workload, small_index, small_source):
    collection, queries = small_workload
    engine = PartitionedSearchEngine(
        small_index, small_source, coarse_cutoff=20
    )
    return collection, queries, engine


class TestValidation:
    def test_cutoff_positive(self, small_index, small_source):
        with pytest.raises(SearchError):
            PartitionedSearchEngine(small_index, small_source, coarse_cutoff=0)

    def test_collection_agreement_checked(self, small_index):
        short_source = MemorySequenceSource(
            [Sequence.from_text("only", "ACGTACGT")]
        )
        with pytest.raises(SearchError, match="source holds"):
            PartitionedSearchEngine(small_index, short_source)

    def test_top_k_positive(self, setup):
        _, queries, engine = setup
        with pytest.raises(SearchError):
            engine.search(queries[0].query, top_k=0)

    def test_query_shorter_than_interval(self, setup):
        _, _, engine = setup
        with pytest.raises(SearchError, match="shorter than the interval"):
            engine.search(Sequence.from_text("tiny", "ACG"))


class TestSearch:
    def test_finds_query_source(self, setup):
        _, queries, engine = setup
        for case in queries:
            report = engine.search(case.query, top_k=5)
            assert report.best() is not None
            assert report.best().ordinal == case.source_ordinal

    def test_family_members_rank_highly(self, setup):
        _, queries, engine = setup
        for case in queries:
            report = engine.search(case.query, top_k=10)
            found = set(report.ordinals()) & case.relevant
            assert len(found) >= len(case.relevant) - 1

    def test_report_metadata(self, setup):
        _, queries, engine = setup
        report = engine.search(queries[0].query, top_k=4)
        assert report.query_identifier == queries[0].query.identifier
        assert len(report.hits) <= 4
        assert 0 < report.candidates_examined <= 20
        assert report.coarse_seconds >= 0.0
        assert report.fine_seconds >= 0.0
        assert report.total_seconds == pytest.approx(
            report.coarse_seconds + report.fine_seconds
        )

    def test_accepts_raw_code_arrays(self, setup):
        collection, _, engine = setup
        raw = collection.sequences[0].codes[:100]
        report = engine.search(np.asarray(raw))
        assert report.query_identifier == "query"
        assert report.best().ordinal == 0

    def test_hits_sorted_by_alignment_score(self, setup):
        _, queries, engine = setup
        report = engine.search(queries[1].query, top_k=10)
        scores = [hit.score for hit in report.hits]
        assert scores == sorted(scores, reverse=True)

    def test_search_batch_preserves_order(self, setup):
        _, queries, engine = setup
        reports = engine.search_batch([case.query for case in queries[:3]])
        assert [report.query_identifier for report in reports] == [
            case.query.identifier for case in queries[:3]
        ]

    def test_min_fine_score_filters_noise(self, small_index, small_source, setup):
        _, queries, _ = setup
        strict = PartitionedSearchEngine(
            small_index,
            small_source,
            coarse_cutoff=50,
            min_fine_score=100,
        )
        report = strict.search(queries[0].query, top_k=50)
        assert all(hit.score >= 100 for hit in report.hits)

    def test_cutoff_one_returns_at_most_one_candidate(self, small_index, small_source, setup):
        _, queries, _ = setup
        narrow = PartitionedSearchEngine(
            small_index, small_source, coarse_cutoff=1
        )
        report = narrow.search(queries[0].query)
        assert report.candidates_examined <= 1

    def test_diagonal_scorer_end_to_end(self, small_index, small_source, setup):
        _, queries, _ = setup
        engine = PartitionedSearchEngine(
            small_index,
            small_source,
            coarse_scorer="diagonal",
            coarse_cutoff=20,
        )
        report = engine.search(queries[0].query, top_k=5)
        assert report.best().ordinal == queries[0].source_ordinal


class TestDifferentialParity:
    """One logical collection, three layouts, identical engine answers.

    The heavy lifting lives in the session-scoped ``parity_worlds``
    fixture (single index vs sharded vs incrementally-grown
    base+delta+tombstone database); here the single-engine fine modes
    must agree across all three.
    """

    @pytest.mark.parametrize("fine_mode", ["full", "frames"])
    def test_fine_modes_agree_across_layouts(self, parity_worlds, fine_mode):
        parity_worlds.check(fine_mode=fine_mode)

    def test_tight_cutoff_agrees_across_layouts(self, parity_worlds):
        parity_worlds.check(coarse_cutoff=8, top_k=5)

"""Unit tests for the BLAST-style baseline searcher."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.blast_like import BlastLikeSearcher
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(71)
    made = [
        Sequence(f"bl{slot}", rng.integers(0, 4, 250, dtype=np.uint8))
        for slot in range(20)
    ]
    relative = made[14].codes.copy()
    relative[100:200] = made[2].codes[100:200]
    made[14] = Sequence("bl14", relative)
    return made


@pytest.fixture(scope="module")
def searcher(records):
    return BlastLikeSearcher(records, seed_length=11, hsp_threshold=16)


class TestValidation:
    def test_empty_collection(self):
        with pytest.raises(SearchError):
            BlastLikeSearcher([])

    def test_max_extensions_positive(self, records):
        with pytest.raises(SearchError):
            BlastLikeSearcher(records, max_extensions=0)

    def test_short_query_rejected(self, searcher):
        with pytest.raises(SearchError, match="seed"):
            searcher.search(Sequence.from_text("q", "ACGTACGT"))


class TestSearch:
    def test_finds_source_sequence(self, searcher, records):
        query = records[6].codes[40:160]
        report = searcher.search(query, top_k=5)
        assert report.best().ordinal == 6

    def test_finds_planted_relative(self, searcher, records):
        query = records[2].codes[110:190]
        report = searcher.search(query, top_k=5)
        assert {hit.ordinal for hit in report.hits[:2]} == {2, 14}

    def test_unrelated_sequences_pruned_by_seeding(self, searcher, records):
        """With w=11 exact seeds, random unrelated sequences rarely pass:
        the answer list must be much shorter than the collection."""
        query = records[8].codes[:120]
        report = searcher.search(query, top_k=20)
        assert len(report.hits) < len(records) // 2

    def test_hsp_threshold_respected(self, records):
        lenient = BlastLikeSearcher(records, hsp_threshold=11)
        strict = BlastLikeSearcher(records, hsp_threshold=100)
        query = records[4].codes[:150]
        assert len(strict.search(query, top_k=20).hits) <= len(
            lenient.search(query, top_k=20).hits
        )

    def test_coarse_score_is_hsp_score(self, searcher, records):
        query = records[3].codes[20:140]
        best = searcher.search(query, top_k=1).best()
        assert best.coarse_score >= 16  # cleared the HSP threshold

    def test_visits_whole_collection(self, searcher, records):
        report = searcher.search(records[0].codes[:100])
        assert report.candidates_examined == len(records)

    def test_results_sorted(self, searcher, records):
        report = searcher.search(records[2].codes[100:200], top_k=10)
        scores = [hit.score for hit in report.hits]
        assert scores == sorted(scores, reverse=True)

    def test_batch(self, searcher, records):
        reports = searcher.search_batch(
            [records[0].slice(0, 80), records[1].slice(0, 80)], top_k=2
        )
        assert len(reports) == 2

    def test_extension_cap_does_not_lose_strong_answer(self, records):
        capped = BlastLikeSearcher(records, max_extensions=2)
        query = records[10].codes[50:170]
        report = capped.search(query, top_k=3)
        assert report.best().ordinal == 10

"""Unit and property tests for the integer codecs (all families)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.elias import EliasDeltaCodec, EliasGammaCodec
from repro.compression.golomb import GolombCodec, RiceCodec
from repro.compression.integer import (
    FixedWidthCodec,
    UnaryCodec,
    codec_names,
    make_codec,
)
from repro.compression.vbyte import VByteCodec
from repro.errors import BitStreamError, CodecError, CodecValueError

# Unary-quotient codecs (Golomb/Rice with small parameters) have code
# lengths linear in value/parameter, so property tests must bound the
# values or a single example costs billions of bits.
UNARY_QUOTIENT_CODECS = [
    GolombCodec(1),
    GolombCodec(2),
    GolombCodec(5),
    GolombCodec(64),
    RiceCodec(0),
    RiceCodec(4),
]
LOG_COST_CODECS = [
    EliasGammaCodec(),
    EliasDeltaCodec(),
    VByteCodec(),
    FixedWidthCodec(40),
]
ALL_CODECS = UNARY_QUOTIENT_CODECS + LOG_COST_CODECS

large_values = st.lists(st.integers(min_value=0, max_value=2**32), max_size=80)


@pytest.mark.parametrize(
    "codec", UNARY_QUOTIENT_CODECS, ids=lambda c: f"{c.name}-b{c.parameter}"
)
class TestUnaryQuotientCodecs:
    """Codecs whose length is linear in value/parameter: property values
    are scaled to the parameter, as real gap distributions are."""

    @given(data=st.data())
    def test_roundtrip(self, codec, data):
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=codec.parameter * 300),
                max_size=60,
            )
        )
        encoded = codec.encode_array(values)
        assert codec.decode_array(encoded, len(values)) == values


@pytest.mark.parametrize(
    "codec", LOG_COST_CODECS, ids=lambda c: f"{c.name}-{id(c) % 97}"
)
class TestLogCostCodecs:
    @given(values=large_values)
    def test_roundtrip(self, codec, values):
        data = codec.encode_array(values)
        assert codec.decode_array(data, len(values)) == values


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: f"{c.name}-{id(c) % 97}")
class TestAllCodecs:
    def test_rejects_negative(self, codec):
        with pytest.raises(CodecValueError):
            codec.encode_array([-1])

    def test_code_length_matches_encoding(self, codec):
        for value in [0, 1, 2, 7, 63, 1000, 4093]:
            writer = BitWriter()
            codec.encode_value(writer, value)
            assert writer.bit_length == codec.code_length(value)

    def test_empty_array(self, codec):
        assert codec.decode_array(codec.encode_array([]), 0) == []

    def test_truncated_stream_raises(self, codec):
        data = codec.encode_array([5])
        with pytest.raises(BitStreamError):
            codec.decode_array(data, 100)


class TestGammaLayout:
    def test_known_codes(self):
        # gamma(n) encodes n+1; n=0 -> "0" (1 bit), n=2 -> "1" "1" remainder.
        codec = EliasGammaCodec()
        assert codec.code_length(0) == 1
        assert codec.code_length(1) == 3
        assert codec.code_length(2) == 3
        assert codec.code_length(3) == 5

    def test_first_bits(self):
        writer = BitWriter()
        EliasGammaCodec().encode_value(writer, 0)
        assert writer.getvalue() == bytes([0b00000000])


class TestDeltaVsGamma:
    def test_delta_shorter_for_large_values(self):
        gamma = EliasGammaCodec()
        delta = EliasDeltaCodec()
        assert delta.code_length(10**6) < gamma.code_length(10**6)

    def test_gamma_shorter_for_tiny_values(self):
        gamma = EliasGammaCodec()
        delta = EliasDeltaCodec()
        assert gamma.code_length(1) <= delta.code_length(1)


class TestUnary:
    def test_roundtrip_small(self):
        codec = UnaryCodec()
        values = [0, 3, 1, 7, 0]
        assert codec.decode_array(codec.encode_array(values), 5) == values

    def test_code_length_linear(self):
        assert UnaryCodec().code_length(9) == 10


class TestFixedWidth:
    def test_width_must_be_positive(self):
        with pytest.raises(CodecValueError):
            FixedWidthCodec(0)

    def test_value_too_large_for_width(self):
        codec = FixedWidthCodec(4)
        with pytest.raises(CodecValueError):
            codec.encode_array([16])

    def test_boundary_value(self):
        codec = FixedWidthCodec(4)
        assert codec.decode_array(codec.encode_array([15]), 1) == [15]


class TestRegistry:
    def test_known_names(self):
        names = codec_names()
        for expected in ("gamma", "delta", "golomb", "rice", "vbyte", "unary"):
            assert expected in names

    def test_make_codec_with_kwargs(self):
        codec = make_codec("golomb", parameter=9)
        assert codec.parameter == 9

    def test_unknown_name_raises(self):
        with pytest.raises(CodecError, match="unknown codec"):
            make_codec("snappy")


class TestInterleavedStreams:
    """Different codecs must coexist in one bit stream (as postings do)."""

    def test_gamma_then_golomb_then_vbyte(self):
        gamma, golomb, vbyte = EliasGammaCodec(), GolombCodec(6), VByteCodec()
        writer = BitWriter()
        gamma.encode_value(writer, 12)
        golomb.encode_value(writer, 40)
        vbyte.encode_value(writer, 300)
        gamma.encode_value(writer, 0)
        reader = BitReader(writer.getvalue())
        assert gamma.decode_value(reader) == 12
        assert golomb.decode_value(reader) == 40
        assert vbyte.decode_value(reader) == 300
        assert gamma.decode_value(reader) == 0

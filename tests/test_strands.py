"""Unit tests for both-strand search and query-time frequency skipping."""

from dataclasses import fields

import numpy as np
import pytest

from repro.errors import SearchError
from repro.index.builder import IndexParameters, build_index
from repro.index.store import MemorySequenceSource
from repro.search.coarse import CoarseRanker
from repro.search.engine import PartitionedSearchEngine, _merge_strand_hits
from repro.search.results import SearchHit
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(101)
    records = [
        Sequence(f"st{slot}", rng.integers(0, 4, 400, dtype=np.uint8))
        for slot in range(30)
    ]
    index = build_index(records, IndexParameters(interval_length=8))
    source = MemorySequenceSource(records)
    return records, index, source


class TestBothStrands:
    def test_forward_query_still_found(self, setup):
        records, index, source = setup
        engine = PartitionedSearchEngine(
            index, source, coarse_cutoff=10, both_strands=True
        )
        query = records[4].slice(100, 260)
        report = engine.search(query, top_k=3)
        assert report.best().ordinal == 4
        assert report.best().strand == "+"

    def test_reverse_complement_query_found_on_minus_strand(self, setup):
        records, index, source = setup
        engine = PartitionedSearchEngine(
            index, source, coarse_cutoff=10, both_strands=True
        )
        query = records[9].slice(50, 210).reverse_complement()
        report = engine.search(query, top_k=3)
        assert report.best().ordinal == 9
        assert report.best().strand == "-"
        assert report.best().score == 160

    def test_single_strand_engine_misses_reverse_query(self, setup):
        records, index, source = setup
        engine = PartitionedSearchEngine(index, source, coarse_cutoff=10)
        query = records[9].slice(50, 210).reverse_complement()
        report = engine.search(query, top_k=3)
        best = report.best()
        assert best is None or best.score < 80

    def test_palindrome_free_merge_keeps_best_orientation(self, setup):
        records, index, source = setup
        engine = PartitionedSearchEngine(
            index, source, coarse_cutoff=30, both_strands=True
        )
        query = records[2].slice(0, 150)
        report = engine.search(query, top_k=10)
        # No ordinal may appear twice after the strand merge.
        ordinals = report.ordinals()
        assert len(ordinals) == len(set(ordinals))

    def test_both_strand_timing_accumulates(self, setup):
        records, index, source = setup
        single = PartitionedSearchEngine(index, source, coarse_cutoff=10)
        double = PartitionedSearchEngine(
            index, source, coarse_cutoff=10, both_strands=True
        )
        query = records[1].slice(0, 200)
        single_report = single.search(query)
        double_report = double.search(query)
        assert double_report.total_seconds > single_report.total_seconds * 1.2

    def test_candidates_examined_sums_both_orientations(self, setup):
        """Both-strand reports must charge the fine work of BOTH
        orientations, not just the busier one (regression: the count
        used to be the max of the two)."""
        records, index, source = setup
        single = PartitionedSearchEngine(index, source, coarse_cutoff=10)
        double = PartitionedSearchEngine(
            index, source, coarse_cutoff=10, both_strands=True
        )
        query = records[4].slice(100, 260)
        forward = single.search(query).candidates_examined
        reverse = single.search(
            query.reverse_complement()
        ).candidates_examined
        assert forward > 0 and reverse > 0
        assert double.search(query).candidates_examined == forward + reverse

    def test_frames_mode_with_both_strands(self, setup):
        records, index, source = setup
        engine = PartitionedSearchEngine(
            index, source, coarse_cutoff=10,
            fine_mode="frames", both_strands=True,
        )
        query = records[7].slice(120, 280).reverse_complement()
        report = engine.search(query, top_k=3)
        assert report.best().ordinal == 7
        assert report.best().strand == "-"


class TestStrandMerge:
    def test_reverse_hit_keeps_every_field(self):
        """A reverse-orientation winner must survive the merge with all
        its fields — the merge used to rebuild hits field-by-field and
        silently dropped any field it didn't name (e.g. evalue)."""
        reverse = SearchHit(
            ordinal=3,
            identifier="seq3",
            score=50,
            coarse_score=7.5,
            evalue=1e-3,
        )
        (merged,) = _merge_strand_hits([], [reverse])
        assert merged.strand == "-"
        for field in fields(SearchHit):
            if field.name == "strand":
                continue
            assert getattr(merged, field.name) == getattr(
                reverse, field.name
            ), f"merge dropped SearchHit.{field.name}"

    def test_better_forward_orientation_wins(self):
        forward = SearchHit(ordinal=1, identifier="s1", score=80)
        reverse = SearchHit(
            ordinal=1, identifier="s1", score=60, evalue=0.5
        )
        (merged,) = _merge_strand_hits([forward], [reverse])
        assert merged.strand == "+"
        assert merged.score == 80

    def test_better_reverse_orientation_wins(self):
        forward = SearchHit(ordinal=1, identifier="s1", score=40)
        reverse = SearchHit(
            ordinal=1, identifier="s1", score=90, coarse_score=3.0
        )
        (merged,) = _merge_strand_hits([forward], [reverse])
        assert merged.strand == "-"
        assert merged.score == 90
        assert merged.coarse_score == 3.0


class TestQueryTimeFrequencySkipping:
    def test_fraction_validation(self, setup):
        _, index, _ = setup
        with pytest.raises(SearchError):
            CoarseRanker(index, max_df_fraction=0.0)
        with pytest.raises(SearchError):
            CoarseRanker(index, max_df_fraction=1.5)

    def test_skipping_everything_returns_nothing(self, setup):
        records, index, _ = setup
        # Build a pathological index where one interval is everywhere.
        poly = [
            Sequence(f"p{slot}", np.zeros(60, dtype=np.uint8))
            for slot in range(10)
        ]
        poly_index = build_index(poly, IndexParameters(interval_length=4))
        ranker = CoarseRanker(poly_index, max_df_fraction=0.5)
        assert ranker.rank(np.zeros(30, dtype=np.uint8), cutoff=5) == []

    def test_rare_intervals_unaffected(self, setup):
        records, index, _ = setup
        permissive = CoarseRanker(index)
        strict = CoarseRanker(index, max_df_fraction=0.9)
        query = records[3].codes[:120]
        assert [c.ordinal for c in strict.rank(query, 5)] == [
            c.ordinal for c in permissive.rank(query, 5)
        ]

    def test_skipping_reduces_candidate_scores(self, setup):
        records, index, _ = setup
        query = records[5].codes[:120]
        permissive = CoarseRanker(index).rank(query, 1)
        strict = CoarseRanker(index, max_df_fraction=0.05).rank(query, 1)
        if strict:
            assert strict[0].coarse_score <= permissive[0].coarse_score

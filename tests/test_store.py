"""Unit tests for sequence stores (raw and direct coded)."""

import numpy as np
import pytest

from repro.errors import IndexFormatError, IndexLookupError
from repro.index.store import (
    MemorySequenceSource,
    SequenceStore,
    read_store,
    write_store,
)
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(21)
    made = [
        Sequence(f"s{slot}", rng.integers(0, 4, int(length), dtype=np.uint8),
                 description=f"demo {slot}")
        for slot, length in enumerate(rng.integers(5, 400, size=10))
    ]
    # One record with wildcards exercises the direct-coding side list.
    made.append(Sequence.from_text("wild", "ACGTNNRYACGT"))
    return made


class TestMemorySource:
    def test_basic_access(self, records):
        source = MemorySequenceSource(records)
        assert len(source) == len(records)
        assert source.identifier(3) == "s3"
        assert np.array_equal(source.codes(3), records[3].codes)
        assert source.record(3) is records[3]

    def test_out_of_range(self, records):
        source = MemorySequenceSource(records)
        with pytest.raises(IndexLookupError):
            source.codes(len(records))
        with pytest.raises(IndexLookupError):
            source.identifier(-1)


@pytest.mark.parametrize("coding", ["raw", "direct"])
class TestDiskStore:
    def test_roundtrip_every_record(self, records, tmp_path, coding):
        path = tmp_path / f"store_{coding}.rpsq"
        written = write_store(records, path, coding=coding)
        assert path.stat().st_size == written
        with read_store(path) as store:
            assert len(store) == len(records)
            for ordinal, record in enumerate(records):
                assert store.identifier(ordinal) == record.identifier
                assert np.array_equal(store.codes(ordinal), record.codes)
                assert store.record(ordinal) == record

    def test_random_access_is_order_independent(self, records, tmp_path, coding):
        path = tmp_path / f"ra_{coding}.rpsq"
        write_store(records, path, coding=coding)
        with read_store(path) as store:
            for ordinal in (7, 0, 10, 3, 10):
                assert np.array_equal(store.codes(ordinal), records[ordinal].codes)

    def test_out_of_range(self, records, tmp_path, coding):
        path = tmp_path / f"oob_{coding}.rpsq"
        write_store(records, path, coding=coding)
        with read_store(path) as store:
            with pytest.raises(IndexLookupError):
                store.codes(len(records))


class TestCodingChoice:
    def test_direct_is_smaller_than_raw(self, records, tmp_path):
        raw_path = tmp_path / "a.rpsq"
        direct_path = tmp_path / "b.rpsq"
        write_store(records, raw_path, coding="raw")
        write_store(records, direct_path, coding="direct")
        with read_store(raw_path) as raw, read_store(direct_path) as direct:
            assert direct.payload_bytes < raw.payload_bytes / 3

    def test_unknown_coding_rejected(self, records, tmp_path):
        with pytest.raises(IndexFormatError):
            write_store(records, tmp_path / "x.rpsq", coding="zip")


class TestCorruption:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rpsq"
        path.write_bytes(b"")
        with pytest.raises(IndexFormatError, match="empty"):
            SequenceStore(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rpsq"
        path.write_bytes(b"XXXX" + bytes(64))
        with pytest.raises(IndexFormatError, match="magic"):
            SequenceStore(path)

    def test_truncated_payload(self, records, tmp_path):
        path = tmp_path / "trunc.rpsq"
        write_store(records, path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(IndexFormatError, match="truncated"):
            SequenceStore(path)

    def test_close_idempotent(self, records, tmp_path):
        path = tmp_path / "c.rpsq"
        write_store(records, path)
        store = read_store(path)
        store.close()
        store.close()

"""Unit tests for query workloads."""

import pytest

from repro.errors import WorkloadError
from repro.sequences.mutate import MutationModel
from repro.workloads.queries import (
    make_background_queries,
    make_family_queries,
)
from repro.workloads.synthetic import WorkloadSpec, generate_collection


@pytest.fixture(scope="module")
def collection():
    return generate_collection(
        WorkloadSpec(num_families=4, family_size=3, num_background=20,
                     mean_length=400, seed=3)
    )


class TestFamilyQueries:
    def test_counts_and_lengths(self, collection):
        cases = make_family_queries(collection, 10, query_length=120, seed=1)
        assert len(cases) == 10
        assert all(len(case.query) <= 120 for case in cases)

    def test_relevant_is_source_family(self, collection):
        for case in make_family_queries(collection, 8, seed=2):
            family = collection.family_of(case.source_ordinal)
            assert family is not None
            assert case.relevant == collection.family_members(family)
            assert case.source_ordinal in case.relevant

    def test_query_window_is_verbatim_without_extra_mutation(self, collection):
        case = make_family_queries(collection, 1, query_length=100, seed=4)[0]
        source_text = collection.sequences[case.source_ordinal].text
        assert case.query.text in source_text

    def test_extra_mutation_diverges_query(self, collection):
        mutated = make_family_queries(
            collection, 1, query_length=100,
            extra_mutation=MutationModel(0.3, 0.0, 0.0), seed=4,
        )[0]
        source_text = collection.sequences[mutated.source_ordinal].text
        assert mutated.query.text not in source_text

    def test_window_longer_than_sequence_takes_whole(self, collection):
        cases = make_family_queries(collection, 3, query_length=10**6, seed=5)
        for case in cases:
            assert len(case.query) == len(
                collection.sequences[case.source_ordinal]
            )

    def test_identifier_names_family(self, collection):
        case = make_family_queries(collection, 1, seed=6)[0]
        family = collection.family_of(case.source_ordinal)
        assert f"fam{family:03d}" in case.query.identifier

    def test_determinism(self, collection):
        first = make_family_queries(collection, 5, seed=7)
        second = make_family_queries(collection, 5, seed=7)
        assert [c.query for c in first] == [c.query for c in second]

    def test_validation(self, collection):
        with pytest.raises(WorkloadError):
            make_family_queries(collection, 0)
        with pytest.raises(WorkloadError):
            make_family_queries(collection, 1, query_length=0)

    def test_requires_families(self):
        bare = generate_collection(
            WorkloadSpec(num_families=0, num_background=5,
                         mean_length=100, seed=1)
        )
        with pytest.raises(WorkloadError, match="families"):
            make_family_queries(bare, 1)


class TestBackgroundQueries:
    def test_relevant_is_source_only(self, collection):
        for case in make_background_queries(collection, 6, seed=8):
            assert case.relevant == {case.source_ordinal}
            assert collection.family_of(case.source_ordinal) is None

    def test_requires_background(self):
        families_only = generate_collection(
            WorkloadSpec(num_families=2, family_size=2, num_background=0,
                         mean_length=100, seed=1)
        )
        with pytest.raises(WorkloadError, match="background"):
            make_background_queries(families_only, 1)

    def test_validation(self, collection):
        with pytest.raises(WorkloadError):
            make_background_queries(collection, 0)

"""Unit tests for alignment scoring schemes."""

import numpy as np
import pytest

from repro.align.scoring import (
    SENTINEL_CODE,
    SENTINEL_SCORE,
    AffineScoringScheme,
    ScoringScheme,
)
from repro.errors import AlignmentError
from repro.sequences import alphabet


class TestValidation:
    def test_defaults_are_valid(self):
        scheme = ScoringScheme()
        assert scheme.match == 1
        assert scheme.mismatch == -1
        assert scheme.gap == -2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"match": 0},
            {"match": -1},
            {"mismatch": 0},
            {"mismatch": 1},
            {"gap": 0},
            {"gap": 1},
        ],
    )
    def test_bad_linear_parameters(self, kwargs):
        with pytest.raises(AlignmentError):
            ScoringScheme(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"match": 0}, {"mismatch": 0}, {"gap_open": 0}, {"gap_extend": 1}],
    )
    def test_bad_affine_parameters(self, kwargs):
        with pytest.raises(AlignmentError):
            AffineScoringScheme(**kwargs)


class TestPairScores:
    def test_matching_bases(self):
        scheme = ScoringScheme(match=2)
        assert scheme.score_pair(0, 0) == 2
        assert scheme.score_pair(3, 3) == 2

    def test_mismatching_bases(self):
        scheme = ScoringScheme(mismatch=-3)
        assert scheme.score_pair(0, 1) == -3

    def test_wildcards_never_match(self):
        scheme = ScoringScheme()
        n_code = alphabet.IUPAC_ALPHABET.index("N")
        assert scheme.score_pair(n_code, n_code) == scheme.mismatch
        assert scheme.score_pair(0, n_code) == scheme.mismatch

    def test_sentinel_is_deadly(self):
        scheme = ScoringScheme()
        assert scheme.score_pair(SENTINEL_CODE, 0) == SENTINEL_SCORE
        assert scheme.score_pair(0, SENTINEL_CODE) == SENTINEL_SCORE

    def test_affine_pair_scores_match_linear_rule(self):
        affine = AffineScoringScheme(match=2, mismatch=-2)
        assert affine.score_pair(1, 1) == 2
        assert affine.score_pair(1, 2) == -2
        assert affine.score_pair(SENTINEL_CODE, 1) == SENTINEL_SCORE


class TestProfile:
    def test_profile_rows_agree_with_score_pair(self):
        scheme = ScoringScheme(match=3, mismatch=-2)
        target = alphabet.encode("ACGTN")
        profile = scheme.target_profile(target)
        for query_code in range(4):
            for column, target_code in enumerate(target):
                assert profile[query_code, column] == scheme.score_pair(
                    query_code, int(target_code)
                )

    def test_wildcard_query_row(self):
        scheme = ScoringScheme()
        profile = scheme.target_profile(alphabet.encode("ACGT"))
        wildcard_row = scheme.profile_row(profile, 14)
        assert (wildcard_row == scheme.mismatch).all()

    def test_sentinel_columns(self):
        scheme = ScoringScheme()
        target = np.array([0, SENTINEL_CODE, 1], dtype=np.uint8)
        profile = scheme.target_profile(target)
        assert (profile[:, 1] == SENTINEL_SCORE).all()

    def test_profile_row_rejects_sentinel_query(self):
        scheme = ScoringScheme()
        profile = scheme.target_profile(alphabet.encode("ACGT"))
        with pytest.raises(AlignmentError):
            scheme.profile_row(profile, SENTINEL_CODE)


class TestSentinelRun:
    def test_run_blocks_maximum_score_bridge(self):
        scheme = ScoringScheme(match=1, gap=-2)
        run = scheme.sentinel_run_length(100)
        # Crossing the run costs more than any alignment could earn.
        assert run * abs(scheme.gap) > scheme.max_alignment_score(100)

    def test_run_scales_with_query_length(self):
        scheme = ScoringScheme()
        assert scheme.sentinel_run_length(1000) > scheme.sentinel_run_length(10)

    def test_max_alignment_score(self):
        assert ScoringScheme(match=2).max_alignment_score(50) == 100

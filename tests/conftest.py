"""Shared fixtures: small deterministic collections and engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.index.builder import IndexParameters, build_index

# One profile for the whole suite: wall-clock deadlines are flaky on
# shared machines and several codecs/DP kernels have legitimately
# value-dependent cost.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
from repro.index.store import MemorySequenceSource
from repro.sequences.record import Sequence
from repro.workloads.queries import make_family_queries
from repro.workloads.synthetic import WorkloadSpec, generate_collection


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20260705)


def random_sequence(
    rng: np.random.Generator, identifier: str, length: int
) -> Sequence:
    """A uniform-random base sequence record."""
    return Sequence(
        identifier, rng.integers(0, 4, size=length, dtype=np.uint8)
    )


@pytest.fixture(scope="session")
def tiny_collection(rng) -> list[Sequence]:
    """Ten random 120-base sequences (fast unit-test material)."""
    return [random_sequence(rng, f"tiny{i}", 120) for i in range(10)]


@pytest.fixture(scope="session")
def small_workload():
    """A planted-family collection with queries: the integration substrate."""
    spec = WorkloadSpec(
        num_families=6,
        family_size=4,
        num_background=76,
        mean_length=400,
        seed=17,
    )
    collection = generate_collection(spec)
    queries = make_family_queries(collection, 6, query_length=150, seed=23)
    return collection, queries


@pytest.fixture(scope="session")
def small_index(small_workload):
    """A length-8 interval index over the small workload collection."""
    collection, _ = small_workload
    return build_index(
        list(collection.sequences), IndexParameters(interval_length=8)
    )


@pytest.fixture(scope="session")
def small_source(small_workload) -> MemorySequenceSource:
    collection, _ = small_workload
    return MemorySequenceSource(list(collection.sequences))

"""Shared fixtures: small deterministic collections and engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.index.builder import IndexParameters, build_index

# One profile for the whole suite: wall-clock deadlines are flaky on
# shared machines and several codecs/DP kernels have legitimately
# value-dependent cost.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
from repro.index.store import MemorySequenceSource
from repro.sequences.record import Sequence
from repro.workloads.queries import make_family_queries
from repro.workloads.synthetic import WorkloadSpec, generate_collection


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20260705)


def random_sequence(
    rng: np.random.Generator, identifier: str, length: int
) -> Sequence:
    """A uniform-random base sequence record."""
    return Sequence(
        identifier, rng.integers(0, 4, size=length, dtype=np.uint8)
    )


@pytest.fixture(scope="session")
def tiny_collection(rng) -> list[Sequence]:
    """Ten random 120-base sequences (fast unit-test material)."""
    return [random_sequence(rng, f"tiny{i}", 120) for i in range(10)]


@pytest.fixture(scope="session")
def small_workload():
    """A planted-family collection with queries: the integration substrate."""
    spec = WorkloadSpec(
        num_families=6,
        family_size=4,
        num_background=76,
        mean_length=400,
        seed=17,
    )
    collection = generate_collection(spec)
    queries = make_family_queries(collection, 6, query_length=150, seed=23)
    return collection, queries


@pytest.fixture(scope="session")
def small_index(small_workload):
    """A length-8 interval index over the small workload collection."""
    collection, _ = small_workload
    return build_index(
        list(collection.sequences), IndexParameters(interval_length=8)
    )


@pytest.fixture(scope="session")
def small_source(small_workload) -> MemorySequenceSource:
    collection, _ = small_workload
    return MemorySequenceSource(list(collection.sequences))


# -- recall against an exhaustive oracle ---------------------------------


def mean_oracle_recall(searcher, oracle, queries, top_k=4, **search_kwargs):
    """Mean tie-aware recall of ``searcher`` against an exhaustive oracle.

    For each query the oracle's top-``top_k`` scores set the bar and
    :func:`repro.eval.metrics.oracle_recall_at` measures how many of the
    searcher's top-``top_k`` answers reach it — tolerant of equal-score
    groups straddling the cutoff, which any coarse backend may order
    differently from the oracle without being wrong.  Extra keyword
    arguments (``coarse_cutoff`` etc.) go to ``searcher.search``.
    """
    from repro.eval.metrics import oracle_recall_at

    recalls = []
    for query in queries:
        oracle_scores = [
            hit.score for hit in oracle.search(query, top_k=top_k).hits
        ]
        report = searcher.search(query, top_k=top_k, **search_kwargs)
        recalls.append(
            oracle_recall_at(
                [hit.score for hit in report.hits], oracle_scores, top_k
            )
        )
    return sum(recalls) / len(recalls)


# -- differential parity: one logical collection, three layouts ---------

PARITY_PARAMS = IndexParameters(interval_length=6)


def parity_report_key(report):
    """Everything about a report that must be layout-independent."""
    return (
        [
            (hit.ordinal, hit.identifier, hit.score, hit.coarse_score,
             hit.strand, hit.evalue)
            for hit in report.hits
        ],
        report.candidates_examined,
    )


class ParityWorlds:
    """The same logical collection served from three on-disk layouts.

    ``single`` is a classic one-directory index of the survivors;
    ``sharded`` is a 3-shard build of the same survivors; ``live`` grew
    into the identical logical collection incrementally — a 2-shard
    base, two delta-shard ingests, then tombstones for every doomed
    record (interleaved through base *and* deltas, so logical ordinals
    shift across shard boundaries).  ``queries`` includes one cut from
    a doomed record: the deleted document must not appear in any hit
    list, only its surviving relatives.
    """

    def __init__(self, survivors, doomed, queries, single, sharded, live):
        self.survivors = survivors
        self.doomed = doomed
        self.queries = queries
        self.single = single
        self.sharded = sharded
        self.live = live

    def check(self, top_k=10, **engine_kwargs):
        """Assert hit-for-hit identical reports across the layouts.

        Returns the single-index reports, one per fixture query.
        """
        doomed_names = {record.identifier for record in self.doomed}
        reports = []
        for query in self.queries:
            expected = self.single.search(query, top_k=top_k, **engine_kwargs)
            key = parity_report_key(expected)
            for name, database in (
                ("sharded", self.sharded), ("live", self.live)
            ):
                got = database.search(query, top_k=top_k, **engine_kwargs)
                assert parity_report_key(got) == key, (
                    f"{name} layout diverged from the single index on "
                    f"query {query.identifier!r} with {engine_kwargs!r}"
                )
            assert not doomed_names & {h.identifier for h in expected.hits}
            reports.append(expected)
        return reports


@pytest.fixture(scope="session")
def parity_worlds(tmp_path_factory):
    from repro.database import Database

    root = tmp_path_factory.mktemp("parity")
    generator = np.random.default_rng(41)
    full: list[Sequence] = []
    for slot in range(45):
        codes = generator.integers(0, 4, 220, dtype=np.uint8)
        # Plant a shared fragment so queries have multi-shard answers.
        if slot % 3 == 0 and slot:
            codes[30:90] = full[0].codes[30:90]
        full.append(Sequence(f"par{slot:03d}", codes))
    doomed = [record for index, record in enumerate(full) if index % 5 == 0]
    survivors = [record for index, record in enumerate(full) if index % 5]

    queries = []
    for number, stored in enumerate((7, 12, 23, 31, 44)):
        queries.append(
            Sequence(f"q{number}", full[stored].codes[40:140].copy())
        )
    queries.append(Sequence("qdead", full[10].codes[40:140].copy()))

    single = Database.create(
        survivors, root / "single", params=PARITY_PARAMS, shards=1
    )
    sharded = Database.create(
        survivors, root / "sharded", params=PARITY_PARAMS, shards=3
    )
    live = Database.create(
        full[:27], root / "live", params=PARITY_PARAMS, shards=2
    )
    live.add_records(full[27:36])
    live.add_records(full[36:45])
    # Mixed targets: two by identifier, the rest by logical ordinal
    # (equal to stored ordinals here — no tombstones exist yet).
    live.delete(
        [doomed[0].identifier, doomed[1].identifier]
        + [index for index in range(10, 45, 5)]
    )
    worlds = ParityWorlds(survivors, doomed, queries, single, sharded, live)
    yield worlds
    for database in (single, sharded, live):
        database.close()

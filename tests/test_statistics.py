"""Unit tests for index statistics."""

import numpy as np
import pytest

from repro.index.builder import IndexParameters, build_index
from repro.index.statistics import (
    UNCOMPRESSED_DOC_BYTES,
    UNCOMPRESSED_POSITION_BYTES,
    collect_statistics,
)
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(5)
    records = [
        Sequence(f"s{slot}", rng.integers(0, 4, 300, dtype=np.uint8))
        for slot in range(10)
    ]
    return build_index(records, IndexParameters(interval_length=5))


class TestAggregates:
    def test_counts_match_index(self, index):
        stats = collect_statistics(index)
        assert stats.vocabulary_size == index.vocabulary_size
        assert stats.pointer_count == index.pointer_count
        assert stats.compressed_bytes == index.compressed_bytes
        assert stats.collection_sequences == 10
        assert stats.collection_bases == 3000

    def test_occurrences_cover_every_window(self, index):
        stats = collect_statistics(index)
        # 10 sequences of 300 bases, k=5, no wildcards: 296 windows each.
        assert stats.occurrence_count == 10 * 296

    def test_bits_per_pointer_positive_and_finite(self, index):
        stats = collect_statistics(index)
        assert 0 < stats.bits_per_pointer < 256

    def test_compression_beats_flat_records(self, index):
        stats = collect_statistics(index)
        expected_flat = (
            stats.pointer_count * UNCOMPRESSED_DOC_BYTES
            + stats.occurrence_count * UNCOMPRESSED_POSITION_BYTES
        )
        assert stats.uncompressed_bytes == expected_flat
        assert stats.compression_ratio > 1.0

    def test_df_quantiles_are_ordered(self, index):
        stats = collect_statistics(index)
        median, ninety, ninety_nine = stats.df_quantiles
        assert 1 <= median <= ninety <= ninety_nine

    def test_interval_length_recorded(self, index):
        stats = collect_statistics(index)
        assert stats.interval_length == 5
        assert stats.stride == 1

    def test_ratio_properties_of_empty_stats(self):
        from repro.index.statistics import IndexStatistics

        stats = IndexStatistics(4, 1, 0, 0, 0, 0, 0, 0, (0, 0, 0))
        assert stats.bits_per_pointer == 0.0
        assert stats.compression_ratio == 0.0
        assert stats.index_to_collection_ratio == 0.0

"""Round-trip and tier tests for the vectorised block decoder.

Every decode surface — per-list, grouped batch, flat batch, full
postings with offsets — must be bit-identical across the kernel tiers,
including which errors surface: the vector tiers are allowed to be
faster, never different.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import fastunpack
from repro.errors import CodecError, ReproError
from repro.index.postings import PostingEntry, PostingsCodec, PostingsContext

CONTEXT = PostingsContext(num_sequences=100, total_length=50_000)

#: Every runnable tier (a "numba" request degrades to numpy when the
#: compiler is absent, so this is always a valid decode matrix).
ALL_TIERS = ("python", "numpy", "numba")


def make_entries(spec):
    return [
        PostingEntry(doc, np.array(positions, dtype=np.int64))
        for doc, positions in spec
    ]


def encode_batch(codec, batch, context=CONTEXT):
    """Encode a list of posting-list specs into (blobs, dfs, cfs)."""
    blobs, dfs, cfs = [], [], []
    for spec in batch:
        entries = make_entries(spec)
        blobs.append(codec.encode(entries, context))
        dfs.append(len(spec))
        cfs.append(sum(len(positions) for _, positions in spec))
    return blobs, dfs, cfs


def flat_reference(codec, batch, context=CONTEXT):
    """The flat layout derived from the scalar per-list decode."""
    docs_parts, counts_parts = [], []
    blobs, dfs, cfs = encode_batch(codec, batch, context)
    with fastunpack.forced_tier("python"):
        for blob, df, cf in zip(blobs, dfs, cfs):
            entries = codec.decode(blob, df, cf, context)
            docs_parts.append([entry.sequence for entry in entries])
            counts_parts.append(
                [entry.positions.shape[0] for entry in entries]
            )
    docs = np.array(
        [doc for part in docs_parts for doc in part], dtype=np.int64
    )
    counts = np.array(
        [count for part in counts_parts for count in part], dtype=np.int64
    )
    return docs, counts


@st.composite
def posting_batches(draw):
    """A batch of valid posting lists over the shared context."""
    num_lists = draw(st.integers(min_value=1, max_value=8))
    batch = []
    for _ in range(num_lists):
        num_docs = draw(st.integers(min_value=1, max_value=10))
        docs = sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=99),
                    min_size=num_docs,
                    max_size=num_docs,
                )
            )
        )
        batch.append(
            [
                (
                    doc,
                    sorted(
                        draw(
                            st.sets(
                                st.integers(min_value=0, max_value=499),
                                min_size=1,
                                max_size=6,
                            )
                        )
                    ),
                )
                for doc in docs
            ]
        )
    return batch


class TestTierResolution:
    def test_unknown_tier_rejected(self):
        with pytest.raises(ReproError):
            fastunpack.resolve_tier("lzw")

    def test_numba_request_degrades_silently(self):
        resolved = fastunpack.resolve_tier("numba")
        if fastunpack.numba_available():
            assert resolved == "numba"
        else:
            assert resolved == "numpy"

    def test_auto_resolves_to_a_vector_tier(self):
        assert fastunpack.resolve_tier("auto") in ("numba", "numpy")

    def test_environment_variable_is_read(self, monkeypatch):
        monkeypatch.setenv(fastunpack.KERNEL_ENV_VAR, "python")
        assert fastunpack.resolve_tier(None) == "python"
        monkeypatch.setenv(fastunpack.KERNEL_ENV_VAR, "")
        assert fastunpack.resolve_tier(None) in ("numba", "numpy")
        monkeypatch.setenv(fastunpack.KERNEL_ENV_VAR, "qwerty")
        with pytest.raises(ReproError):
            fastunpack.resolve_tier(None)

    def test_forced_tier_restores_previous(self):
        before = fastunpack.active_tier()
        with fastunpack.forced_tier("python"):
            assert fastunpack.active_tier() == "python"
        assert fastunpack.active_tier() == before


class TestFlatRoundTrip:
    @settings(deadline=None, max_examples=40)
    @given(posting_batches())
    def test_every_tier_matches_the_scalar_decode(self, batch):
        codec = PostingsCodec()
        blobs, dfs, cfs = encode_batch(codec, batch)
        docs_ref, counts_ref = flat_reference(codec, batch)
        for tier in ALL_TIERS:
            with fastunpack.forced_tier(tier):
                docs, counts = codec.decode_docs_counts_flat(
                    blobs, dfs, CONTEXT, cfs=cfs
                )
            assert np.array_equal(docs, docs_ref), tier
            assert np.array_equal(counts, counts_ref), tier

    def test_single_entry_lists(self):
        codec = PostingsCodec()
        batch = [[(0, [5])], [(99, [0, 499])], [(42, [250])]]
        blobs, dfs, cfs = encode_batch(codec, batch)
        docs_ref, counts_ref = flat_reference(codec, batch)
        for tier in ALL_TIERS:
            with fastunpack.forced_tier(tier):
                docs, counts = codec.decode_docs_counts_flat(
                    blobs, dfs, CONTEXT, cfs=cfs
                )
            assert np.array_equal(docs, docs_ref)
            assert np.array_equal(counts, counts_ref)

    def test_empty_batch(self):
        codec = PostingsCodec()
        for tier in ALL_TIERS:
            with fastunpack.forced_tier(tier):
                docs, counts = codec.decode_docs_counts_flat(
                    [], [], CONTEXT, cfs=[]
                )
            assert docs.shape == (0,)
            assert counts.shape == (0,)

    def test_parameter_one_lists(self):
        # Every document present: the doc-gap Golomb parameter collapses
        # to 1 (pure unary), the narrowest remainder field there is.
        context = PostingsContext(num_sequences=8, total_length=5_000)
        codec = PostingsCodec()
        batch = [
            [(doc, [doc * 3 + 1]) for doc in range(8)],
            [(doc, [10, 20]) for doc in range(8)],
        ]
        blobs, dfs, cfs = encode_batch(codec, batch, context)
        docs_ref, counts_ref = flat_reference(codec, batch, context)
        for tier in ALL_TIERS:
            with fastunpack.forced_tier(tier):
                docs, counts = codec.decode_docs_counts_flat(
                    blobs, dfs, context, cfs=cfs
                )
            assert np.array_equal(docs, docs_ref)
            assert np.array_equal(counts, counts_ref)

    def test_wide_parameter_lists_fall_back_identically(self):
        # A huge universe pushes the Golomb remainder field past the
        # 32-bit window the table reader serves; those lanes must take
        # the scalar fallback and still return identical values.
        context = PostingsContext(
            num_sequences=2**40, total_length=5_000
        )
        codec = PostingsCodec()
        batch = [
            [(0, [5]), (2**30, [7]), (2**39, [1, 2])],
            [(123_456_789, [10])],
            [(1, [3]), (2, [4]), (2**35 + 17, [5])],
        ] * 2
        blobs, dfs, cfs = encode_batch(codec, batch, context)
        docs_ref, counts_ref = flat_reference(codec, batch, context)
        for tier in ALL_TIERS:
            with fastunpack.forced_tier(tier):
                docs, counts = codec.decode_docs_counts_flat(
                    blobs, dfs, context, cfs=cfs
                )
            assert np.array_equal(docs, docs_ref), tier
            assert np.array_equal(counts, counts_ref), tier

    def test_truncated_blob_raises_on_every_tier(self):
        codec = PostingsCodec()
        batch = [[(doc, [doc + 1, doc + 50]) for doc in range(0, 60, 3)]]
        blobs, dfs, cfs = encode_batch(codec, batch)
        clipped = [blobs[0][: max(1, len(blobs[0]) // 4)]]
        for tier in ALL_TIERS:
            with fastunpack.forced_tier(tier):
                with pytest.raises(CodecError):
                    codec.decode_docs_counts_flat(
                        clipped, dfs, CONTEXT, cfs=None
                    )


class TestPostingsBatch:
    @settings(deadline=None, max_examples=25)
    @given(posting_batches())
    def test_positions_identical_across_tiers(self, batch):
        codec = PostingsCodec()
        blobs, dfs, cfs = encode_batch(codec, batch)
        with fastunpack.forced_tier("python"):
            reference = [
                codec.decode(blob, df, cf, CONTEXT)
                for blob, df, cf in zip(blobs, dfs, cfs)
            ]
        for tier in ALL_TIERS:
            with fastunpack.forced_tier(tier):
                decoded = codec.decode_batch(blobs, dfs, cfs, CONTEXT)
            assert len(decoded) == len(reference)
            for got, expected in zip(decoded, reference):
                assert len(got) == len(expected)
                for a, b in zip(got, expected):
                    assert a.sequence == b.sequence
                    assert np.array_equal(a.positions, b.positions)

    def test_grouped_batch_matches_per_list(self):
        codec = PostingsCodec()
        batch = [
            [(doc, [doc, doc + 7]) for doc in range(0, 40, 5)],
            [(3, [1, 2, 3, 4])],
            [(doc, [99]) for doc in (1, 2, 50, 99)],
        ]
        blobs, dfs, cfs = encode_batch(codec, batch)
        with fastunpack.forced_tier("python"):
            expected = [
                codec.decode_docs_counts(blob, df, CONTEXT)
                for blob, df in zip(blobs, dfs)
            ]
        for tier in ALL_TIERS:
            with fastunpack.forced_tier(tier):
                results = codec.decode_docs_counts_batch(
                    blobs, dfs, CONTEXT, cfs=cfs
                )
            for got, want in zip(results, expected):
                assert np.array_equal(got[0], want[0])
                assert np.array_equal(got[1], want[1])

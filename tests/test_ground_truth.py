"""Unit tests for the exhaustive-search oracle."""

import numpy as np
import pytest

from repro.eval.ground_truth import compute_ground_truth
from repro.search.exhaustive import ExhaustiveSearcher
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def oracle_setup():
    rng = np.random.default_rng(81)
    records = [
        Sequence(f"g{slot}", rng.integers(0, 4, 180, dtype=np.uint8))
        for slot in range(12)
    ]
    searcher = ExhaustiveSearcher(records, max_query_length=128)
    queries = [records[2].slice(10, 90), records[7].slice(40, 120)]
    truth = compute_ground_truth(searcher, queries)
    return records, searcher, queries, truth


class TestGroundTruth:
    def test_one_truth_per_query(self, oracle_setup):
        _, _, queries, truth = oracle_setup
        assert len(truth) == len(queries)
        assert truth[0].query_identifier == queries[0].identifier

    def test_scores_cover_collection(self, oracle_setup):
        records, _, _, truth = oracle_setup
        assert truth[0].scores.shape == (len(records),)

    def test_ranking_sorted_by_score(self, oracle_setup):
        _, _, _, truth = oracle_setup
        for entry in truth.truths:
            ranked_scores = entry.scores[entry.ranking]
            assert (np.diff(ranked_scores) <= 0).all()

    def test_ranking_contains_only_positive_scores(self, oracle_setup):
        _, _, _, truth = oracle_setup
        for entry in truth.truths:
            assert (entry.scores[entry.ranking] > 0).all()

    def test_source_sequence_ranks_first(self, oracle_setup):
        _, _, _, truth = oracle_setup
        assert truth[0].ranking[0] == 2
        assert truth[1].ranking[0] == 7

    def test_relevant_threshold(self, oracle_setup):
        _, _, _, truth = oracle_setup
        entry = truth[0]
        tight = entry.relevant(int(entry.scores.max()))
        loose = entry.relevant(1)
        assert tight == {2}
        assert tight <= loose

    def test_top_helper(self, oracle_setup):
        _, _, _, truth = oracle_setup
        assert truth[0].top(1) == [2]
        assert len(truth[0].top(100)) == truth[0].ranking.shape[0]

    def test_truth_matches_search_reports(self, oracle_setup):
        _, searcher, queries, truth = oracle_setup
        report = searcher.search(queries[0], top_k=5)
        assert report.ordinals() == truth[0].top(5)

"""Unit tests for the fine (alignment-phase) searcher."""

import numpy as np
import pytest

from repro.align.kernel import best_local_score
from repro.align.scoring import ScoringScheme
from repro.index.store import MemorySequenceSource
from repro.search.fine import FineSearcher
from repro.search.results import CoarseCandidate
from repro.sequences.record import Sequence


@pytest.fixture(scope="module")
def source():
    rng = np.random.default_rng(41)
    records = [
        Sequence(f"f{slot}", rng.integers(0, 4, 150, dtype=np.uint8))
        for slot in range(8)
    ]
    return MemorySequenceSource(records)


def candidates_for(*ordinals: int) -> list[CoarseCandidate]:
    return [CoarseCandidate(ordinal, 10.0 - slot)
            for slot, ordinal in enumerate(ordinals)]


class TestAlignment:
    def test_scores_match_direct_alignment(self, source):
        searcher = FineSearcher(source)
        query = source.codes(2)[20:80]
        hits = searcher.align_candidates(query, candidates_for(0, 2, 5))
        scores = {hit.ordinal: hit.score for hit in hits}
        for ordinal in (0, 2, 5):
            expected = best_local_score(
                query, source.codes(ordinal), ScoringScheme()
            )
            if expected >= 1:
                assert scores[ordinal] == expected

    def test_results_sorted_by_score(self, source):
        searcher = FineSearcher(source)
        query = source.codes(3)[10:90]
        hits = searcher.align_candidates(
            query, candidates_for(*range(len(source)))
        )
        assert [hit.score for hit in hits] == sorted(
            (hit.score for hit in hits), reverse=True
        )
        assert hits[0].ordinal == 3

    def test_min_score_filters(self, source):
        searcher = FineSearcher(source)
        query = source.codes(1)[0:60]
        all_hits = searcher.align_candidates(
            query, candidates_for(*range(len(source))), min_score=1
        )
        strict = searcher.align_candidates(
            query, candidates_for(*range(len(source))), min_score=40
        )
        assert len(strict) <= len(all_hits)
        assert all(hit.score >= 40 for hit in strict)

    def test_empty_candidates(self, source):
        searcher = FineSearcher(source)
        assert searcher.align_candidates(source.codes(0)[:30], []) == []

    def test_empty_query(self, source):
        searcher = FineSearcher(source)
        empty = np.empty(0, dtype=np.uint8)
        assert searcher.align_candidates(empty, candidates_for(0)) == []

    def test_coarse_scores_carried_through(self, source):
        searcher = FineSearcher(source)
        query = source.codes(4)[0:70]
        hits = searcher.align_candidates(query, [CoarseCandidate(4, 42.5)])
        assert hits[0].coarse_score == 42.5

    def test_identifiers_resolved(self, source):
        searcher = FineSearcher(source)
        query = source.codes(6)[0:70]
        hits = searcher.align_candidates(query, candidates_for(6))
        assert hits[0].identifier == "f6"

    def test_deterministic_tie_breaking(self, source):
        searcher = FineSearcher(source)
        # Identical candidate twice under different ordinals is impossible,
        # so check determinism by running twice.
        query = source.codes(0)[0:50]
        first = searcher.align_candidates(query, candidates_for(0, 1, 2, 3))
        second = searcher.align_candidates(query, candidates_for(0, 1, 2, 3))
        assert first == second

    def test_custom_scheme_respected(self, source):
        heavy_gap = ScoringScheme(match=1, mismatch=-1, gap=-10)
        searcher = FineSearcher(source, heavy_gap)
        query = source.codes(5)[10:70]
        hits = searcher.align_candidates(query, candidates_for(5))
        expected = best_local_score(query, source.codes(5), heavy_gap)
        assert hits[0].score == expected

"""Canonical benchmark documents and the regression gate.

The end-to-end property the CI job depends on: an artificially slowed
run of the quick suite must trip ``repro bench --compare`` and exit
nonzero, while comparing a run against itself must pass.
"""

from types import SimpleNamespace

import pytest

from repro.bench import (
    BenchDocument,
    compare_documents,
    metric,
    run_quick,
)
from repro.bench.compare import parse_threshold_overrides, threshold_for
from repro.bench.runner import column_direction, flatten_table
from repro.cli import main
from repro.errors import ReproError


def _document(suite="t", **values):
    document = BenchDocument(suite)
    for name, (value, direction) in values.items():
        document.add(name, value, direction=direction)
    return document


class TestSchema:
    def test_metric_rejects_unknown_direction(self):
        with pytest.raises(ReproError):
            metric(1.0, direction="sideways")

    def test_round_trip(self, tmp_path):
        document = _document(
            "roundtrip", a=(1.5, "lower"), b=(2.0, "higher")
        )
        document.meta["note"] = "x"
        target = document.write(tmp_path / "b.json")
        loaded = BenchDocument.load(target)
        assert loaded.suite == "roundtrip"
        assert loaded.meta["note"] == "x"
        assert loaded.value("a") == 1.5
        assert loaded.metrics["b"]["direction"] == "higher"

    def test_load_rejects_wrong_schema(self, tmp_path):
        target = tmp_path / "wrong.json"
        target.write_text('{"schema": "repro.profile/v1"}')
        with pytest.raises(ReproError):
            BenchDocument.load(target)

    def test_load_rejects_garbage(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("not json")
        with pytest.raises(ReproError):
            BenchDocument.load(target)


class TestCompare:
    def test_lower_direction_regression(self):
        baseline = _document("t", ms=(10.0, "lower"))
        current = _document("t", ms=(20.0, "lower"))
        report = compare_documents(baseline, current)
        assert not report.ok
        assert report.regressions[0].name == "ms"

    def test_lower_direction_within_threshold(self):
        baseline = _document("t", ms=(10.0, "lower"))
        current = _document("t", ms=(14.0, "lower"))
        assert compare_documents(baseline, current).ok

    def test_higher_direction_regression(self):
        baseline = _document("t", qps=(100.0, "higher"))
        current = _document("t", qps=(40.0, "higher"))
        assert not compare_documents(baseline, current).ok

    def test_improvement_never_flags(self):
        baseline = _document(
            "t", ms=(10.0, "lower"), qps=(100.0, "higher")
        )
        current = _document(
            "t", ms=(1.0, "lower"), qps=(900.0, "higher")
        )
        assert compare_documents(baseline, current).ok

    def test_info_metrics_are_not_gated(self):
        baseline = _document("t", seqs=(100.0, "info"))
        current = _document("t", seqs=(999.0, "info"))
        report = compare_documents(baseline, current)
        assert report.ok
        assert report.comparisons == []

    def test_noise_floor_skips_tiny_values(self):
        baseline = _document("t", ms=(0.01, "lower"))
        current = _document("t", ms=(0.04, "lower"))
        report = compare_documents(baseline, current)
        assert report.ok
        assert report.skipped_noise == ["ms"]

    def test_missing_metrics_reported_not_gated(self):
        baseline = _document("t", gone=(1.0, "lower"))
        current = _document("t", new=(1.0, "lower"))
        report = compare_documents(baseline, current)
        assert report.ok
        assert report.missing_in_current == ["gone"]
        assert report.missing_in_baseline == ["new"]

    def test_missing_metric_warnings(self):
        baseline = _document("t", gone=(1.0, "lower"), kept=(1.0, "lower"))
        current = _document("t", new=(1.0, "lower"), kept=(1.0, "lower"))
        report = compare_documents(baseline, current)
        lines = report.warnings()
        assert len(lines) == 2
        assert any("gone" in line and "dropped or renamed" in line
                   for line in lines)
        assert any("new" in line and "not the baseline" in line
                   for line in lines)
        assert "1 missing from current" in report.summary()
        assert "1 missing from baseline" in report.summary()

    def test_no_warnings_when_documents_align(self):
        baseline = _document("t", ms=(10.0, "lower"))
        current = _document("t", ms=(11.0, "lower"))
        assert compare_documents(baseline, current).warnings() == []

    def test_per_metric_threshold_override(self):
        baseline = _document("t", ms=(10.0, "lower"))
        current = _document("t", ms=(25.0, "lower"))
        report = compare_documents(
            baseline, current, thresholds={"ms": 3.0}
        )
        assert report.ok

    def test_prefix_threshold_longest_match_wins(self):
        thresholds = {"quick.": 2.0, "quick.build": 5.0}
        assert threshold_for("quick.query_ms", thresholds, 1.5) == 2.0
        assert threshold_for("quick.build_seconds", thresholds, 1.5) == 5.0
        assert threshold_for("other", thresholds, 1.5) == 1.5

    def test_parse_threshold_overrides(self):
        assert parse_threshold_overrides(["a=2", "b.=3.5"]) == {
            "a": 2.0,
            "b.": 3.5,
        }
        with pytest.raises(ValueError):
            parse_threshold_overrides(["nonsense"])


class TestFlattenTable:
    def test_directions_units_and_names(self):
        table = SimpleNamespace(
            experiment="E9",
            columns=("engine", "ms/query", "recall@10", "speedup", "mode"),
            rows=(("partitioned c=50", 4.2, 0.9, 11.0, "full"),),
        )
        document = BenchDocument("experiments")
        added = flatten_table(table, document)
        assert added == 3  # the string cell is skipped
        entry = document.metrics["e9.partitioned_c_50.ms_query"]
        assert entry == {"value": 4.2, "unit": "ms", "direction": "lower"}
        assert (
            document.metrics["e9.partitioned_c_50.recall_10"]["direction"]
            == "higher"
        )
        assert (
            document.metrics["e9.partitioned_c_50.speedup"]["direction"]
            == "higher"
        )

    def test_duplicate_row_keys_widen_to_two_columns(self):
        table = SimpleNamespace(
            experiment="E5",
            columns=("scorer", "cutoff", "ms/query"),
            rows=(("count", 5, 1.0), ("count", 10, 2.0)),
        )
        document = BenchDocument("experiments")
        flatten_table(table, document)
        assert "e5.count_5.ms_query" in document.metrics
        assert "e5.count_10.ms_query" in document.metrics

    def test_numeric_strings_are_parsed(self):
        table = SimpleNamespace(
            experiment="E8",
            columns=("repr", "query ms"),
            rows=(("store:raw", "4.5"), ("ascii", "-")),
        )
        document = BenchDocument("experiments")
        assert flatten_table(table, document) == 1
        assert document.value("e8.store_raw.query_ms") == 4.5

    def test_column_direction_heuristics(self):
        assert column_direction("part ms/q") == "lower"
        assert column_direction("bits/ptr") == "lower"
        assert column_direction("enc Mgaps/s") == "higher"
        assert column_direction("part AP") == "higher"
        assert column_direction("cutoff") == "info"


class TestQuickSuiteGate:
    """The acceptance path: injected sleep must trip the gate."""

    QUICK = dict(
        families=2,
        family_size=2,
        background=8,
        mean_length=200,
        num_queries=3,
        query_length=80,
        repeat=1,
    )

    def test_injected_slowdown_is_detected(self):
        baseline = run_quick(**self.QUICK)
        slowed = run_quick(**self.QUICK, inject_sleep_seconds=0.05)
        report = compare_documents(baseline, slowed)
        assert not report.ok
        assert any(
            entry.name == "quick.query_ms_mean"
            for entry in report.regressions
        )
        # Throughput is gated in the other direction and must also trip.
        assert any(
            entry.name == "quick.throughput_qps"
            for entry in report.regressions
        )

    def test_quick_document_shape(self):
        document = run_quick(**self.QUICK)
        assert document.suite == "quick"
        assert document.schema == "repro.bench/v1"
        assert document.value("quick.queries") == 3
        assert document.metrics["quick.queries"]["direction"] == "info"
        assert "workload" in document.meta
        assert document.value("quick.build_seconds") > 0

    def test_cli_compare_exit_codes(self, tmp_path):
        baseline = run_quick(**self.QUICK)
        slowed = run_quick(**self.QUICK, inject_sleep_seconds=0.05)
        base_path = baseline.write(tmp_path / "base.json")
        slow_path = slowed.write(tmp_path / "slow.json")
        assert (
            main(
                ["bench", "--compare", str(base_path), str(base_path)]
            )
            == 0
        )
        assert (
            main(
                ["bench", "--compare", str(base_path), str(slow_path)]
            )
            == 1
        )
        # A huge threshold waves the slowdown through.
        assert (
            main(
                [
                    "bench",
                    "--compare",
                    str(base_path),
                    str(slow_path),
                    "--threshold",
                    "1000",
                ]
            )
            == 0
        )

    def test_cli_bench_run_writes_document(self, tmp_path, capsys):
        target = tmp_path / "BENCH_quick.json"
        status = main(
            [
                "bench",
                "--num-queries",
                "2",
                "--repeat",
                "1",
                "-o",
                str(target),
            ]
        )
        assert status == 0
        document = BenchDocument.load(target)
        assert document.suite == "quick"
        assert "wrote benchmark document" in capsys.readouterr().out


class TestKernelSuite:
    def test_kernel_document_shape_and_identity(self):
        pytest.importorskip("benchmarks.workload_setup")
        from repro.bench.runner import run_kernel_bench

        document = run_kernel_bench(num_sequences=150, rounds=1)
        assert document.suite == "kernel"
        metrics = document.metrics
        assert metrics["kernel.coarse_python_ms"]["direction"] == "info"
        assert metrics["kernel.coarse_active_ms"]["direction"] == "info"
        assert metrics["kernel.speedup"]["direction"] == "higher"
        assert metrics["kernel.rank_identical"]["direction"] == "higher"
        # The hard gate: the vector tier may only be faster, never
        # different — every scorer, every query, bit for bit.
        assert document.value("kernel.rank_identical") == 1.0
        assert document.value("kernel.speedup") > 0.0
        assert document.meta["active_tier"] in ("numpy", "numba")
        assert document.meta["kernel_tier"] in (
            "python", "numpy", "numba"
        )

"""Unit and property tests for index construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexLookupError, IndexParameterError
from repro.index.builder import (
    CollectionInfo,
    IndexParameters,
    build_index,
)
from repro.index.intervals import IntervalExtractor, interval_id
from repro.sequences.record import Sequence


def seq(identifier: str, text: str) -> Sequence:
    return Sequence.from_text(identifier, text)


class TestParameters:
    def test_describe_roundtrip(self):
        params = IndexParameters(6, 2, "vbyte", "delta", "rice", False)
        assert IndexParameters.from_description(params.describe()) == params

    def test_factories(self):
        params = IndexParameters(interval_length=5, stride=3)
        assert params.make_extractor().length == 5
        assert params.make_extractor().stride == 3
        assert params.make_codec().include_positions


class TestCollectionInfo:
    def test_from_sequences(self):
        info = CollectionInfo.from_sequences([seq("a", "ACGT"), seq("b", "AC")])
        assert info.identifiers == ("a", "b")
        assert info.lengths.tolist() == [4, 2]
        assert info.total_length == 6
        assert info.num_sequences == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(IndexParameterError):
            CollectionInfo(("a",), np.array([1, 2], dtype=np.int64))

    def test_context(self):
        info = CollectionInfo.from_sequences([seq("a", "ACGTACGT")])
        context = info.context()
        assert context.num_sequences == 1
        assert context.total_length == 8


class TestBuild:
    def test_empty_collection_rejected(self):
        with pytest.raises(IndexParameterError):
            build_index([])

    def test_every_occurrence_is_indexed(self):
        records = [seq("a", "ACGTACGT"), seq("b", "TTACGTTT")]
        index = build_index(records, IndexParameters(interval_length=4))
        postings = index.postings(interval_id("ACGT"))
        assert [(p.sequence, p.positions.tolist()) for p in postings] == [
            (0, [0, 4]),
            (1, [2]),
        ]

    def test_absent_interval(self):
        index = build_index([seq("a", "AAAA")], IndexParameters(interval_length=4))
        assert index.docs_counts(interval_id("TTTT")) is None
        with pytest.raises(IndexLookupError):
            index.postings(interval_id("TTTT"))
        assert interval_id("AAAA") in index
        assert interval_id("TTTT") not in index

    def test_vocab_entry_statistics(self):
        index = build_index(
            [seq("a", "ACGTACGT"), seq("b", "ACGT")],
            IndexParameters(interval_length=4),
        )
        entry = index.lookup_entry(interval_id("ACGT"))
        assert entry.df == 2
        assert entry.cf == 3

    def test_sequences_without_intervals_are_counted(self):
        # One sequence is too short to produce intervals but must still
        # be part of the collection (ordinals, lengths).
        index = build_index(
            [seq("a", "AC"), seq("b", "ACGTAC")],
            IndexParameters(interval_length=4),
        )
        assert index.collection.num_sequences == 2
        docs, _ = index.docs_counts(interval_id("ACGT"))
        assert docs.tolist() == [1]

    def test_wildcards_never_reach_vocabulary(self):
        index = build_index(
            [seq("a", "ACGTNACGT")], IndexParameters(interval_length=4)
        )
        for packed in index.interval_ids():
            assert 0 <= packed < 4**4

    def test_stride_reduces_pointer_volume(self):
        records = [seq("a", "ACGT" * 50)]
        overlapping = build_index(records, IndexParameters(interval_length=4))
        skipping = build_index(
            records, IndexParameters(interval_length=4, stride=4)
        )
        assert skipping.pointer_count <= overlapping.pointer_count
        total = sum(e.cf for e in skipping.entries())
        assert total == 50

    def test_interval_ids_sorted(self):
        rng = np.random.default_rng(0)
        records = [
            Sequence("r", rng.integers(0, 4, 500, dtype=np.uint8))
        ]
        index = build_index(records, IndexParameters(interval_length=5))
        ids = list(index.interval_ids())
        assert ids == sorted(ids)

    def test_replace_vocabulary_shares_collection(self):
        index = build_index([seq("a", "ACGTACGT")], IndexParameters(4))
        trimmed = index.replace_vocabulary({})
        assert trimmed.vocabulary_size == 0
        assert trimmed.collection is index.collection


@settings(max_examples=25, deadline=None)
@given(
    texts=st.lists(st.text(alphabet="ACGTN", min_size=1, max_size=80),
                   min_size=1, max_size=8),
    length=st.integers(min_value=1, max_value=6),
)
def test_index_reconstructs_extraction_exactly(texts, length):
    """Decoded postings are exactly the extractor's output, regrouped."""
    records = [seq(f"s{slot}", text) for slot, text in enumerate(texts)]
    index = build_index(records, IndexParameters(interval_length=length))
    extractor = IntervalExtractor(length)
    expected: dict[int, dict[int, list[int]]] = {}
    for ordinal, record in enumerate(records):
        ids, positions = extractor.extract(record.codes)
        for packed, position in zip(ids.tolist(), positions.tolist()):
            expected.setdefault(packed, {}).setdefault(ordinal, []).append(position)
    assert set(index.interval_ids()) == set(expected)
    for packed, by_doc in expected.items():
        postings = index.postings(packed)
        assert {p.sequence: p.positions.tolist() for p in postings} == by_doc
